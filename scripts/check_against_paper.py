#!/usr/bin/env python
"""Fidelity scorecard: run every table and grade each row against the
published values.

Run:  python scripts/check_against_paper.py [--file-mb 10] [--json results.json]

Verdicts per (table, variant, row):
  match      within ~25% on (geometric) average
  shape      within ~2x with ordering preserved
  deviation  worse — listed explicitly at the end
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import PAPER, TABLES, run_table
from repro.experiments.results import save_json, score_series, table_to_dict

ROWS = ("speed", "cpu", "disk_kbs", "disk_tps")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=10.0)
    parser.add_argument("--json", help="also dump raw results to this path")
    args = parser.parse_args()

    scores = []
    raw = []
    for number in sorted(TABLES):
        print(f"running table {number}...", file=sys.stderr)
        result = run_table(number, file_mb=args.file_mb)
        raw.append(table_to_dict(result))
        for variant in ("std", "gather"):
            for row in ROWS:
                label = f"T{number}/{variant}/{row}"
                fidelity = score_series(
                    label, result.series(variant, row), PAPER[number][variant][row]
                )
                scores.append(fidelity)

    print(f"\n{'series':<22} {'geo ratio':>10} {'|log2|':>8} {'order':>6}  verdict")
    for fidelity in scores:
        print(
            f"{fidelity.label:<22} {fidelity.geometric_mean_ratio:>10.2f} "
            f"{fidelity.mean_abs_log2_ratio:>8.2f} "
            f"{'yes' if fidelity.ordering_preserved else 'NO':>6}  {fidelity.verdict}"
        )
    counts = {verdict: 0 for verdict in ("match", "shape", "deviation")}
    for fidelity in scores:
        counts[fidelity.verdict] += 1
    total = len(scores)
    print(
        f"\nscorecard: {counts['match']}/{total} match, "
        f"{counts['shape']}/{total} shape, {counts['deviation']}/{total} deviation"
    )
    deviations = [f.label for f in scores if f.verdict == "deviation"]
    if deviations:
        print("deviations: " + ", ".join(deviations))

    if args.json:
        save_json(args.json, {"tables": raw, "scores": [s.to_dict() for s in scores]})
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
