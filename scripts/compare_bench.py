#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Usage::

    python scripts/compare_bench.py BASELINE.json FRESH.json \\
        [--max-ratio 2.0] [--min-ops-ratio 0.5] [--max-rpc-ratio 1.5]

Three gates, one per direction the baseline can rot:

* **Simulated quality** — per (write_path, presto) cell, fail (exit 1)
  if the fresh p99 write latency exceeds ``max_ratio`` times the
  baseline's.  The simulation is deterministic, so at equal code the
  ratio is exactly 1.0; anything approaching the threshold is a real
  code-path change.
* **Simulator throughput** — fail if the fresh ``sim_ops_per_sec``
  (NFS ops completed per wall-clock second) drops below
  ``min_ops_ratio`` times the baseline's.  This is the hot-path guard:
  an accidental per-byte copy or a chatty inner loop halves it long
  before anyone notices interactively.  Baselines predating the field
  are skipped with a note (the gate arms itself on the next refresh).
* **RPC chattiness** — fail if the fresh ``rpcs_per_op`` (completed RPC
  calls per user-level operation, repro.lease) exceeds ``max_rpc_ratio``
  times the baseline's: a client that quietly starts double-calling per
  syscall erases exactly what the cache layer bought.  Baselines
  predating the field are skipped with a note.

Cells present in only one file fail too: a silently dropped cell would
hide exactly the regression being guarded.

The per-cell *schema* is compared as well, asymmetrically: fields the
fresh run **adds** are tolerated with a note (new instrumentation must
not force a baseline refresh just to land), but fields the fresh run
**drops** relative to the baseline fail — a metric that vanishes is a
gate that silently stopped gating.
"""

from __future__ import annotations

import argparse
import json
import sys


def cells_by_key(report: dict) -> dict:
    return {(cell["write_path"], cell["presto"]): cell for cell in report["cells"]}


def field_paths(cell: dict, prefix: str = "") -> set:
    """Dotted key paths of a cell, nested dicts included."""
    paths = set()
    for key, value in cell.items():
        path = f"{prefix}{key}"
        paths.add(path)
        if isinstance(value, dict):
            paths |= field_paths(value, path + ".")
    return paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_<n>.json")
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail if fresh p99 > max-ratio x baseline p99 (default: 2.0)",
    )
    parser.add_argument(
        "--min-ops-ratio",
        type=float,
        default=0.5,
        help="fail if fresh sim_ops_per_sec < min-ops-ratio x baseline "
        "(default: 0.5; skipped when the baseline lacks the field)",
    )
    parser.add_argument(
        "--max-rpc-ratio",
        type=float,
        default=1.5,
        help="fail if fresh rpcs_per_op > max-rpc-ratio x baseline "
        "(default: 1.5; skipped when the baseline lacks the field)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = cells_by_key(json.load(handle))
    with open(args.fresh) as handle:
        fresh = cells_by_key(json.load(handle))
    failures = []
    for key in sorted(set(baseline) | set(fresh), key=str):
        write_path, presto = key
        label = f"{write_path}/{'presto' if presto else 'plain'}"
        if key not in baseline:
            failures.append(f"{label}: cell missing from baseline")
            continue
        if key not in fresh:
            failures.append(f"{label}: cell missing from fresh run")
            continue
        # Schema drift: added fields are tolerated (noted), removed
        # fields fail — a vanished metric is a gate silently disarmed.
        base_fields = field_paths(baseline[key])
        fresh_fields = field_paths(fresh[key])
        for name in sorted(fresh_fields - base_fields):
            print(f"  {label:<18} note: fresh adds field {name!r} (tolerated)")
        for name in sorted(base_fields - fresh_fields):
            failures.append(
                f"{label}: field {name!r} present in baseline but missing "
                f"from fresh run"
            )
        if "write_latency_ms.p99" not in fresh_fields:
            continue  # already failed above; nothing left to gate on
        base_p99 = baseline[key]["write_latency_ms"]["p99"]
        fresh_p99 = fresh[key]["write_latency_ms"]["p99"]
        ratio = fresh_p99 / base_p99 if base_p99 else float("inf")
        marker = "FAIL" if ratio > args.max_ratio else "ok"
        print(
            f"  {label:<18} p99 {base_p99:>9.3f} -> {fresh_p99:>9.3f} ms "
            f"(x{ratio:.3f}) {marker}"
        )
        if ratio > args.max_ratio:
            failures.append(
                f"{label}: p99 write latency regressed x{ratio:.3f} "
                f"(limit x{args.max_ratio})"
            )
        base_rpc = baseline[key].get("rpcs_per_op")
        fresh_rpc = fresh[key].get("rpcs_per_op")
        if base_rpc is None:
            print(f"  {label:<18} rpc/op gate skipped (baseline lacks rpcs_per_op)")
        elif fresh_rpc is None:
            failures.append(f"{label}: fresh run lacks rpcs_per_op")
        else:
            rpc_ratio = fresh_rpc / base_rpc if base_rpc else float("inf")
            marker = "FAIL" if rpc_ratio > args.max_rpc_ratio else "ok"
            print(
                f"  {label:<18} rpc/op {base_rpc:>8.4f} -> {fresh_rpc:>8.4f} "
                f"(x{rpc_ratio:.3f}) {marker}"
            )
            if rpc_ratio > args.max_rpc_ratio:
                failures.append(
                    f"{label}: rpcs_per_op regressed x{rpc_ratio:.3f} "
                    f"(limit x{args.max_rpc_ratio})"
                )
        base_ops = baseline[key].get("sim_ops_per_sec")
        fresh_ops = fresh[key].get("sim_ops_per_sec")
        if not base_ops:
            print(f"  {label:<18} ops/s gate skipped (baseline lacks sim_ops_per_sec)")
            continue
        if not fresh_ops:
            failures.append(f"{label}: fresh run lacks sim_ops_per_sec")
            continue
        ops_ratio = fresh_ops / base_ops
        marker = "FAIL" if ops_ratio < args.min_ops_ratio else "ok"
        print(
            f"  {label:<18} ops/s {base_ops:>9.1f} -> {fresh_ops:>9.1f} "
            f"(x{ops_ratio:.3f}) {marker}"
        )
        if ops_ratio < args.min_ops_ratio:
            failures.append(
                f"{label}: simulator throughput regressed to x{ops_ratio:.3f} "
                f"of baseline (floor x{args.min_ops_ratio})"
            )
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        "bench within budget: no p99 write-latency regression, no RPC "
        "chattiness regression, simulator throughput above floor"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
