#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every table and figure at full scale and
record paper-vs-measured numbers.

Run:  python scripts/generate_experiments_md.py   (takes a few minutes)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import GatherPolicy
from repro.experiments import PAPER, TABLES, figure1, run_curve, run_filecopy, run_table
from repro.experiments.testbed import TestbedConfig
from repro.net import ETHERNET, FDDI

ROWS = [
    ("speed", "client write speed (KB/sec.)"),
    ("cpu", "server cpu util. (%)"),
    ("disk_kbs", "server disk (KB/sec)"),
    ("disk_tps", "server disk (trans/sec)"),
]

FIG2_LOADS = (150.0, 300.0, 450.0, 550.0, 650.0, 750.0)
FIG3_LOADS = (200.0, 400.0, 600.0, 700.0, 800.0)


def table_section(number: int) -> str:
    result = run_table(number, file_mb=10)
    spec = result.spec
    lines = [f"### {spec.title}", ""]
    lines.append("```")
    lines.append(result.render())
    lines.append("```")
    lines.append("")
    lines.append("Measured vs paper (per biod column):")
    lines.append("")
    lines.append("| variant | row | " + " | ".join(str(b) for b in spec.biods) + " |")
    lines.append("|---|---|" + "---|" * len(spec.biods))
    for variant, variant_label in (("std", "standard"), ("gather", "gathering")):
        for row_key, row_label in ROWS:
            measured = result.series(variant, row_key)
            paper = PAPER[number][variant][row_key]
            cells = [
                f"{round(m)} / {p}" for m, p in zip(measured, paper)
            ]
            lines.append(
                f"| {variant_label} | {row_label} (measured / paper) | "
                + " | ".join(cells)
                + " |"
            )
    lines.append("")
    return "\n".join(lines)


def figure1_section() -> str:
    sides = figure1(file_kb=256)
    lines = ["### Figure 1. Write gathering NFS server comparison (trace)", ""]
    for name in ("standard", "gathering"):
        side = sides[name]
        lines.append(
            f"*{name} server*, 150 ms window >100K into the file: "
            f"{side['writes']} writes, {side['disk_transactions']} disk "
            f"transactions, {side['replies']} replies."
        )
    std = sides["standard"]
    gat = sides["gathering"]
    per_std = std["disk_transactions"] / max(1, std["writes"])
    per_gat = gat["disk_transactions"] / max(1, gat["writes"])
    lines.append("")
    lines.append(
        f"Disk transactions per write: standard {per_std:.1f}, gathering "
        f"{per_gat:.1f} — the paper's figure shows the same collapse "
        f"(a data+metadata pair per write vs one clustered write + one "
        f"metadata update per train, replies in a burst)."
    )
    lines.append("")
    return "\n".join(lines)


def laddis_section(number: int, presto: bool, loads) -> str:
    standard = run_curve("standard", presto=presto, loads=loads, duration=4.0)
    gathering = run_curve("gather", presto=presto, loads=loads, duration=4.0)
    title = "Figure 2. DEC 3800 SPEC SFS 1.0 baseline" if number == 2 else "Figure 3. Same, with Prestoserve"
    lines = [f"### {title}", "", "```"]
    lines.append(f"{'offered':>8} {'std ops/s':>10} {'std ms':>8} {'gat ops/s':>10} {'gat ms':>8}")
    for s_point, g_point in zip(standard.points, gathering.points):
        lines.append(
            f"{s_point.offered:8.0f} {s_point.achieved:10.0f} {s_point.latency_ms:8.1f}"
            f" {g_point.achieved:10.0f} {g_point.latency_ms:8.1f}"
        )
    lines.append("```")
    std_cap, gat_cap = standard.capacity(), gathering.capacity()
    delta = 100 * (gat_cap / std_cap - 1) if std_cap else float("nan")
    paper_note = "+13% capacity, -11% latency" if number == 2 else "modest positive gains"
    lines.append("")
    lines.append(
        f"Capacity (avg latency <= 50 ms): standard {std_cap:.0f} ops/s, "
        f"gathering {gat_cap:.0f} ops/s ({delta:+.0f}%).  Paper: {paper_note}."
    )
    mid = 1
    lines.append(
        f"Average latency at {standard.points[mid].offered:.0f} offered ops/s: "
        f"standard {standard.points[mid].latency_ms:.1f} ms, gathering "
        f"{gathering.points[mid].latency_ms:.1f} ms."
    )
    lines.append("")
    return "\n".join(lines)


def extensions_section() -> str:
    lines = ["## Extensions beyond the paper", ""]
    # v3
    from repro.experiments import Testbed
    from repro.nfs import NfsClient
    from repro.rpc import RpcClient
    from repro.workload import write_file

    rows = []
    for label, write_path, version in (
        ("NFSv2, standard server", "standard", 2),
        ("NFSv2, gathering server", "gather", 2),
        ("NFSv3 async (unstable+COMMIT)", "standard", 3),
    ):
        testbed = Testbed(TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7))
        endpoint = testbed.segment.attach("client")
        rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
        client = NfsClient(testbed.env, rpc, nbiods=7, nfs_version=version)
        proc = testbed.env.process(write_file(testbed.env, client, "f", 10 << 20))
        testbed.env.run(until=proc)
        rows.append((label, (10 << 20) / proc.value / 1024))
    lines.append("NFSv3 reliable asynchronous writes (§8 future work), 10MB/FDDI/7 biods:")
    lines.append("")
    for label, speed in rows:
        lines.append(f"- {label}: {speed:.0f} KB/s")
    lines.append("")
    # procrastination sweep summary
    lines.append("Procrastination-interval sweep (§6.6, 'room for more work'):")
    lines.append("")
    for netspec, intervals, paper_ms in (
        (ETHERNET, (0.0, 0.004, 0.008, 0.016), 8),
        (FDDI, (0.0, 0.0025, 0.005, 0.012), 5),
    ):
        samples = []
        for interval in intervals:
            metrics = run_filecopy(
                TestbedConfig(
                    netspec=netspec,
                    write_path="gather",
                    nbiods=7,
                    gather_policy=GatherPolicy(interval=interval),
                ),
                file_mb=6,
            )
            samples.append(f"{interval * 1000:.0f}ms={metrics.client_kb_per_sec:.0f}KB/s")
        lines.append(f"- {netspec.name} (paper uses {paper_ms} ms): " + ", ".join(samples))
    lines.append("")
    # lease-cache sweep (repro cache) — RPCs per user operation
    from repro.lease.experiment import CacheConfig, _run_cache

    report = _run_cache(CacheConfig(seed=0))
    lines.append(
        "Lease-cache sweep (`repro cache`, NQNFS-style leases + callback "
        "recalls; §2 'no caching on the client' lifted):"
    )
    lines.append("")
    lines.append("```")
    lines.append(
        "TTL (s)   "
        + "".join(f"share={ratio:<8}" for ratio in report.config.sharing_ratios)
    )
    for ttl in report.config.lease_ttls:
        row = [cell for cell in report.grid if cell["ttl"] == ttl]
        lines.append(
            f"{ttl:7.1f}   "
            + "".join(f"x{cell['reduction']:<13.2f}" for cell in row)
        )
    lines.append("```")
    lines.append("")
    head = report.headline
    lines.append(
        f"RPC reduction (RPCs per user op, off/on) at the headline cell "
        f"(TTL {head['ttl']:.0f} s, sharing {head['sharing']}): "
        f"x{head['reduction']:.2f} (target x{report.config.min_reduction:.0f}).  "
        f"Writes see no reduction (deferral only delays the flush); shared "
        f"re-reads collapse open/read/getattr/close round trips onto the "
        f"client cache.  Staleness oracle clean across the sweep and the "
        f"three chaos probes (crash mid-recall, lost callback, "
        f"partition-expired lease)."
    )
    lines.append("")
    # async WRITE + COMMIT three-way (repro commit)
    from repro.commit.experiment import CommitConfig, _run_commit

    commit_report = _run_commit(CommitConfig(seed=0))
    lines.append(
        "Async WRITE + COMMIT write path (`repro commit`, the §8 NFSv3 "
        "move made server-side: volatile unstable log, boot verifiers, "
        "client replay; 1MB/FDDI/7 biods):"
    )
    lines.append("")
    lines.append("```")
    lines.append("write path      plain KB/s  p50 ms   presto KB/s  p50 ms")
    for path in commit_report.config.write_paths:
        cells = {
            cell["presto"]: cell
            for cell in commit_report.bench
            if cell["write_path"] == path
        }
        lines.append(
            f"{path:<15}"
            f"{cells[False]['client_kb_per_sec']:>11.0f}"
            f"{cells[False]['write_latency_ms']['p50']:>8.2f}"
            f"{cells[True]['client_kb_per_sec']:>14.0f}"
            f"{cells[True]['write_latency_ms']['p50']:>8.2f}"
        )
    lines.append("```")
    lines.append("")
    comparison = commit_report.comparison
    pressure = commit_report.pressure
    lines.append(
        f"Plain async_commit vs plain standard: "
        f"p50 write latency x{comparison['p50_vs_standard']:.4f}, "
        f"throughput x{comparison['throughput_vs_standard']:.2f}.  "
        f"Pressure valves both open (server background flushes: "
        f"{pressure['pressure_flushes']}, client window-pressure COMMITs: "
        f"{pressure['client_pressure_commits']}); K=1 promote storms clean "
        f"on both paths; the three verifier-lifecycle probes (crash "
        f"mid-unstable-window, crash between WRITE and COMMIT, promotion "
        f"mid-COMMIT-train) replay and stay oracle-clean."
    )
    lines.append("")
    # end-to-end integrity sweep (repro scrub)
    from repro.integrity.experiment import ScrubConfig, run_scrub

    scrub = run_scrub(ScrubConfig(seed=0))
    lines.append(
        "End-to-end integrity (`repro scrub`, per-block checksums + a "
        "media-fault storm — bit rot, latent sectors, a torn write, an "
        "NVRAM battery degrade cashed by a crash — against a background "
        "scrub/repair process; the paper's crash contract extended to a "
        "medium that lies):"
    )
    lines.append("")
    lines.append("```")
    lines.append(
        "rate  scrub BW   K  injected detected repaired quarantined  EIO  silent  clean"
    )
    for arm in scrub.arms:
        lines.append(
            f"{arm.corruption_rate:4.2f}"
            f"{arm.scrub_bandwidth / 1048576.0:7.1f}MB/s"
            f"{arm.replicas:>4}"
            f"{arm.injected_defects:>10}"
            f"{arm.detections:>9}"
            f"{arm.repairs:>9}"
            f"{arm.quarantines:>12}"
            f"{arm.eio_reads:>5}"
            f"{arm.silent_read_corruptions:>8}"
            f"  {'yes' if arm.clean else 'NO'}"
        )
    lines.append("```")
    lines.append("")
    healed = [arm for arm in scrub.arms if arm.replicas > 0 and arm.repairs]
    mttr = (
        sum(arm.mean_time_to_repair_ms for arm in healed) / len(healed)
        if healed
        else float("nan")
    )
    lines.append(
        f"Contract held in every arm: zero acked READs returned bytes "
        f"differing from the acked write image.  With a replica (K>=1) "
        f"every defect healed from the freshest peer (mean time-to-repair "
        f"{mttr:.1f} ms across healed arms); standalone (K=0) every "
        f"defect was quarantined and surfaced as EIO on read-back — "
        f"loud loss, never silent corruption."
    )
    lines.append("")
    # heterogeneous tiers + live migration (repro tiering)
    from repro.tiering.experiment import TieringConfig, run_tiering

    tiering = run_tiering(TieringConfig(seed=0))
    lines.append(
        "Heterogeneous tiers + crash-safe live migration (`repro tiering`, "
        "Zipf-hot multi-tenant appends on a mixed NVRAM-hot / disk-cold "
        "fleet; see docs/tiering.md):"
    )
    lines.append("")
    lines.append("```")
    lines.append("fleet     policy       p50 (ms)   p99 (ms)  files hot/cold")
    for arm in tiering.arms:
        tiers = arm.placement["files_by_tier"]
        lines.append(
            f"{arm.fleet:<9} {arm.policy:<10}"
            f"{arm.write_latency_ms['p50']:>10.2f}"
            f"{arm.write_latency_ms['p99']:>11.2f}"
            f"{tiers.get('hot', 0):>8}/{tiers.get('cold', 0)}"
        )
    lines.append("```")
    lines.append("")
    storm = tiering.storm
    baseline = tiering.baseline
    steered = next(
        (arm for arm in tiering.arms if arm.policy == "hot-first"), None
    )
    ratio = (
        steered.write_latency_ms["p99"] / baseline.write_latency_ms["p99"]
        if steered and baseline and baseline.write_latency_ms["p99"]
        else None
    )
    lines.append(
        f"Steering the hot set onto the NVRAM tier cuts p99 write latency "
        f"to {ratio:.2f}x the all-cold baseline.  The migration storm — "
        f"{storm['started']} live hot→cold demotions under {storm['crashes']} "
        f"injected shard crashes ({storm['promotions']} replica promotions, "
        f"one network partition) timed to land mid-copy — completed "
        f"{storm['completed']}/{storm['started']} with zero contract "
        f"violations: every acked range stayed satisfiable at exactly one "
        f"authoritative location through every fault."
    )
    lines.append("")
    return "\n".join(lines)


HEADER = """# EXPERIMENTS — paper vs measured

Generated by `python scripts/generate_experiments_md.py` against the full
10 MB-copy / multi-point-LADDIS configurations.  Absolute numbers come from
a calibrated simulation of 1993 hardware (see DESIGN.md §2), so the claim
being checked is *shape*: who wins, by roughly what factor, and where the
crossovers fall.  Each `measured / paper` cell pairs our run with the
published value.

## Summary of fidelity

- Tables 1 and 3 (plain disks): near-quantitative agreement — the standard
  server is pinned at ~200 KB/s by the spindle while gathering scales with
  biods; the 0-biod worst case loses ~15% exactly as published.
- Tables 2 and 4 (Prestoserve): the §6.3 duality reproduces — gathering
  costs client throughput but serves each byte with less CPU, and the
  lazy NVRAM drain's clustering lands the "server disk (trans/sec)" rows
  in the published 4-16/s band.
- Table 5 (striping): gathering multiplies striped bandwidth (ours ~6x the
  standard server at 23 biods vs the paper's ~5x); the standard server sees
  little benefit.  Paper's modest standard-server growth with biods
  (200->313) is flatter here (vnode-lock serialization is strict in our
  model).
- Table 6 (Presto + stripes): CPU-efficiency and low-biod throughput-loss
  directions reproduce; **known deviation** — at >= 7 biods our gathering
  server overtakes the standard server, where the paper kept a ~20%
  deficit.  Our batch-level procrastination amortizes better than the
  real implementation did at high concurrency.
- Figures 2/3 (LADDIS): gathering lowers average latency at moderate loads
  and holds equal-or-better capacity; gains with Presto are near zero —
  "more modest, but still positive" — matching the paper's description.

"""


def main() -> None:
    sections = [HEADER]
    sections.append("## Tables\n")
    for number in (1, 2, 3, 4, 5, 6):
        print(f"running table {number}...", file=sys.stderr)
        sections.append(table_section(number))
    sections.append("## Figures\n")
    print("running figure 1...", file=sys.stderr)
    sections.append(figure1_section())
    print("running figure 2...", file=sys.stderr)
    sections.append(laddis_section(2, False, FIG2_LOADS))
    print("running figure 3...", file=sys.stderr)
    sections.append(laddis_section(3, True, FIG3_LOADS))
    print("running extensions...", file=sys.stderr)
    sections.append(extensions_section())
    output = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    output.write_text("\n".join(sections))
    print(f"wrote {output}", file=sys.stderr)


if __name__ == "__main__":
    main()
