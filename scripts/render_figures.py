#!/usr/bin/env python
"""Render Figures 1-3 as SVG files under figures/.

* figure1.svg — disk transactions per write, standard vs gathering, over a
  biod sweep (the quantitative content of the paper's trace figure);
* figure2.svg — LADDIS response time vs achieved throughput, no Presto;
* figure3.svg — ditto with Prestoserve.

Run:  python scripts/render_figures.py   (a few minutes)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import TestbedConfig, figure1, run_curve, run_filecopy
from repro.experiments.trace import render_timeline_svg
from repro.metrics.svg import LineChart
from repro.net import FDDI

FIGURES = Path(__file__).resolve().parent.parent / "figures"

FIG2_LOADS = (150.0, 300.0, 450.0, 550.0, 650.0, 750.0)
FIG3_LOADS = (200.0, 400.0, 600.0, 700.0, 800.0)


def figure1_chart() -> LineChart:
    biods = (0, 3, 7, 11, 15)
    chart = LineChart(
        "Figure 1 (summarized): disk transactions per 8K write — FDDI, RZ26",
        "client biods",
        "disk transactions per write",
    )
    for write_path, label, dashed in (
        ("standard", "standard server", False),
        ("gather", "gathering server", True),
    ):
        points = []
        for nbiods in biods:
            metrics = run_filecopy(
                TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=nbiods),
                file_mb=4,
            )
            writes_per_sec = metrics.client_kb_per_sec / 8.0
            points.append((nbiods, metrics.disk_trans_per_sec / writes_per_sec))
        chart.add_series(label, points, dashed=dashed)
    return chart


def laddis_chart(presto: bool, loads) -> LineChart:
    number = 3 if presto else 2
    suffix = ", Prestoserve" if presto else ""
    chart = LineChart(
        f"Figure {number}: DEC 3800 SPEC SFS 1.0 baseline{suffix}",
        "NFS throughput (ops/sec)",
        "average NFS response time (msec)",
    )
    for write_path, label, dashed in (
        ("standard", "without write gathering", False),
        ("gather", "with write gathering", True),
    ):
        curve = run_curve(write_path, presto=presto, loads=loads, duration=4.0)
        points = [(p.achieved, p.latency_ms) for p in curve.points]
        chart.add_series(label, points, dashed=dashed)
    return chart


def main() -> None:
    FIGURES.mkdir(exist_ok=True)
    print("rendering figure 1 (timelines)...", file=sys.stderr)
    sides = figure1(file_kb=256)
    svg = render_timeline_svg(
        sides["standard"]["window"], sides["gathering"]["window"]
    )
    (FIGURES / "figure1_timeline.svg").write_text(svg)
    print("rendering figure 1 (summary chart)...", file=sys.stderr)
    figure1_chart().save(str(FIGURES / "figure1.svg"))
    print("rendering figure 2...", file=sys.stderr)
    laddis_chart(False, FIG2_LOADS).save(str(FIGURES / "figure2.svg"))
    print("rendering figure 3...", file=sys.stderr)
    laddis_chart(True, FIG3_LOADS).save(str(FIGURES / "figure3.svg"))
    print(f"wrote {FIGURES}/figure{{1,2,3}}.svg", file=sys.stderr)


if __name__ == "__main__":
    main()
