"""Tests for the durable-image fsck, including crash scenarios across all
server write paths."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.fs.fsck import fsck
from repro.fs.inode import InodeSnapshot
from repro.net import FDDI
from repro.workload import write_file

KB = 1024


def written_testbed(write_path="gather", file_kb=256, presto=False):
    config = TestbedConfig(
        netspec=FDDI,
        write_path=write_path,
        nbiods=7,
        presto_bytes=(1 << 20) if presto else None,
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", file_kb * KB))
    env.run(until=proc)
    return testbed


class TestCleanImages:
    @pytest.mark.parametrize("write_path", ["standard", "gather", "siva"])
    def test_clean_after_file_copy(self, write_path):
        testbed = written_testbed(write_path)
        report = fsck(testbed.server.ufs, strict=True)
        assert report.clean, report.errors
        assert report.files_checked >= 2  # root dir + file
        assert report.blocks_referenced >= 32

    def test_clean_with_presto(self):
        testbed = written_testbed(presto=True)
        report = fsck(testbed.server.ufs, strict=True)
        assert report.clean, report.errors

    def test_summary_format(self):
        testbed = written_testbed()
        report = fsck(testbed.server.ufs)
        assert "CLEAN" in report.summary()


class TestCrashScenarios:
    def test_crash_image_structurally_sound(self):
        """A crash may lose data but must never corrupt structure: fsck in
        crash mode finds no errors mid-copy on any write path."""
        for write_path in ("standard", "gather", "siva"):
            config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7)
            testbed = Testbed(config)
            client = testbed.add_client()
            env = testbed.env
            env.process(write_file(env, client, "f", 512 * KB))
            # Stop mid-flight at several points and check each image.
            for stop_at in (0.05, 0.2, 0.5):
                env.run(until=stop_at)
                report = fsck(testbed.server.ufs, strict=False)
                assert report.clean, (write_path, stop_at, report.errors)

    def test_crash_then_recovery_is_strict_clean(self):
        testbed = written_testbed("gather")
        testbed.server.simulate_crash()
        report = fsck(testbed.server.ufs, strict=False)
        assert report.clean, report.errors


class TestCorruptionDetection:
    def make_ufs(self):
        return written_testbed("standard", file_kb=64).server.ufs

    def corrupt_snapshot(self, ufs, **overrides):
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        fields = dict(
            size=snapshot.size,
            mtime=snapshot.mtime,
            direct=snapshot.direct,
            indirect_addr=snapshot.indirect_addr,
            generation=snapshot.generation,
        )
        fields.update(overrides)
        ufs.cache.durable.inodes[ino] = InodeSnapshot(**fields)
        return ino

    def test_detects_unaligned_pointer(self):
        ufs = self.make_ufs()
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        bad = list(snapshot.direct)
        bad[0] = bad[0] + 1  # unaligned
        self.corrupt_snapshot(ufs, direct=tuple(bad))
        report = fsck(ufs)
        assert not report.clean
        assert any("unaligned" in error for error in report.errors)

    def test_detects_out_of_bounds_pointer(self):
        ufs = self.make_ufs()
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        bad = list(snapshot.direct)
        bad[0] = 1 << 60
        self.corrupt_snapshot(ufs, direct=tuple(bad))
        report = fsck(ufs)
        assert any("out of bounds" in error for error in report.errors)

    def test_detects_pointer_into_inode_table(self):
        ufs = self.make_ufs()
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        bad = list(snapshot.direct)
        bad[0] = ufs.allocator.groups[0].inode_table_start
        self.corrupt_snapshot(ufs, direct=tuple(bad))
        report = fsck(ufs)
        assert any("inode table" in error for error in report.errors)

    def test_detects_double_allocation(self):
        ufs = self.make_ufs()
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        bad = list(snapshot.direct)
        bad[1] = bad[0]  # two file blocks, one disk block
        self.corrupt_snapshot(ufs, direct=tuple(bad))
        report = fsck(ufs)
        assert any("claimed by both" in error for error in report.errors) or any(
            "claimed" in error for error in report.errors
        )

    def test_detects_missing_backing_in_strict_mode(self):
        ufs = self.make_ufs()
        ino = ufs.root.entries["f"]
        snapshot = ufs.cache.durable.inodes[ino]
        victim_addr = snapshot.direct[0]
        del ufs.cache.durable.blocks[victim_addr]
        strict = fsck(ufs, strict=True)
        relaxed = fsck(ufs, strict=False)
        assert any("no durable content" in error for error in strict.errors)
        assert relaxed.clean
        assert relaxed.warnings

    def test_detects_negative_size(self):
        ufs = self.make_ufs()
        self.corrupt_snapshot(ufs, size=-1)
        report = fsck(ufs)
        assert any("negative" in error for error in report.errors)
