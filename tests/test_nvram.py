"""Tests for the Prestoserve NVRAM model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import RZ26, DiskDevice
from repro.nvram import PrestoCache
from repro.sim import Environment

KB = 1024


def make_presto(env, **kwargs):
    disk = DiskDevice(env, RZ26)
    return PrestoCache(env, disk, **kwargs), disk


def test_small_write_completes_at_nvram_speed():
    env = Environment()
    presto, _disk = make_presto(env)

    def driver(env):
        yield presto.submit(0, 8 * KB)
        return env.now

    proc = env.process(driver(env))
    env.run(until=proc)
    # NVRAM copy: ~0.2ms overhead + 8K/40MB/s = ~0.4ms, far below any
    # spindle's ~13ms.  Allow slack for queueing noise.
    assert proc.value < 0.002


def test_large_write_declined_and_runs_at_disk_speed():
    env = Environment()
    presto, disk = make_presto(env)

    def driver(env):
        yield presto.submit(0, 64 * KB)
        return env.now

    proc = env.process(driver(env))
    env.run(until=proc)
    assert proc.value > 0.02  # spindle territory
    assert presto.declined_count == 1
    assert disk.stats.transactions.value == 1


def test_drain_eventually_flushes_to_disk():
    env = Environment()
    presto, disk = make_presto(env)

    def driver(env):
        for i in range(4):
            yield presto.submit(i * 8 * KB, 8 * KB)

    env.process(driver(env))
    env.run()
    assert presto.dirty_bytes == 0
    assert disk.stats.bytes.value == 32 * KB
    flushed_kinds = set(disk.stats.by_kind)
    assert flushed_kinds == {"presto-flush"}


def test_drain_clusters_adjacent_writes():
    """Presto does its own clustering: 8 adjacent 8K writes drain in far
    fewer than 8 disk transactions."""
    env = Environment()
    presto, disk = make_presto(env)

    def driver(env):
        events = [presto.submit(i * 8 * KB, 8 * KB) for i in range(8)]
        for event in events:
            yield event

    env.process(driver(env))
    env.run()
    assert disk.stats.bytes.value == 64 * KB
    assert disk.stats.transactions.value <= 3


def test_full_nvram_applies_backpressure():
    env = Environment()
    presto, _disk = make_presto(env, capacity=16 * KB)
    finish_times = []

    def driver(env):
        for i in range(6):
            yield presto.submit(i * 100 * 8 * KB, 8 * KB)  # non-adjacent
            finish_times.append(env.now)

    env.process(driver(env))
    env.run()
    # First two writes fit instantly; later ones must wait for disk drains.
    assert finish_times[1] < 0.005
    assert finish_times[3] > 0.005


def test_overwrite_does_not_leak_space():
    env = Environment()
    presto, _disk = make_presto(env, capacity=16 * KB)

    def driver(env):
        for _ in range(50):
            yield presto.submit(0, 8 * KB)  # same extent over and over

    proc = env.process(driver(env))
    env.run(until=proc)
    assert presto.dirty_bytes <= 8 * KB


def test_reads_pass_through():
    env = Environment()
    presto, disk = make_presto(env)

    def driver(env):
        yield presto.submit(0, 8 * KB, is_write=False)

    env.run(until=env.process(driver(env)))
    assert disk.stats.reads.value == 1
    assert presto.stats.transactions.value == 0


def test_crash_recover_reports_unflushed_extents():
    env = Environment()
    # Huge flush size never triggers... drain still runs; so instead check
    # immediately after the copy completes, before the drain's disk write.
    presto, disk = make_presto(env)
    snapshots = []

    def driver(env):
        yield presto.submit(0, 8 * KB)
        snapshots.append(presto.crash_recover())

    env.process(driver(env))
    env.run()
    assert snapshots[0] == [(0, 8 * KB)]
    assert presto.crash_recover() == []  # drained by end of run


def test_invalid_configs_rejected():
    env = Environment()
    disk = DiskDevice(env, RZ26)
    with pytest.raises(ValueError):
        PrestoCache(env, disk, capacity=0)
    with pytest.raises(ValueError):
        PrestoCache(env, disk, accept_limit=0)
    with pytest.raises(ValueError):
        PrestoCache(env, disk, capacity=8 * KB, accept_limit=16 * KB)
    with pytest.raises(ValueError):
        PrestoCache(env, disk, max_flush=0)
    presto = PrestoCache(env, disk)
    with pytest.raises(ValueError):
        presto.submit(0, 0)


def test_is_accelerated_flag():
    env = Environment()
    presto, disk = make_presto(env)
    assert presto.is_accelerated
    assert not getattr(disk, "is_accelerated", False)


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 100), st.integers(1, 8)), min_size=1, max_size=40
    )
)
@settings(max_examples=50, deadline=None)
def test_property_everything_accepted_is_eventually_on_disk(writes):
    """All bytes accepted into NVRAM reach the backing disk by quiescence,
    and dirty extents never overlap."""
    env = Environment()
    presto, disk = make_presto(env, capacity=1 << 20)
    covered = set()

    def driver(env):
        for block, length_kb in writes:
            offset = block * 8 * KB
            nbytes = length_kb * KB
            covered.update(range(offset, offset + nbytes, KB))
            yield presto.submit(offset, nbytes)
            extents = presto.dirty_extents
            for (s1, e1), (s2, e2) in zip(extents, extents[1:]):
                assert e1 < s2  # sorted and non-overlapping

    env.process(driver(env))
    env.run()
    assert presto.dirty_bytes == 0
    assert disk.stats.bytes.value >= len(covered) * KB
