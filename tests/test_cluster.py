"""Integration tests for repro.cluster: fleet, router, failover, experiments."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterOracle,
    ShardCrash,
    build_cluster,
    run_cluster,
    run_scaling_sweep,
)
from repro.cluster.experiment import CLUSTER_THINK_TIME
from repro.cluster.fleet import INO_STRIDE
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.workload.sequential import write_file

KB = 1024


def _write(cluster, client, name, nbytes=8 * KB):
    env = cluster.env
    proc = env.process(write_file(env, client, name, nbytes), name=f"w:{name}")
    env.run(until=proc)


class TestFleetConstruction:
    def test_shards_share_nothing_but_the_wire(self):
        cluster = build_cluster(ClusterConfig(servers=3), clients=0)
        assert len(cluster.servers) == 3
        assert len({id(s.ufs) for s in cluster.servers}) == 3
        assert len({d.name for shard in cluster.disks for d in shard}) == 3
        assert len(cluster.segments) == 1

    def test_disjoint_inode_ranges(self):
        cluster = build_cluster(ClusterConfig(servers=3), clients=1)
        client = cluster.clients[0]
        for index in range(9):
            _write(cluster, client, f"f{index}")
        pins = cluster.router.pins()
        assert pins  # every created file pinned its handle
        for (ino, _generation), host in pins.items():
            shard = int(host.split("-")[1])
            base = (shard + 1) * INO_STRIDE
            assert base <= ino < base + INO_STRIDE

    def test_racks_split_the_wire(self):
        cluster = build_cluster(ClusterConfig(servers=4, racks=2), clients=1)
        assert len(cluster.segments) == 2
        assert {cluster.segment_of(f"server-{i}").name for i in range(4)} == {
            "fddi.rack0",
            "fddi.rack1",
        }
        client = cluster.clients[0]
        for index in range(8):
            _write(cluster, client, f"f{index}")
        oracle = ClusterOracle(cluster)
        assert oracle.check("racks") == []


class TestRouting:
    def test_files_land_where_the_map_says(self):
        cluster = build_cluster(ClusterConfig(servers=3, seed=1), clients=1)
        client = cluster.clients[0]
        names = [f"routed-{index}" for index in range(12)]
        for name in names:
            _write(cluster, client, name)
        rollup = {shard["host"]: shard["files_created"] for shard in cluster.per_shard_rollup()}
        expected = cluster.shard_map.load(names)
        assert rollup == expected
        assert sum(rollup.values()) == len(names)

    def test_unpinned_handle_is_an_error(self):
        cluster = build_cluster(ClusterConfig(servers=2), clients=0)
        with pytest.raises(KeyError, match="not pinned"):
            cluster.router.server_for_fhandle((INO_STRIDE + 1, 0))

    def test_root_handle_routes_home(self):
        cluster = build_cluster(ClusterConfig(servers=4), clients=0)
        assert cluster.router.server_for_fhandle((2, 0)) == cluster.router.home
        assert cluster.router.home in cluster.shard_map.servers


class TestGrow:
    def test_grow_routes_new_files_without_moving_old_pins(self):
        cluster = build_cluster(ClusterConfig(servers=2, seed=0), clients=1)
        client = cluster.clients[0]
        old_names = [f"old-{index}" for index in range(6)]
        for name in old_names:
            _write(cluster, client, name)
        pins_before = cluster.router.pins()
        placement_before = {n: cluster.shard_map.server_for(n) for n in old_names}

        newcomer = cluster.grow()
        assert newcomer.host == "server-2"
        assert len(cluster.shard_map) == 3
        # Existing pins are untouched — growth redirects future placement.
        assert cluster.router.pins() == pins_before

        moved = [
            n for n in old_names
            if cluster.shard_map.server_for(n) != placement_before[n]
        ]
        for name in moved:
            assert cluster.shard_map.server_for(name) == "server-2"

        # A name that now maps to the newcomer is actually served there.
        target = next(
            f"new-{index}"
            for index in range(1000)
            if cluster.shard_map.server_for(f"new-{index}") == "server-2"
        )
        _write(cluster, client, target)
        rollup = cluster.per_shard_rollup()
        assert rollup[2]["host"] == "server-2"
        assert rollup[2]["files_created"] == 1


class TestRunCluster:
    def test_basic_run_is_clean_and_accounted(self):
        result = run_cluster(ClusterConfig(servers=2, seed=0), clients=4)
        assert result.clean
        assert result.acked_writes == 4 * 2 * (64 // 8)
        assert sum(result.placement.values()) == 4 * 2
        assert result.aggregate["files_created"] == 4 * 2
        assert result.total_bytes == 4 * 2 * 64 * KB

    def test_json_is_byte_identical_across_reruns(self):
        config = ClusterConfig(servers=4, seed=3)
        first = run_cluster(config, clients=8).to_json()
        second = run_cluster(config, clients=8).to_json()
        assert first == second

    def test_different_seeds_change_placement(self):
        a = run_cluster(ClusterConfig(servers=4, seed=0), clients=4)
        b = run_cluster(ClusterConfig(servers=4, seed=9), clients=4)
        assert a.placement != b.placement

    def test_shard_crash_holds_the_contract(self):
        crash = ShardCrash(at=0.05, shard=1, outage=0.3, redirect=True)
        result = run_cluster(
            ClusterConfig(servers=3, seed=0), clients=6, crashes=[crash]
        )
        assert result.clean
        assert result.crashes == 1
        assert result.faults[0]["host"] == "server-1"
        assert result.faults[0]["redirected"]
        assert result.retransmissions > 0
        # The shard rejoined: the map ends at full strength.
        assert result.servers == 3

    def test_crash_without_outage(self):
        crash = ShardCrash(at=0.02, shard=0)
        result = run_cluster(
            ClusterConfig(servers=2, seed=0), clients=2, crashes=[crash]
        )
        assert result.clean
        assert result.crashes == 1
        assert not result.faults[0]["redirected"]

    def test_crash_shard_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="names shard 5"):
            run_cluster(
                ClusterConfig(servers=2),
                clients=1,
                crashes=[ShardCrash(at=0.01, shard=5)],
            )


class TestScaling:
    def test_sweep_shows_dilution_and_monotonic_throughput(self):
        # The headline trade: sharding multiplies spindles (throughput up)
        # but thins each server's request stream (gather ratio down).
        sweep = run_scaling_sweep(
            ClusterConfig(servers=1, write_path="gather", seed=0),
            server_counts=[1, 4],
            client_counts=[8],
            think_time=CLUSTER_THINK_TIME,
        )
        assert sweep.clean
        one, four = sweep.rows
        assert four.aggregate_kb_per_sec > one.aggregate_kb_per_sec
        assert four.mean_gather_ratio() <= one.mean_gather_ratio()
        table = sweep.table()
        assert table[0]["scaling_efficiency"] == 1.0
        assert 0 < table[1]["scaling_efficiency"] < 1.0

    def test_sweep_json_round_trips(self):
        import json

        sweep = run_scaling_sweep(
            ClusterConfig(servers=1, seed=0),
            server_counts=[1, 2],
            client_counts=[2],
            files_per_client=1,
            file_kb=16,
        )
        payload = json.loads(sweep.to_json())
        assert payload["server_counts"] == [1, 2]
        assert len(payload["rows"]) == 2
        assert len(payload["table"]) == 2


class TestTestbedAddClient:
    def test_auto_hosts_never_collide_with_explicit_names(self):
        testbed = Testbed(TestbedConfig())
        testbed.add_client(host="client-0")
        auto = testbed.add_client()  # must skip the taken name
        assert auto.rpc.endpoint.host == "client-1"
        assert testbed.add_client().rpc.endpoint.host == "client-2"

    def test_repeated_auto_hosts_are_unique(self):
        testbed = Testbed(TestbedConfig())
        hosts = [testbed.add_client().rpc.endpoint.host for _ in range(4)]
        assert len(set(hosts)) == 4
