"""Tests for result serialization and fidelity scoring."""

import json

import pytest

from repro.experiments import run_table
from repro.experiments.results import (
    save_json,
    score_series,
    table_to_dict,
)


class TestScoreSeries:
    def test_perfect_match(self):
        fidelity = score_series("x", [100, 200, 300], [100, 200, 300])
        assert fidelity.verdict == "match"
        assert fidelity.geometric_mean_ratio == pytest.approx(1.0)
        assert fidelity.mean_abs_log2_ratio == 0.0
        assert fidelity.ordering_preserved

    def test_within_25_percent_is_match(self):
        fidelity = score_series("x", [115, 230], [100, 200])
        assert fidelity.verdict == "match"

    def test_within_2x_with_ordering_is_shape(self):
        fidelity = score_series("x", [60, 120, 180], [100, 200, 300])
        assert fidelity.verdict == "shape"
        assert fidelity.ordering_preserved

    def test_wrong_ordering_is_deviation(self):
        # Paper rises, measurement falls, and magnitudes are off by ~2x.
        fidelity = score_series("x", [200, 110, 55], [100, 200, 300])
        assert not fidelity.ordering_preserved
        assert fidelity.verdict == "deviation"

    def test_flat_vs_small_moves_tolerated(self):
        fidelity = score_series("x", [100, 101, 100], [100, 120, 140])
        assert fidelity.ordering_preserved  # flat is not a contradiction

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_series("x", [1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            score_series("x", [], [])

    def test_nonpositive_values_penalized(self):
        fidelity = score_series("x", [0, 100], [100, 100])
        assert fidelity.verdict == "deviation"

    def test_to_dict_roundtrips_json(self):
        fidelity = score_series("x", [1.0], [1.0])
        assert json.loads(json.dumps(fidelity.to_dict()))["label"] == "x"


class TestTableSerialization:
    def test_table_to_dict_shape(self):
        result = run_table(1, file_mb=0.5)
        payload = table_to_dict(result)
        assert payload["table"] == 1
        assert payload["network"] == "ethernet"
        assert len(payload["standard"]) == len(payload["biods"])
        cell = payload["gathering"][0]
        assert {"nbiods", "client_kb_per_sec", "server_cpu_pct"} <= set(cell)

    def test_save_json(self, tmp_path):
        result = run_table(1, file_mb=0.5)
        path = tmp_path / "out.json"
        save_json(str(path), table_to_dict(result))
        loaded = json.loads(path.read_text())
        assert loaded["table"] == 1
