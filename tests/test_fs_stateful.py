"""Stateful (model-based) property testing of the filesystem.

Hypothesis drives random interleavings of writes (all three flag modes),
reads, syncdata, fsync, and crash simulation against a flat reference model
(one bytearray per file), checking after every step that:

* live reads always match the reference model;
* after any fsync, the durable image matches too;
* fsck stays structurally clean at all times (crash mode);
* a crash never surfaces data the model never wrote (no garbage).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.disk import RZ26, DiskDevice
from repro.fs import IO_DATAONLY, IO_DELAYDATA, IO_SYNC, Ufs, fsck
from repro.sim import Environment

MB = 1 << 20
BLOCK = 8192
MAX_FILES = 3
MAX_BLOCKS = 20


class UfsMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.env = Environment()
        self.disk = DiskDevice(self.env, RZ26)
        self.ufs = Ufs(self.env, self.disk, fs_bytes=256 * MB)
        self.inodes = []
        self.models = []
        self.synced = []  # per-file: is the durable image known current?
        for index in range(MAX_FILES):
            inode = self.run_op(self.ufs.create(self.ufs.root, f"file{index}"))
            self.inodes.append(inode)
            self.models.append(bytearray())
            self.synced.append(True)

    def run_op(self, generator):
        def wrapper():
            result = yield from generator
            return result

        proc = self.env.process(wrapper())
        self.env.run(until=proc)
        return proc.value

    def _apply_model(self, index, offset, data):
        model = self.models[index]
        if len(model) < offset + len(data):
            model.extend(b"\x00" * (offset + len(data) - len(model)))
        model[offset : offset + len(data)] = data

    @rule(
        index=st.integers(0, MAX_FILES - 1),
        block=st.integers(0, MAX_BLOCKS - 1),
        nblocks=st.integers(1, 3),
        fill=st.integers(0, 255),
        mode=st.sampled_from([IO_SYNC, IO_DELAYDATA, IO_SYNC | IO_DATAONLY]),
    )
    def write(self, index, block, nblocks, fill, mode):
        data = bytes([fill]) * (nblocks * BLOCK)
        offset = block * BLOCK
        self.run_op(self.ufs.write(self.inodes[index], offset, data, mode))
        self._apply_model(index, offset, data)
        self.synced[index] = False

    @rule(
        index=st.integers(0, MAX_FILES - 1),
        offset=st.integers(0, MAX_BLOCKS * BLOCK),
        nbytes=st.integers(1, 3 * BLOCK),
    )
    def read_matches_model(self, index, offset, nbytes):
        got = self.run_op(self.ufs.read(self.inodes[index], offset, nbytes))
        model = self.models[index]
        expected = bytes(model[offset : offset + nbytes])
        assert got == expected

    @rule(index=st.integers(0, MAX_FILES - 1))
    def fsync_makes_durable(self, index):
        self.run_op(self.ufs.fsync(self.inodes[index]))
        inode = self.inodes[index]
        durable = self.ufs.durable_read(inode.ino, 0, inode.size)
        assert durable == bytes(self.models[index][: inode.size])
        self.synced[index] = True

    @rule(index=st.integers(0, MAX_FILES - 1))
    def syncdata_flushes_without_metadata(self, index):
        self.run_op(self.ufs.sync_data(self.inodes[index]))

    @rule()
    def sync_all(self):
        self.run_op(self.ufs.sync_all())
        for index, inode in enumerate(self.inodes):
            durable = self.ufs.durable_read(inode.ino, 0, inode.size)
            assert durable == bytes(self.models[index][: inode.size])
            self.synced[index] = True

    @invariant()
    def fsck_structurally_clean(self):
        if not hasattr(self, "ufs"):
            return
        report = fsck(self.ufs, strict=False)
        assert report.clean, report.errors

    @invariant()
    def durable_never_contains_garbage(self):
        """Whatever is durably readable must be a prefix-consistent view of
        bytes the model wrote at some point (here: since every write is a
        constant fill per call and the model is last-writer-wins at block
        granularity, any durable block must equal a current-model block or
        an older value of it — we check the weaker, crash-legal property
        that durable content inside synced files matches the model)."""
        if not hasattr(self, "ufs"):
            return
        for index, inode in enumerate(self.inodes):
            if not self.synced[index]:
                continue
            durable = self.ufs.durable_read(inode.ino, 0, inode.size)
            if durable is not None:
                assert durable == bytes(self.models[index][: inode.size])


TestUfsStateful = UfsMachine.TestCase
TestUfsStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
