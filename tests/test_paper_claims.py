"""The paper's qualitative performance claims, asserted on scaled-down runs.

These use 1-2 MB copies (vs the paper's 10 MB) so the suite stays fast; the
benchmarks under benchmarks/ run the full-size experiments.  Margins are
deliberately loose — we assert directions and rough factors, not absolute
numbers.
"""

import pytest

from repro.core import GatherPolicy
from repro.experiments import TestbedConfig, run_filecopy
from repro.net import ETHERNET, FDDI

MB = 1 << 20


def copy(file_mb=2, **kwargs):
    return run_filecopy(TestbedConfig(**kwargs), file_mb=file_mb)


class TestHeadlineResults:
    def test_gathering_multiplies_write_bandwidth_with_biods(self):
        """Table 3 @7 biods: gathering ~4x the standard server on FDDI."""
        std = copy(netspec=FDDI, write_path="standard", nbiods=7)
        gat = copy(netspec=FDDI, write_path="gather", nbiods=7)
        assert gat.client_kb_per_sec > 2.5 * std.client_kb_per_sec

    def test_standard_server_flat_regardless_of_biods(self):
        """§7.1: the standard server is disk-bound; biods barely help."""
        few = copy(netspec=FDDI, write_path="standard", nbiods=3)
        many = copy(netspec=FDDI, write_path="standard", nbiods=15)
        assert many.client_kb_per_sec < 1.25 * few.client_kb_per_sec

    def test_zero_biod_worst_case_costs_about_15_percent(self):
        """§6.10: the no-biod client loses ~15% under gathering."""
        std = copy(netspec=ETHERNET, write_path="standard", nbiods=0)
        gat = copy(netspec=ETHERNET, write_path="gather", nbiods=0)
        ratio = gat.client_kb_per_sec / std.client_kb_per_sec
        assert 0.70 <= ratio <= 0.95

    def test_gathering_slashes_disk_transactions(self):
        """Table 1/3: trans/sec drops by half or more at >= 7 biods."""
        std = copy(netspec=FDDI, write_path="standard", nbiods=7)
        gat = copy(netspec=FDDI, write_path="gather", nbiods=7)
        assert gat.disk_trans_per_sec < 0.6 * std.disk_trans_per_sec

    def test_more_biods_bigger_batches(self):
        """§9: gathering efficiencies increase with the number of biods."""
        small = copy(netspec=FDDI, write_path="gather", nbiods=3)
        large = copy(netspec=FDDI, write_path="gather", nbiods=15)
        assert large.mean_batch_size > small.mean_batch_size


class TestPrestoDuality:
    def test_presto_gathering_trades_throughput_for_cpu(self):
        """Table 2: under NVRAM, gathering costs some client throughput but
        serves each byte with less CPU."""
        std = copy(netspec=ETHERNET, write_path="standard", nbiods=7, presto_bytes=MB)
        gat = copy(netspec=ETHERNET, write_path="gather", nbiods=7, presto_bytes=MB)
        assert gat.client_kb_per_sec < std.client_kb_per_sec
        cpu_per_kb_std = std.server_cpu_pct / std.client_kb_per_sec
        cpu_per_kb_gat = gat.server_cpu_pct / gat.client_kb_per_sec
        assert cpu_per_kb_gat < cpu_per_kb_std

    def test_presto_standard_is_much_faster_than_plain_disk(self):
        """§4.3: NVRAM acceleration transforms the standard server."""
        plain = copy(netspec=ETHERNET, write_path="standard", nbiods=7)
        presto = copy(netspec=ETHERNET, write_path="standard", nbiods=7, presto_bytes=MB)
        assert presto.client_kb_per_sec > 3 * plain.client_kb_per_sec

    def test_presto_drain_does_its_own_clustering(self):
        """Table 2: disk transactions under Presto are few and large."""
        plain = copy(netspec=ETHERNET, write_path="standard", nbiods=7)
        presto = copy(netspec=ETHERNET, write_path="standard", nbiods=7, presto_bytes=MB)
        plain_kb_per_tx = plain.disk_kb_per_sec / plain.disk_trans_per_sec
        presto_kb_per_tx = presto.disk_kb_per_sec / presto.disk_trans_per_sec
        assert presto_kb_per_tx > 2 * plain_kb_per_tx


class TestStriping:
    def test_stripes_amplify_gathering_gains(self):
        """Table 5: striping pays off far more with gathering than without."""
        std = copy(netspec=FDDI, write_path="standard", nbiods=15, stripes=3, file_mb=3)
        gat = copy(netspec=FDDI, write_path="gather", nbiods=15, stripes=3, file_mb=3)
        assert gat.client_kb_per_sec > 3 * std.client_kb_per_sec


class TestSivaComparison:
    def test_siva_gains_on_plain_disks(self):
        """[SIVA93]'s first-write-as-latency-device does beat the standard
        server on plain disks — that part of the idea works."""
        std = copy(netspec=FDDI, write_path="standard", nbiods=7)
        siva = copy(netspec=FDDI, write_path="siva", nbiods=7)
        assert siva.client_kb_per_sec > 2 * std.client_kb_per_sec

    def test_siva_cannot_gather_under_nvram(self):
        """§6.6 claim: 'it just won't work with NVRAM acceleration where the
        first write is done faster than other writes can arrive' — under
        Presto, Siva degenerates to standard-server behaviour."""
        std = copy(netspec=FDDI, write_path="standard", nbiods=7, presto_bytes=MB)
        siva = copy(netspec=FDDI, write_path="siva", nbiods=7, presto_bytes=MB)
        assert siva.client_kb_per_sec == pytest.approx(
            std.client_kb_per_sec, rel=0.15
        )


class TestPolicyAblations:
    def test_procrastination_grows_batches(self):
        """§6.6: the injected latency is what lets follow-on writes arrive;
        removing it shrinks batches and costs bandwidth."""
        none = copy(
            netspec=FDDI,
            write_path="gather",
            nbiods=7,
            gather_policy=GatherPolicy(interval=0.0),
        )
        default = copy(netspec=FDDI, write_path="gather", nbiods=7)
        assert default.mean_batch_size > 1.4 * none.mean_batch_size
        assert default.client_kb_per_sec > none.client_kb_per_sec

    def test_lifo_reply_order_is_no_better(self):
        """§6.7: LIFO was tried and abandoned; FIFO must be at least as
        good for the sequential writer."""
        fifo = copy(netspec=ETHERNET, write_path="gather", nbiods=4)
        lifo = copy(
            netspec=ETHERNET,
            write_path="gather",
            nbiods=4,
            gather_policy=GatherPolicy(reply_order="lifo"),
        )
        assert fifo.client_kb_per_sec >= 0.95 * lifo.client_kb_per_sec

    def test_learned_clients_rescue_the_dumb_pc(self):
        """§8 future work: the per-client database stops procrastinating
        for single-threaded clients, erasing most of the §6.10 penalty."""
        std = copy(netspec=ETHERNET, write_path="standard", nbiods=0, file_mb=1)
        naive = copy(netspec=ETHERNET, write_path="gather", nbiods=0, file_mb=1)
        learned = copy(
            netspec=ETHERNET,
            write_path="gather",
            nbiods=0,
            file_mb=1,
            gather_policy=GatherPolicy(learned_clients=True),
        )
        assert naive.client_kb_per_sec < 0.92 * std.client_kb_per_sec
        assert learned.client_kb_per_sec > 0.95 * std.client_kb_per_sec

    def test_early_wakeup_extension_never_hurts(self):
        """Extension: waking the procrastinator on arrival (instead of
        sleeping the full interval) keeps batch sizes and recovers a little
        bandwidth."""
        normal = copy(netspec=FDDI, write_path="gather", nbiods=7)
        early = copy(
            netspec=FDDI,
            write_path="gather",
            nbiods=7,
            gather_policy=GatherPolicy(early_wakeup=True),
        )
        assert early.mean_batch_size >= 0.9 * normal.mean_batch_size
        assert early.client_kb_per_sec >= normal.client_kb_per_sec

    def test_disabling_mbuf_hunter_hurts_presto_gathering(self):
        """§6.5: without the mbuf hunter there is no way to see follow-on
        writes under Presto (no I/O event, no blocked nfsds), so batches
        shrink toward one."""
        with_hunter = copy(
            netspec=FDDI, write_path="gather", nbiods=7, presto_bytes=MB
        )
        without = copy(
            netspec=FDDI,
            write_path="gather",
            nbiods=7,
            presto_bytes=MB,
            gather_policy=GatherPolicy(use_mbuf_hunter=False),
        )
        assert with_hunter.mean_batch_size >= without.mean_batch_size


class TestRandomAccess:
    def test_random_writes_amortize_metadata_like_sequential(self):
        """§6.11: gathering's metadata amortization does not depend on
        sequential delivery."""
        from repro.experiments import Testbed
        from repro.workload import write_random

        results = {}
        for write_path in ("standard", "gather"):
            config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7)
            testbed = Testbed(config)
            client = testbed.add_client()
            env = testbed.env
            proc = env.process(
                write_random(env, client, "rand", 1 * MB, writes=96, seed=5)
            )
            env.run(until=proc)
            meta_txs = sum(
                disk.stats.by_kind.get("inode", 0) + disk.stats.by_kind.get("indirect", 0)
                for disk in testbed.disks
            )
            results[write_path] = (proc.value, meta_txs)
        std_time, std_meta = results["standard"]
        gat_time, gat_meta = results["gather"]
        # The §6.11 claim is about *metadata amortization*, which is large;
        # elapsed time is roughly a wash for in-place rewrites (both sides
        # are in the cheap mtime-only regime for most requests).
        assert gat_meta < 0.5 * std_meta
        assert gat_time < 1.15 * std_time
