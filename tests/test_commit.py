"""repro.commit: the async WRITE + COMMIT write path.

Server side (:class:`~repro.commit.path.AsyncCommitWritePath`): unstable
writes acked from the volatile :class:`~repro.commit.path.UnstableLog`,
COMMIT flushes and returns the boot verifier, a background flusher opens
under memory pressure.  Client side
(:class:`~repro.commit.tracker.UncommittedTracker`): held ranges, window
pressure, and verifier-mismatch replay — including across a replica
promotion, where the resend lands on the promoted backup.  Plus the
dup-cache contract for retransmitted COMMITs and the ``repro commit``
experiment smoke.
"""

import pytest

from repro.commit.experiment import CommitConfig, run_commit
from repro.commit.path import UnstableLog
from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs.protocol import CommitArgs, WriteArgs
from repro.overload.window import WriteWindow
from repro.rpc import RpcCall
from repro.server.config import WritePath
from repro.workload import patterned_chunk, write_file

KB = 1024


def make_bed(unstable_limit_bytes=None, nbiods=4, write_window=None):
    config = TestbedConfig(
        netspec=FDDI,
        write_path="async_commit",
        nbiods=nbiods,
        unstable_limit_bytes=unstable_limit_bytes,
    )
    testbed = Testbed(config)
    client = testbed.add_client(write_window=write_window)
    return testbed, client


# -- satellite: CLI/coercion surface ---------------------------------------------


class TestWritePathSurface:
    def test_coerce_accepts_async_commit(self):
        assert WritePath.coerce("async_commit") is WritePath.ASYNC_COMMIT

    def test_coerce_error_enumerates_every_member(self):
        """The --write-path error names every valid value, async_commit
        included — nobody should have to read the source to spell it."""
        with pytest.raises(ValueError) as err:
            WritePath.coerce("bogus")
        message = str(err.value)
        for member in WritePath:
            assert member.value in message

    def test_async_clients_are_v3_with_a_window(self):
        _testbed, client = make_bed()
        assert client.nfs_version == 3
        assert client.write_window is not None


# -- the server's volatile log ---------------------------------------------------


class _FakeVnode:
    def __init__(self, ino):
        self.ino = ino


class TestUnstableLog:
    def test_record_accumulates_bytes(self):
        log = UnstableLog()
        vnode = _FakeVnode(7)
        log.record(vnode, 0, b"a" * 100)
        log.record(vnode, 100, b"b" * 50)
        assert log.buffered_bytes == 150

    def test_take_removes_intersecting_pieces(self):
        log = UnstableLog()
        vnode = _FakeVnode(7)
        log.record(vnode, 0, b"a" * 100)
        log.record(vnode, 200, b"b" * 100)
        pieces, low, high = log.take(7, 0, 100)
        assert [offset for offset, _d in pieces] == [0]
        assert (low, high) == (0, 100)
        assert log.buffered_bytes == 100  # the piece at 200 survives

    def test_take_widens_to_whole_pieces(self):
        """A COMMIT range that splits a piece widens to include all of
        it — a flush can only sync whole cached pieces."""
        log = UnstableLog()
        log.record(_FakeVnode(7), 0, b"a" * (8 * KB))
        pieces, low, high = log.take(7, 4 * KB, 5 * KB)
        assert len(pieces) == 1
        assert (low, high) == (0, 8 * KB)

    def test_take_miss_returns_requested_range(self):
        log = UnstableLog()
        log.record(_FakeVnode(7), 0, b"a" * 100)
        pieces, low, high = log.take(7, 500, 600)
        assert pieces == []
        assert (low, high) == (500, 600)
        assert log.buffered_bytes == 100

    def test_heaviest_prefers_the_fattest_file(self):
        log = UnstableLog()
        log.record(_FakeVnode(1), 0, b"a" * 100)
        log.record(_FakeVnode(2), 0, b"b" * 900)
        assert log.heaviest().vnode.ino == 2
        log.clear()
        assert log.heaviest() is None
        assert log.buffered_bytes == 0


# -- pressure valves -------------------------------------------------------------


class TestPressure:
    def test_server_flushes_past_the_volatile_ceiling(self):
        """Once the unstable log outgrows unstable_limit_bytes, the
        background flusher drains the heaviest file without any COMMIT."""
        testbed, client = make_bed(unstable_limit_bytes=16 * KB)
        env = testbed.env
        env.run(until=env.process(write_file(env, client, "fat", 96 * KB)))
        env.run()
        path = testbed.server.write_path
        assert path.pressure_flushes.value >= 1
        assert path.flushed_bytes.value >= 16 * KB
        assert path.log.buffered_bytes == 0  # close committed the rest
        ufs = testbed.server.ufs
        ino = ufs.root.entries["fat"]
        expected = b"".join(patterned_chunk(i) for i in range(12))
        assert ufs.durable_read(ino, 0, 96 * KB) == expected

    def test_client_commits_under_window_pressure(self):
        """A pinned 2-slot window caps the pressure limit at 8 ranges, so
        a 96 KB (12-range) file COMMITs mid-stream, not just at close."""
        testbed, client = make_bed(write_window=WriteWindow(initial=2, maximum=2))
        env = testbed.env
        env.run(until=env.process(write_file(env, client, "squeezed", 96 * KB)))
        env.run()
        assert client.tracker.pressure_commits.value >= 1
        assert client.tracker.commits_sent.value >= 2  # pressure + close
        assert client.tracker.uncommitted_bytes() == 0


# -- verifier lifecycle ----------------------------------------------------------


class TestVerifierLifecycle:
    def test_crash_mismatch_forces_full_resend(self):
        """A crash between the unstable writes and the COMMIT bumps the
        verifier; the close-time COMMIT mismatches, every held range is
        resent, and the file is durable and intact afterwards."""
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("phoenix")
            for index in range(8):
                yield from client.write_stream(open_file, patterned_chunk(index))
            yield env.timeout(0.1)  # every unstable WRITE answered
            testbed.server.simulate_crash()
            yield from client.close(open_file)  # COMMIT -> mismatch -> replay
            return open_file

        proc = env.process(driver(env))
        env.run(until=proc)
        assert client.tracker.ranges_replayed.value == 8
        assert client.tracker.commits_sent.value == 2  # mismatch, then clean
        assert not client.tracker.has_ranges(proc.value.fhandle)
        ufs = testbed.server.ufs
        ino = ufs.root.entries["phoenix"]
        expected = b"".join(patterned_chunk(i) for i in range(8))
        assert ufs.durable_read(ino, 0, 64 * KB) == expected

    def test_promotion_resends_into_the_promoted_backup(self):
        """Killing the primary of a K=1 group promotes its backup, whose
        verifier is higher than any member's; the client's COMMIT train
        mismatches and replays into the *promoted* server."""
        from repro.cluster.failover import FailoverController, ShardCrash
        from repro.cluster.fleet import Cluster, ClusterConfig
        from repro.cluster.oracle import ClusterOracle

        cluster = Cluster(
            ClusterConfig(servers=2, write_path="async_commit", replicas=1, seed=0)
        )
        env = cluster.env
        oracle = ClusterOracle(cluster)
        client = cluster.add_client()
        oracle.attach(client)
        state = {}

        def driver(env):
            open_file = yield from client.create("failover")
            for index in range(8):
                yield from client.write_stream(open_file, patterned_chunk(index))
            yield env.timeout(0.1)  # all ranges held, none committed
            pin = next(iter(set(client.rpc.router.pins().values())))
            shard = next(
                i for i, s in enumerate(cluster.servers) if s.host == pin
            )
            state["old_primary"] = cluster.servers[shard]
            controller = FailoverController(
                cluster,
                [ShardCrash(at=env.now, shard=shard, promote=True)],
                oracle=oracle,
            ).start()
            yield env.timeout(0.05)  # promotion lands
            state["controller"] = controller
            state["group"] = cluster.group_for_shard(shard)
            yield from client.close(open_file)  # COMMIT -> mismatch -> replay

        env.run(until=env.process(driver(env)))
        env.run()
        oracle.check("final")
        controller, group = state["controller"], state["group"]
        assert controller.promotions == 1
        promoted = group.primary
        assert promoted is not state["old_primary"]
        assert promoted.boot_verifier > state["old_primary"].boot_verifier
        assert client.tracker.ranges_replayed.value == 8
        assert client.tracker.uncommitted_bytes() == 0
        assert oracle.violations == []
        # The replayed bytes are durable on the *promoted* backup.
        ino = promoted.ufs.root.entries["failover"]
        expected = b"".join(patterned_chunk(i) for i in range(8))
        assert promoted.ufs.durable_read(ino, 0, 64 * KB) == expected

    def test_clean_run_commits_once_and_never_replays(self):
        testbed, client = make_bed()
        env = testbed.env
        env.run(until=env.process(write_file(env, client, "calm", 64 * KB)))
        env.run()
        assert client.tracker.commits_sent.value == 1
        assert client.tracker.ranges_replayed.value == 0
        assert testbed.server.write_path.commits.value == 1


# -- satellite: dup-cache handles retransmitted COMMITs --------------------------


class TestDupCacheCommit:
    def test_retransmitted_commit_replays_cached_reply(self):
        """A COMMIT retransmission after the original completed must get
        the cached verifier reply — never a second flush or a second
        bump of the server's commit counter."""
        testbed, setup = make_bed()
        env = testbed.env
        raw = testbed.segment.attach("raw")
        created = {}

        def creator(env):
            open_file = yield from setup.create("victim")
            created["fhandle"] = open_file.fhandle

        env.run(until=env.process(creator(env)))
        fhandle = created["fhandle"]
        replies = []

        def collector(env):
            while True:
                datagram = yield raw.recv()
                replies.append(datagram.payload)

        env.process(collector(env), name="reply-collector")

        def driver(env):
            data = b"\xa1" * (8 * KB)
            write = RpcCall(
                xid=501,
                proc="write",
                args=WriteArgs(fhandle, 0, data, stable=False),
                size=160 + len(data),
                client="raw",
            )
            raw.send("server", write, write.size)
            yield env.timeout(0.05)  # the unstable WRITE is acked
            commit = RpcCall(
                xid=502,
                proc="commit",
                args=CommitArgs(fhandle, 0, 8 * KB),
                size=160,
                client="raw",
            )
            raw.send("server", commit, commit.size)
            yield env.timeout(0.1)  # the COMMIT completes and is cached
            dup = RpcCall(
                xid=502,
                proc="commit",
                args=CommitArgs(fhandle, 0, 8 * KB),
                size=160,
                client="raw",
                attempt=2,
            )
            raw.send("server", dup, dup.size)
            yield env.timeout(0.1)

        env.run(until=env.process(driver(env)))
        env.run()
        commit_replies = [r for r in replies if r.xid == 502]
        assert len(commit_replies) == 2  # original + cached replay
        verifiers = {r.result for r in commit_replies}
        assert len(verifiers) == 1  # same cached verifier both times
        assert testbed.server.svc.duplicates_replayed.value >= 1
        assert testbed.server.write_path.commits.value == 1  # no re-flush


# -- CommitConfig validation -----------------------------------------------------


class TestCommitConfig:
    def test_needs_the_async_arm(self):
        with pytest.raises(ValueError, match="async_commit"):
            CommitConfig(write_paths=("standard", "gather"))

    def test_needs_the_standard_baseline(self):
        with pytest.raises(ValueError, match="standard"):
            CommitConfig(write_paths=("async_commit",))

    def test_rejects_nonpositive_file_mb(self):
        with pytest.raises(ValueError, match="file_mb"):
            CommitConfig(file_mb=0)

    def test_rejects_bad_pressure_limit(self):
        with pytest.raises(ValueError, match="pressure_limit_bytes"):
            CommitConfig(pressure_limit_bytes=0)


# -- experiment smoke ------------------------------------------------------------


class TestCommitExperiment:
    def test_small_run_is_clean_and_async_wins(self):
        report = run_commit(CommitConfig(file_mb=0.25))
        assert report.clean
        assert report.async_beats_standard
        assert report.ok
        assert report.comparison["p50_vs_standard"] < 1.0
        assert report.comparison["throughput_vs_standard"] > 1.0
        assert report.pressure["pressure_flushes"] >= 1
        assert report.pressure["client_pressure_commits"] >= 1
        for arm in report.replica.values():
            assert arm["promotions"] >= 1
        probes = {p["name"]: p for p in report.probes}
        assert set(probes) == {
            "crash_mid_unstable_window",
            "crash_between_write_and_commit",
            "promotion_mid_commit",
        }
        for probe in probes.values():
            assert probe["clean"]
            assert probe["ranges_replayed"] > 0
        payload = report.to_dict()
        assert payload["schema"] == "repro.commit/1"
        assert payload["violations"] == []
