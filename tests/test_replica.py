"""Tests for repro.replica: groups, quorum commit, promotion, the storm."""

import json

import pytest

from repro.cluster import ClusterConfig, ClusterOracle, ShardCrash, build_cluster
from repro.cluster.failover import FailoverController
from repro.cluster.fleet import INO_STRIDE
from repro.replica import replica_storm, run_replica, run_replica_arm
from repro.rpc.messages import RpcCall
from repro.workload.sequential import write_file

KB = 1024


def _write(cluster, client, name, nbytes=8 * KB):
    env = cluster.env
    proc = env.process(write_file(env, client, name, nbytes), name=f"w:{name}")
    env.run(until=proc)
    return proc.value


def _replicated(servers=1, replicas=1, quorum=1, seed=0, **kw):
    return ClusterConfig(
        servers=servers, replicas=replicas, quorum=quorum, seed=seed, **kw
    )


class TestConstruction:
    def test_k0_builds_no_replication_machinery(self):
        cluster = build_cluster(ClusterConfig(servers=2), clients=0)
        assert len(cluster.groups) == 2
        for group in cluster.groups:
            assert group.replicas == 0
            assert group.members == [group.primary]
            assert group.primary.replicator is None

    def test_k0_cluster_run_unchanged_by_replica_layer(self):
        # The replica layer must be invisible at K=0: same seed, same JSON
        # as an identically-configured cluster run.
        from repro.cluster import run_cluster

        config = ClusterConfig(servers=2, seed=0)
        assert run_cluster(config, clients=2).to_json() == run_cluster(
            ClusterConfig(servers=2, seed=0), clients=2
        ).to_json()

    def test_backups_are_full_shards_on_distinct_disks(self):
        cluster = build_cluster(_replicated(servers=2, replicas=2), clients=0)
        for index, group in enumerate(cluster.groups):
            assert group.replicas == 2
            assert [m.host for m in group.members] == [
                f"server-{index}",
                f"server-{index}.b1",
                f"server-{index}.b2",
            ]
            # Same inode range as the primary (handles replay verbatim),
            # but a private UFS and private spindles.
            assert len({id(m.ufs) for m in group.members}) == 3
            for member in group.members[1:]:
                assert member.config.ino_base == (index + 1) * INO_STRIDE
            assert group.primary.replicator.active
            for backup in group.backups():
                assert not backup.replicator.active
        disk_names = [
            disk.name
            for shard in cluster.backup_disks
            for backup in shard
            for disk in backup
        ]
        assert len(disk_names) == len(set(disk_names)) == 4
        # Backups never appear in the shard map: they are not routable.
        assert set(cluster.shard_map.servers) == {"server-0", "server-1"}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="replicas must be >= 0"):
            ClusterConfig(replicas=-1)
        with pytest.raises(ValueError, match="quorum .* cannot exceed"):
            ClusterConfig(replicas=1, quorum=2)
        with pytest.raises(ValueError, match="siva path is not supported"):
            ClusterConfig(replicas=1, write_path="siva")
        # A replicated config must be able to re-resolve stranded calls.
        assert _replicated().failover_attempts == 3


class TestQuorumCommit:
    def test_backup_converges_to_primary_image(self):
        cluster = build_cluster(_replicated(), clients=1)
        client = cluster.clients[0]
        _write(cluster, client, "f0", 16 * KB)
        cluster.env.run()  # drain replication sessions
        group = cluster.groups[0]
        primary, backup = group.primary, group.backups()[0]
        assert backup.replicator.applied_seq >= 1
        assert backup.replicator.applied_seq == primary.replicator.applied_seq
        # The backup holds the identical durable bytes under the same ino.
        ino = primary.ufs.get_inode(2).entries["f0"]
        assert ino >= INO_STRIDE
        size = primary.ufs.cache.durable.inodes[ino].size
        assert size == 16 * KB
        assert backup.ufs.cache.durable.inodes[ino].size == size
        assert backup.ufs.durable_read(ino, 0, size) == primary.ufs.durable_read(
            ino, 0, size
        )
        # And its dup cache was primed with the clients' write replies.
        assert any(
            entry.proc == "write" and entry.reply is not None
            for entry in backup.svc.dup_cache._entries.values()
        )

    def test_commit_waits_for_the_backup_ack(self):
        cluster = build_cluster(_replicated(), clients=1)
        _write(cluster, cluster.clients[0], "f0", 16 * KB)
        replicator = cluster.groups[0].primary.replicator
        assert replicator.batches.value >= 1
        assert replicator.wait.count >= 1
        # Quorum=1 over one live peer: every commit stalls a real round
        # trip, never the K=0 fast path.
        assert replicator.wait.min > 0

    def test_k0_commit_never_stalls(self):
        cluster = build_cluster(_replicated(replicas=0), clients=1)
        _write(cluster, cluster.clients[0], "f0", 16 * KB)
        assert cluster.groups[0].primary.replicator is None

    def test_namespace_ops_replicate(self):
        cluster = build_cluster(_replicated(), clients=1)
        client = cluster.clients[0]
        env = cluster.env

        def ops():
            handle = yield from client.create("doomed")
            yield from client.remove("doomed")
            yield from client.create("kept")
            return handle

        proc = env.process(ops(), name="ns")
        env.run(until=proc)
        env.run()
        backup = cluster.groups[0].backups()[0]
        root = backup.ufs.get_inode(2)
        assert "kept" in root.entries
        assert "doomed" not in root.entries


class TestPromotion:
    def _promote_group0(self, cluster):
        """Crash shard 0's primary and fail over to its freshest backup."""
        group = cluster.groups[0]
        primary = group.primary
        segment = cluster.segment_of(primary.host)
        primary.simulate_crash()
        segment.partition(primary.host)
        segment.partition(primary.replicator.endpoint_host)
        promoted = group.freshest_backup()
        group.promote(promoted)
        cluster.router.repoint(group.logical_host, promoted.host)
        promoted.replicator.activate(resync=True)
        return promoted

    def test_dup_cache_replays_across_promotion(self):
        # A WRITE acked by the old primary, retransmitted after promotion,
        # must get the *cached* reply from the promoted backup — replayed,
        # not re-executed.
        cluster = build_cluster(_replicated(), clients=1)
        client = cluster.clients[0]
        env = cluster.env
        _write(cluster, client, "f0", 16 * KB)
        env.run()
        backup = cluster.groups[0].backups()[0]
        xid = next(
            key[1]
            for key, entry in backup.svc.dup_cache._entries.items()
            if entry.proc == "write" and entry.reply is not None
        )
        promoted = self._promote_group0(cluster)
        assert promoted is backup
        ino = backup.ufs.get_inode(2).entries["f0"]
        executed_before = backup.ufs.cache.durable.inodes[ino].size
        # Handcraft the retransmission the client's biod would send after
        # its timer fires: same xid, same client host, aimed at the host
        # the alias table now resolves the shard to.
        call = RpcCall(
            xid=xid,
            proc="write",
            args=None,
            size=KB,
            client=client.rpc.endpoint.host,
        )
        target = cluster.router.resolve("server-0")
        assert target == backup.host
        client.rpc.endpoint.send(target, call, call.size)
        env.run()
        assert backup.svc.duplicates_replayed.value == 1
        # Replay, not re-execution: the durable image did not change.
        assert backup.ufs.cache.durable.inodes[ino].size == executed_before

    def test_promotion_preserves_acked_writes(self):
        cluster = build_cluster(_replicated(), clients=1)
        client = cluster.clients[0]
        oracle = ClusterOracle(cluster)
        oracle.attach(client)
        _write(cluster, client, "f0", 16 * KB)
        cluster.env.run()
        self._promote_group0(cluster)
        assert oracle.check("post-promotion") == []
        assert oracle.acked_writes == 2

    def test_freshest_backup_wins(self):
        cluster = build_cluster(_replicated(replicas=2), clients=0)
        group = cluster.groups[0]
        b1, b2 = group.backups()
        b2.replicator.applied_seq = 5
        b1.replicator.applied_seq = 3
        assert group.freshest_backup() is b2
        # Ties break to the earliest member, deterministically.
        b1.replicator.applied_seq = 5
        assert group.freshest_backup() is b1


class TestShardCrashValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="crash time"):
            ShardCrash(at=-0.1, shard=0)
        with pytest.raises(ValueError, match="outage must be >= 0"):
            ShardCrash(at=0.1, shard=0, outage=-1.0)

    def test_redirect_requires_an_outage(self):
        with pytest.raises(ValueError, match="requires a positive outage"):
            ShardCrash(at=0.1, shard=0, redirect=True)

    def test_promote_excludes_redirect_and_outage(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ShardCrash(at=0.1, shard=0, outage=0.1, redirect=True, promote=True)
        with pytest.raises(ValueError, match="ignores outage"):
            ShardCrash(at=0.1, shard=0, outage=0.1, promote=True)

    def test_skipped_redirect_is_recorded(self):
        from repro.cluster import run_cluster

        result = run_cluster(
            ClusterConfig(servers=1, seed=0),
            clients=2,
            crashes=[ShardCrash(at=0.02, shard=0, outage=0.1, redirect=True)],
        )
        assert result.clean
        assert not result.faults[0]["redirected"]
        assert result.faults[0]["redirect_skipped"]


class TestRedirectRecovery:
    def test_heal_reclaims_exactly_the_old_arcs(self):
        # Property: dropping a shard and healing it must restore the ring
        # bit-for-bit — every probe key maps to the same shard afterwards.
        cluster = build_cluster(ClusterConfig(servers=3, seed=0), clients=1)
        client = cluster.clients[0]
        env = cluster.env
        probes = [f"probe-{index}" for index in range(256)]
        before = {name: cluster.shard_map.server_for(name) for name in probes}
        controller = FailoverController(
            cluster, [ShardCrash(at=0.01, shard=1, outage=0.25, redirect=True)]
        ).start()
        mid_outage = {}

        def during_outage():
            yield env.timeout(0.05)
            assert "server-1" not in cluster.shard_map.servers
            mid_outage["snapshot"] = {
                name: cluster.shard_map.server_for(name) for name in probes
            }
            handle = yield from client.create("born-in-outage")
            yield from client.write_at(handle, 0, b"x" * 4096)
            yield from client.close(handle)
            mid_outage["fhandle"] = handle.fhandle

        proc = env.process(during_outage(), name="outage-writer")
        env.run(until=proc)
        env.run()
        after = {name: cluster.shard_map.server_for(name) for name in probes}
        assert after == before
        assert controller.log[0]["redirected"]
        # Mid-outage, keys on the dead shard's arcs moved to survivors...
        moved = [n for n in probes if mid_outage["snapshot"][n] != before[n]]
        assert moved and all(before[n] == "server-1" for n in moved)
        # ...and the file created then stays reachable through its pinned
        # handle after the heal (no migration, pins outlive the outage).
        fhandle = mid_outage["fhandle"]
        pinned = cluster.router.server_for_fhandle(fhandle)
        assert pinned != "server-1"

        def reread():
            fattr = yield from client.getattr(fhandle)
            return fattr

        check = env.process(reread(), name="reread")
        env.run(until=check)
        assert check.value.size == 4096


class TestReplicaExperiment:
    def test_promote_storm_holds_the_guarantee(self):
        # Acceptance: a K=1 storm with >= 3 primary crashes mid-workload
        # finishes oracle-clean with byte-identical surviving images.
        arm = run_replica_arm(
            _replicated(servers=3, replicas=1),
            clients=4,
            files_per_client=2,
            file_kb=32,
            crashes=replica_storm(3, 3, promote=True),
        )
        assert arm.crashes == 3
        assert arm.promotions == 3
        assert arm.clean
        assert arm.violations == []
        assert arm.acked_writes > 0
        assert set(arm.acting_primaries.values()) == {
            "server-0.b1",
            "server-1.b1",
            "server-2.b1",
        }

    def test_sweep_reports_the_cost_of_k(self):
        result = run_replica(
            ClusterConfig(servers=2, seed=0),
            replica_counts=[0, 1],
            clients=2,
            files_per_client=1,
            file_kb=16,
            storm_crashes=2,
        )
        assert result.clean
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.replica/1"
        assert [arm["replicas"] for arm in payload["arms"]] == [0, 1]
        assert payload["arms"][0]["promotions"] == 0
        assert payload["arms"][1]["promotions"] == 2
        (row,) = payload["comparison"]
        assert row["replicas"] == 1
        assert row["p99_write_latency_vs_k0"] > 0

    def test_json_is_byte_identical_across_reruns(self):
        kwargs = dict(
            replica_counts=[1],
            clients=2,
            files_per_client=1,
            file_kb=16,
            storm_crashes=2,
        )
        first = run_replica(ClusterConfig(servers=2, seed=3), **kwargs).to_json()
        second = run_replica(ClusterConfig(servers=2, seed=3), **kwargs).to_json()
        assert first == second
