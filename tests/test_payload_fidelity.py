"""The payload-fidelity contract: flyweight and full modes agree.

The flyweight :class:`~repro.payload.Extent` replaces per-write byte
copies with a (length, seed, base) stand-in.  Everything the simulator
*times* keys on ``len()`` alone, so the two modes must agree on every
simulated number — timestamps, acked-write accounting, latency
percentiles, disk totals — and differ only in whether the crash oracle
can byte-compare durable content.  These tests pin that contract.
"""

import pytest

from repro.experiments.bench import run_bench_cell
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.faults.campaign import ChaosCampaign, run_plan
from repro.faults.events import AtTime, FaultPlan, ServerCrash
from repro.faults.oracle import Oracle
from repro.net.spec import FDDI
from repro.payload import (
    PAYLOAD_FLYWEIGHT,
    PAYLOAD_FULL,
    Extent,
    ExtentChain,
    coerce_payload_mode,
    is_bytes_payload,
)
from repro.sim import AllOf
from repro.workload.sequential import patterned_chunk, patterned_extent, write_file


class TestExtent:
    def test_to_bytes_matches_patterned_chunk(self):
        for index in (0, 1, 7, 200):
            for size in (1, 8, 100, 8192):
                assert (
                    patterned_extent(index, size).to_bytes()
                    == patterned_chunk(index, size)
                )

    def test_slice_preserves_logical_bytes(self):
        extent = patterned_extent(3, 8192)
        whole = extent.to_bytes()
        for start, stop in ((0, 8192), (0, 100), (5, 13), (4000, 8192)):
            assert extent.slice(start, stop).to_bytes() == whole[start:stop]

    def test_len_and_payload_discrimination(self):
        assert len(Extent(512, seed=1)) == 512
        assert not is_bytes_payload(Extent(1, seed=0))
        assert is_bytes_payload(b"x") and is_bytes_payload(bytearray(b"x"))
        assert is_bytes_payload(memoryview(b"x"))

    def test_chain_concatenates(self):
        chain = ExtentChain()
        chain.append(patterned_extent(0, 100))
        chain.append(patterned_extent(1, 50).slice(10, 40))
        assert len(chain) == 130
        assert (
            chain.to_bytes()
            == patterned_chunk(0, 100) + patterned_chunk(1, 50)[10:40]
        )

    def test_coerce_rejects_unknown_modes(self):
        assert coerce_payload_mode("full") == PAYLOAD_FULL
        assert coerce_payload_mode("flyweight") == PAYLOAD_FLYWEIGHT
        with pytest.raises(ValueError):
            coerce_payload_mode("bogus")


class TestBenchCellAgreement:
    def test_every_simulated_number_identical_across_modes(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7, seed=0)
        full = run_bench_cell(config, file_mb=0.25, payload=PAYLOAD_FULL)
        fly = run_bench_cell(config, file_mb=0.25, payload=PAYLOAD_FLYWEIGHT)
        # sim_ops_per_sec is wall-clock-derived; everything else must match.
        full.pop("sim_ops_per_sec")
        fly.pop("sim_ops_per_sec")
        assert full == fly


def _crash_plan() -> FaultPlan:
    return FaultPlan(
        name="fidelity-crash",
        events=(ServerCrash(AtTime(0.03), reboot_delay=0.0),),
    )


def _config() -> TestbedConfig:
    return TestbedConfig(
        netspec=FDDI,
        write_path="gather",
        verify_stable=True,
        seed=0,
        tracing=True,
    )


class TestCrashContractAgreement:
    def test_run_plan_identical_results_and_clean_in_both_modes(self):
        results = {
            mode: run_plan(_config(), _crash_plan(), file_kb=64, payload=mode)
            for mode in (PAYLOAD_FULL, PAYLOAD_FLYWEIGHT)
        }
        for mode, result in results.items():
            assert result.clean, (mode, result.violations)
            assert result.crashes == 1
        assert (
            results[PAYLOAD_FULL].to_dict() == results[PAYLOAD_FLYWEIGHT].to_dict()
        )

    def test_acked_ranges_agree_under_crash(self):
        """The oracle's acked byte ranges — the durability promise — must
        be identical whether the workload wrote real bytes or extents."""
        oracles = {}
        for mode in (PAYLOAD_FULL, PAYLOAD_FLYWEIGHT):
            testbed = Testbed(_config())
            client = testbed.add_client()
            oracle = Oracle(testbed)
            oracle.attach(client)
            from repro.faults.controller import FaultController

            FaultController(testbed, _crash_plan(), oracle=oracle).start()
            env = testbed.env
            writers = [
                env.process(
                    write_file(
                        env, client, "fidelity", 64 * 1024, payload=mode
                    ),
                    name="writer",
                )
            ]
            env.run(until=AllOf(env, writers))
            env.run()
            assert not oracle.check("final")
            oracles[mode] = oracle
        full, fly = oracles[PAYLOAD_FULL], oracles[PAYLOAD_FLYWEIGHT]
        assert full.acked_writes == fly.acked_writes
        assert full.acked_byte_total() == fly.acked_byte_total()
        assert full.acked_inos() == fly.acked_inos()
        for ino in full.acked_inos():
            assert full._acked_runs(ino) == fly._acked_runs(ino)

    def test_chaos_campaign_clean_in_flyweight_mode(self):
        report = ChaosCampaign(
            seed=0,
            plans_per_combo=1,
            write_paths=("gather",),
            presto_modes=(False,),
            file_kb=64,
            payload=PAYLOAD_FLYWEIGHT,
        ).execute()
        assert report.clean, report.violations


class TestReplicaAgreement:
    def test_replica_report_identical_across_modes(self):
        from repro.cluster.fleet import ClusterConfig
        from repro.replica.experiment import _run_replica

        reports = {
            mode: _run_replica(
                ClusterConfig(servers=2, seed=0),
                replica_counts=(0, 1),
                clients=2,
                files_per_client=1,
                file_kb=32,
                storm_crashes=1,
                payload=mode,
            )
            for mode in (PAYLOAD_FULL, PAYLOAD_FLYWEIGHT)
        }
        for mode, report in reports.items():
            assert report.clean, (mode, [a.violations for a in report.arms])
        assert (
            reports[PAYLOAD_FULL].to_json() == reports[PAYLOAD_FLYWEIGHT].to_json()
        )
