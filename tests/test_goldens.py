"""Golden-output determinism: seeded CLI runs are byte-stable.

The fixtures under ``tests/goldens/`` pin the ``--json`` output of one
seeded invocation per experiment family.  ``chaos_seed.json``,
``overload_seed.json``, and ``replica_seed.json`` were captured *before*
the flyweight-payload hot-path work landed, so matching them proves the
optimization changed no simulated number.  ``bench_seed.json`` carries
the newer schema (``sim_ops``/``sim_ops_per_sec``/``payload``); its one
wall-clock-derived field is stripped before comparison.
``commit_seed.json`` pins the async WRITE+COMMIT three-way report; its
bench cells already strip ``sim_ops_per_sec`` at the source, so it
compares byte-for-byte like the others.

Any timing-affecting change to the simulator kernel, the network stack,
or the server paths shows up here as a byte diff.  If the change is an
*intentional* model change, regenerate the fixture with the invocation in
``_CASES`` and say so in the commit; if it is meant to be an optimization,
the diff is a bug.
"""

import io
import json
import pathlib
from contextlib import redirect_stdout

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

_CASES = {
    "bench": ["bench", "--file-mb", "1", "--json"],
    "chaos": ["chaos", "--plans", "2", "--file-kb", "64", "--json"],
    "overload": [
        "overload",
        "--write-paths",
        "standard",
        "--presto",
        "off",
        "--loads",
        "15.6",
        "46.9",
        "--clients",
        "4",
        "--duration",
        "1",
        "--json",
    ],
    "commit": ["commit", "--file-mb", "0.25", "--json"],
    "replica": [
        "replica",
        "--servers",
        "2",
        "--clients",
        "3",
        "--replicas",
        "0",
        "1",
        "--files",
        "1",
        "--file-kb",
        "32",
        "--crashes",
        "2",
        "--json",
    ],
}


def _capture(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = main(argv)
    assert status == 0
    return buffer.getvalue()


@pytest.mark.parametrize("name", ["chaos", "commit", "overload", "replica"])
def test_seeded_json_matches_golden_byte_for_byte(name):
    golden = (GOLDEN_DIR / f"{name}_seed.json").read_text()
    assert _capture(_CASES[name]) == golden


def test_bench_matches_golden_modulo_wall_clock():
    golden = json.loads((GOLDEN_DIR / "bench_seed.json").read_text())
    got = json.loads(_capture(_CASES["bench"]))

    def stable(report):
        for cell in report["cells"]:
            cell.pop("sim_ops_per_sec", None)
        return report

    assert stable(got) == stable(golden)
