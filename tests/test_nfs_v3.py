"""Tests for the NFSv3 extension (§8 future work): unstable writes, COMMIT,
write verifiers, and crash/replay recovery."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsClient
from repro.rpc import RpcClient
from repro.workload import patterned_chunk, write_file

KB = 1024


def make_bed(write_path="standard", nfs_version=3, nbiods=4):
    config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=nbiods)
    testbed = Testbed(config)
    endpoint = testbed.segment.attach("v3-client")
    rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
    client = NfsClient(testbed.env, rpc, nbiods=nbiods, nfs_version=nfs_version)
    return testbed, client


class TestUnstableWrites:
    def test_version_validation(self):
        testbed, client = make_bed()
        with pytest.raises(ValueError):
            NfsClient(testbed.env, client.rpc, nfs_version=4)

    def test_unstable_write_replies_fast(self):
        """No disk I/O before the reply: latency is network + CPU only."""
        testbed, v3 = make_bed(nfs_version=3, nbiods=0)
        env = testbed.env

        def driver(env):
            open_file = yield from v3.create("fast")
            before = env.now
            yield from v3.write_stream(open_file, b"a" * 8192)
            return env.now - before, open_file

        proc = env.process(driver(env))
        env.run(until=proc)
        elapsed, _open_file = proc.value
        assert elapsed < 0.005  # a stable v2 write costs ~30 ms here

    def test_data_not_durable_until_commit(self):
        testbed, v3 = make_bed()
        env = testbed.env
        state = {}

        def driver(env):
            open_file = yield from v3.create("pending")
            yield from v3.write_stream(open_file, patterned_chunk(0))
            yield env.timeout(0.05)  # let the biod's RPC finish
            state["before_close"] = testbed.server.ufs.durable_read(
                testbed.server.ufs.root.entries["pending"], 0, 8192
            )
            yield from v3.close(open_file)
            state["after_close"] = testbed.server.ufs.durable_read(
                testbed.server.ufs.root.entries["pending"], 0, 8192
            )

        env.run(until=env.process(driver(env)))
        assert state["before_close"] is None
        assert state["after_close"] == patterned_chunk(0)

    def test_close_commits_whole_file(self):
        testbed, v3 = make_bed()
        env = testbed.env
        proc = env.process(write_file(env, v3, "big", 256 * KB))
        env.run(until=proc)
        ufs = testbed.server.ufs
        ino = ufs.root.entries["big"]
        expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(32))
        assert ufs.durable_read(ino, 0, 256 * KB) == expected

    def test_commit_counted_once_per_close(self):
        testbed, v3 = make_bed()
        env = testbed.env
        env.run(until=env.process(write_file(env, v3, "c", 128 * KB)))
        assert testbed.server.ops_completed["commit"].value == 1

    def test_v3_faster_than_v2_standard(self):
        """§8: reliable asynchronous writes remove the per-write stable
        latency entirely; the standard v2 server cannot compete."""

        def run(nfs_version):
            testbed, client = make_bed(nfs_version=nfs_version, nbiods=4)
            env = testbed.env
            proc = env.process(write_file(env, client, "race", 512 * KB))
            env.run(until=proc)
            return 512 * KB / proc.value

        assert run(3) > 2.0 * run(2)


class TestCrashRecovery:
    def test_verifier_changes_on_crash(self):
        testbed, _v3 = make_bed()
        before = testbed.server.boot_verifier
        testbed.server.simulate_crash()
        assert testbed.server.boot_verifier == before + 1

    def test_crash_discards_unstable_data(self):
        testbed, v3 = make_bed()
        env = testbed.env
        state = {}

        def driver(env):
            open_file = yield from v3.create("lostling")
            yield from v3.write_stream(open_file, patterned_chunk(1))
            yield env.timeout(0.05)
            testbed.server.simulate_crash()
            ufs = testbed.server.ufs
            ino = ufs.root.entries["lostling"]
            state["durable_after_crash"] = ufs.durable_read(ino, 0, 8192)
            state["in_core_size"] = ufs.inodes[ino].size

        env.run(until=env.process(driver(env)))
        assert state["durable_after_crash"] is None  # data really lost
        assert state["in_core_size"] == 0  # metadata reverted to snapshot

    def test_client_replays_after_crash_and_data_survives(self):
        """The v3 contract end-to-end: a crash between unstable writes and
        COMMIT changes the verifier; the client resends its held data and
        commits again; the file is intact afterwards."""
        testbed, v3 = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from v3.create("phoenix")
            for index in range(8):
                yield from v3.write_stream(open_file, patterned_chunk(index))
            yield env.timeout(0.1)  # all unstable writes answered
            testbed.server.simulate_crash()
            yield from v3.close(open_file)  # commit -> mismatch -> replay
            return open_file

        proc = env.process(driver(env))
        env.run(until=proc)
        open_file = proc.value
        assert not v3.tracker.has_ranges(open_file.fhandle)
        ufs = testbed.server.ufs
        ino = ufs.root.entries["phoenix"]
        expected = b"".join(patterned_chunk(i) for i in range(8))
        assert ufs.durable_read(ino, 0, 64 * KB) == expected

    def test_no_replay_when_no_crash(self):
        testbed, v3 = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from v3.create("calm")
            yield from v3.write_stream(open_file, patterned_chunk(0))
            yield from v3.close(open_file)
            return open_file

        proc = env.process(driver(env))
        env.run(until=proc)
        assert not v3.tracker.has_ranges(proc.value.fhandle)
        assert v3.tracker.ranges_replayed.value == 0
        # exactly 1 write on the wire (no resend)
        assert testbed.server.ops_completed["write"].value == 1


class TestMixedEnvironment:
    def test_v2_and_v3_clients_share_a_gathering_server(self):
        """§8: 'a mixed environment of V2 clients ... and V3 clients using
        reliable asynchronous writes' — both complete, both files durable,
        the v2 client's stable-storage contract intact."""
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=4, verify_stable=True)
        testbed = Testbed(config)
        v2 = testbed.add_client()
        endpoint = testbed.segment.attach("v3-client")
        rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
        v3 = NfsClient(testbed.env, rpc, nbiods=4, nfs_version=3)
        env = testbed.env
        p2 = env.process(write_file(env, v2, "v2file", 128 * KB))
        p3 = env.process(write_file(env, v3, "v3file", 128 * KB))

        def waiter(env):
            yield p2
            yield p3

        env.run(until=env.process(waiter(env)))
        assert testbed.server.stable_violations == []
        ufs = testbed.server.ufs
        for name in ("v2file", "v3file"):
            ino = ufs.root.entries[name]
            assert ufs.durable_read(ino, 0, 128 * KB) is not None
