"""Tests for the repro.obs observability layer: spans, registry, exporters."""

import io
import json

import pytest

from repro.experiments import ExperimentSpec, TestbedConfig, run, run_filecopy
from repro.net import FDDI
from repro.obs import (
    NULL_COLLECTOR,
    PHASE_COMMIT,
    PHASE_DISK_IO,
    PHASE_PARKED,
    PHASE_PROCRASTINATE,
    PHASE_REPLY,
    PHASE_RPC,
    PHASE_SOCKBUF,
    PHASE_VNODE_WAIT,
    JsonlExporter,
    PercentileSummary,
    RecordingCollector,
    collector_for,
    install,
    registry_for,
)
from repro.sim import Environment
from repro.sim.errors import SimError


def _copy_config(**overrides):
    base = dict(netspec=FDDI, write_path="gather", nbiods=7, tracing=True)
    base.update(overrides)
    return TestbedConfig(**base)


class TestCollector:
    def test_null_collector_is_disabled_noop(self):
        assert not NULL_COLLECTOR.enabled
        NULL_COLLECTOR.emit("any", "actor", 0.0, 1.0, trace_id=3, foo=1)
        env = Environment()
        assert collector_for(env) is NULL_COLLECTOR

    def test_null_collector_rejects_subscribers(self):
        with pytest.raises(RuntimeError):
            NULL_COLLECTOR.subscribe(lambda span: None)

    def test_install_and_lookup(self):
        env = Environment()
        collector = RecordingCollector()
        assert install(env, collector) is collector
        assert collector_for(env) is collector

    def test_emit_records_and_notifies_subscribers(self):
        collector = RecordingCollector()
        seen = []
        collector.subscribe(seen.append)
        collector.emit("a.phase", "host", 0.0, 1.5, trace_id=7, foo="bar")
        collector.emit("b.phase", "host", 1.5, 2.0)
        assert [s.name for s in collector.spans] == ["a.phase", "b.phase"]
        assert collector.spans[0].duration == 1.5
        assert collector.spans[0].attrs == {"foo": "bar"}
        assert collector.spans[0].seq < collector.spans[1].seq
        assert seen == collector.spans
        assert collector.by_name("a.phase") == [collector.spans[0]]
        assert collector.for_trace(7) == [collector.spans[0]]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        env = Environment()
        metrics = registry_for(env)
        assert registry_for(env) is metrics
        counter = metrics.counter("x.events")
        assert metrics.counter("x.events") is counter
        tally = metrics.tally("x.latency", keep_samples=True)
        assert metrics.tally("x.latency") is tally
        assert "x.events" in metrics
        assert metrics.names() == ["x.events", "x.latency"]

    def test_kind_mismatch_raises(self):
        metrics = registry_for(Environment())
        metrics.counter("dual.name")
        with pytest.raises(SimError):
            metrics.tally("dual.name")

    def test_snapshot_is_deterministic_and_serializable(self):
        env = Environment()
        metrics = registry_for(env)
        metrics.counter("b.count").add(3)
        metrics.tally("a.tally").observe(0.25)
        snap = metrics.snapshot()
        assert list(snap) == ["a.tally", "b.count"]
        assert snap["b.count"]["value"] == 3
        assert snap["a.tally"]["mean"] == 0.25
        json.dumps(snap)  # must be serializable as-is


class TestSpanStream:
    def test_traced_copy_emits_full_lifecycle(self):
        metrics = run_filecopy(_copy_config(), file_mb=0.25)
        assert metrics.phases is not None
        for phase in (
            PHASE_SOCKBUF,
            PHASE_VNODE_WAIT,
            PHASE_PROCRASTINATE,
            PHASE_COMMIT,
            PHASE_PARKED,
            PHASE_REPLY,
        ):
            assert phase in metrics.phases, phase
            assert metrics.phases[phase]["count"] > 0
            assert metrics.phases[phase]["p99"] >= metrics.phases[phase]["p50"] >= 0

    def test_span_stream_is_deterministic(self):
        """Golden property: same seed, same configuration -> identical stream."""
        from repro.experiments.testbed import Testbed
        from repro.workload.sequential import write_file

        def stream():
            testbed = Testbed(_copy_config())
            client = testbed.add_client()
            proc = testbed.env.process(
                write_file(testbed.env, client, "f", 256 * 1024), name="copy"
            )
            testbed.env.run(until=proc)
            # RPC xids come from a process-global counter, so renumber the
            # trace ids densely in first-seen order; everything else must
            # be bit-identical between the two runs.
            ids = {}
            records = []
            for span in testbed.collector.spans:
                record = span.to_dict()
                if "trace_id" in record:
                    record["trace_id"] = ids.setdefault(record["trace_id"], len(ids))
                records.append(record)
            return records

        first, second = stream(), stream()
        assert len(first) > 100
        assert first == second

    def test_tracing_does_not_change_results(self):
        """The no-op collector promise: traced and untraced runs agree."""
        traced = run_filecopy(_copy_config(tracing=True), file_mb=0.25)
        untraced = run_filecopy(_copy_config(tracing=False), file_mb=0.25)
        assert untraced.phases is None
        assert traced.elapsed_seconds == untraced.elapsed_seconds
        assert traced.client_kb_per_sec == untraced.client_kb_per_sec
        assert traced.server_cpu_pct == untraced.server_cpu_pct
        assert traced.disk_trans_per_sec == untraced.disk_trans_per_sec
        assert traced.mean_batch_size == untraced.mean_batch_size

    def test_commit_spans_carry_trace_ids(self):
        from repro.experiments.testbed import Testbed
        from repro.workload.sequential import write_file

        testbed = Testbed(_copy_config())
        client = testbed.add_client()
        proc = testbed.env.process(
            write_file(testbed.env, client, "f", 128 * 1024), name="copy"
        )
        testbed.env.run(until=proc)
        commits = testbed.collector.by_name(PHASE_COMMIT)
        assert commits and all(span.trace_id is not None for span in commits)
        # Every committed write's trace also saw the socket buffer and reply.
        one = commits[0]
        names = {span.name for span in testbed.collector.for_trace(one.trace_id)}
        assert {PHASE_RPC, PHASE_SOCKBUF, PHASE_COMMIT, PHASE_REPLY} <= names
        # Device spans exist and are traceless.
        disk = testbed.collector.by_name(PHASE_DISK_IO)
        assert disk and all(span.trace_id is None for span in disk)


class TestExporters:
    def test_jsonl_exporter_streams_valid_lines(self):
        collector = RecordingCollector()
        buffer = io.StringIO()
        collector.subscribe(JsonlExporter(buffer))
        collector.emit("a.phase", "host", 0.0, 1.0, trace_id=1, k="v")
        collector.emit("b.phase", "host", 1.0, 2.0)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a.phase"
        assert first["trace_id"] == 1
        assert first["attrs"] == {"k": "v"}

    def test_percentile_summary_table_and_render(self):
        summary = PercentileSummary(phases=None)
        collector = RecordingCollector()
        collector.subscribe(summary)
        for n in range(1, 101):
            collector.emit("x.phase", "host", 0.0, n / 1000.0)
        table = summary.table()
        assert table["x.phase"]["count"] == 100
        assert table["x.phase"]["p50"] == pytest.approx(0.050)
        assert table["x.phase"]["p95"] == pytest.approx(0.095)
        assert table["x.phase"]["p99"] == pytest.approx(0.099)
        assert "x.phase" in summary.render()


class TestFacade:
    def test_run_copy_spec(self):
        metrics = run(
            ExperimentSpec(kind="copy", config=_copy_config(tracing=False), file_mb=0.25)
        )
        assert metrics.client_kb_per_sec > 0
        assert metrics.handoffs_nfsd is not None

    def test_run_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ExperimentSpec(kind="frobnicate")

    def test_run_copy_requires_config(self):
        with pytest.raises(ValueError):
            run(ExperimentSpec(kind="copy"))

    def test_metrics_to_json_round_trips(self):
        metrics = run_filecopy(_copy_config(), file_mb=0.25)
        payload = json.loads(json.dumps(metrics.to_json()))
        assert payload["label"].endswith("/gather")
        assert "phases" in payload
        assert payload["phases"][PHASE_COMMIT]["p95"] > 0


class TestTraceFromSpans:
    def test_figure1_needs_no_monkeypatching(self):
        from repro.experiments import figure1

        sides = figure1(file_kb=192)
        for name in ("standard", "gathering"):
            side = sides[name]
            assert side["writes"] > 0
            assert side["disk_transactions"] > 0
            assert side["replies"] > 0
            assert "8K Write" in side["rendered"]
        # Gathering amortizes the metadata update: fewer disk transactions
        # per reply than the standard server in the same window.
        std = sides["standard"]
        gat = sides["gathering"]
        assert (
            gat["disk_transactions"] / max(gat["replies"], 1)
            < std["disk_transactions"] / max(std["replies"], 1)
        )
