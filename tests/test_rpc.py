"""Tests for the RPC layer: client retransmission, svc server, dup cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ETHERNET, Segment
from repro.rpc import (
    CLASS_HEAVY,
    DuplicateRequestCache,
    HandleCache,
    RpcCall,
    RpcClient,
    RpcReply,
    RpcTimeoutPolicy,
    SvcServer,
)
from repro.sim import Environment


def make_pair(env, loss_rate=0.0, seed=0):
    segment = Segment(env, ETHERNET, loss_rate=loss_rate, seed=seed)
    client_ep = segment.attach("client")
    server_ep = segment.attach("server")
    client = RpcClient(env, client_ep, "server")
    svc = SvcServer(env, server_ep)
    return client, svc, segment


def echo_server(env, svc, delay=0.0, count=None):
    """A trivial server process answering every request with its args."""

    def serve():
        served = 0
        while count is None or served < count:
            handle = yield from svc.next_request()
            if delay:
                yield env.timeout(delay)
            svc.send_reply(handle, "ok", handle.call.args)
            served += 1

    return env.process(serve(), name="echo")


class TestRoundTrip:
    def test_call_reply(self):
        env = Environment()
        client, svc, _segment = make_pair(env)
        echo_server(env, svc, count=1)

        def caller(env):
            reply = yield from client.call("lookup", {"name": "f"}, size=150)
            return reply

        proc = env.process(caller(env))
        env.run(until=proc)
        assert proc.value.ok
        assert proc.value.result == {"name": "f"}
        assert client.retransmissions.value == 0

    def test_concurrent_calls_matched_by_xid(self):
        env = Environment()
        client, svc, _segment = make_pair(env)
        echo_server(env, svc, count=5)
        results = []

        def caller(env, tag):
            reply = yield from client.call("read", {"tag": tag}, size=200)
            results.append(reply.result["tag"])

        for tag in range(5):
            env.process(caller(env, tag))
        env.run()
        assert sorted(results) == [0, 1, 2, 3, 4]

    def test_latency_recorded(self):
        env = Environment()
        client, svc, _segment = make_pair(env)
        echo_server(env, svc, delay=0.01, count=1)

        def caller(env):
            yield from client.call("write", b"x" * 100, size=260, weight=CLASS_HEAVY)

        env.run(until=env.process(caller(env)))
        assert client.latency.count == 1
        assert client.latency.mean > 0.01


class TestRetransmission:
    def test_lost_request_retransmitted(self):
        env = Environment()
        # 30% frame loss: some requests/replies vanish, client must retry.
        client, svc, segment = make_pair(env, loss_rate=0.3, seed=7)
        echo_server(env, svc, count=None)
        done = []

        def caller(env):
            for i in range(10):
                reply = yield from client.call("write", i, size=8352, weight=CLASS_HEAVY)
                done.append(reply.result)

        proc = env.process(caller(env))
        env.run(until=proc)
        assert done == list(range(10))
        assert client.retransmissions.value > 0

    def test_timeout_policy_starts_at_reference_default(self):
        policy = RpcTimeoutPolicy()
        assert policy.timeout_for(CLASS_HEAVY, attempt=1) == pytest.approx(1.1)
        assert policy.timeout_for(CLASS_HEAVY, attempt=2) == pytest.approx(2.2)

    def test_timeout_policy_adapts_upward_for_slow_server(self):
        policy = RpcTimeoutPolicy()
        for _ in range(100):
            policy.observe(CLASS_HEAVY, latency=2.0)
        assert policy.base(CLASS_HEAVY) > 5.0

    def test_timeout_policy_floors_at_initial(self):
        policy = RpcTimeoutPolicy()
        for _ in range(100):
            policy.observe(CLASS_HEAVY, latency=0.001)
        assert policy.base(CLASS_HEAVY) >= 1.1

    def test_timeout_policy_ceiling(self):
        policy = RpcTimeoutPolicy(ceiling=10.0)
        for _ in range(200):
            policy.observe(CLASS_HEAVY, latency=100.0)
        assert policy.base(CLASS_HEAVY) <= 10.0
        assert policy.timeout_for(CLASS_HEAVY, attempt=10) <= 10.0


class TestDuplicateCache:
    def make_call(self, xid=1, proc="write"):
        return RpcCall(xid=xid, proc=proc, args=None, size=100, client="c")

    def test_new_request_registers(self):
        env = Environment()
        cache = DuplicateRequestCache(env)
        assert cache.check(self.make_call()) == ("new", None)

    def test_duplicate_in_progress_dropped(self):
        env = Environment()
        cache = DuplicateRequestCache(env)
        cache.check(self.make_call())
        assert cache.check(self.make_call()) == ("drop", None)
        assert cache.hits_in_progress == 1

    def test_recent_nonidempotent_replayed(self):
        env = Environment()
        cache = DuplicateRequestCache(env)
        call = self.make_call()
        cache.check(call)
        reply = RpcReply(xid=1, status="ok", result="saved")
        cache.record_done(call, reply)
        disposition, cached = cache.check(self.make_call())
        assert disposition == "replay"
        assert cached.result == "saved"

    def test_idempotent_duplicate_reexecuted(self):
        env = Environment()
        cache = DuplicateRequestCache(env)
        call = self.make_call(proc="read")
        cache.check(call)
        cache.record_done(call, RpcReply(xid=1, status="ok", result="r"))
        assert cache.check(self.make_call(proc="read")) == ("execute", None)

    def test_stale_done_entry_reexecuted(self):
        env = Environment()
        cache = DuplicateRequestCache(env, reply_window=1.0)
        call = self.make_call()
        cache.check(call)
        cache.record_done(call, RpcReply(xid=1, status="ok", result="old"))

        def later(env):
            yield env.timeout(5.0)

        env.run(until=env.process(later(env)))
        assert cache.check(self.make_call()) == ("execute", None)

    def test_lru_trimming(self):
        env = Environment()
        cache = DuplicateRequestCache(env, max_entries=3)
        for xid in range(10):
            cache.check(self.make_call(xid=xid))
        assert len(cache) == 3

    def test_forget(self):
        env = Environment()
        cache = DuplicateRequestCache(env)
        call = self.make_call()
        cache.check(call)
        cache.forget(call)
        assert cache.check(self.make_call()) == ("new", None)


class TestSvcServer:
    def test_duplicate_write_not_reexecuted_end_to_end(self):
        """A client retransmission of a completed write gets the cached
        reply; the server executes the write only once."""
        env = Environment()
        segment = Segment(env, ETHERNET)
        client_ep = segment.attach("client")
        server_ep = segment.attach("server")
        svc = SvcServer(env, server_ep)
        executions = []

        def serve():
            for _ in range(2):
                handle = yield from svc.next_request()
                executions.append(handle.call.xid)
                svc.send_reply(handle, "ok", "done")

        env.process(serve(), name="server")
        replies = []

        def caller(env):
            call = RpcCall(xid=99, proc="write", args=None, size=8352, client="client")
            client_ep.send("server", call, call.size)
            yield env.timeout(0.5)
            retransmit = RpcCall(
                xid=99, proc="write", args=None, size=8352, client="client", attempt=2
            )
            client_ep.send("server", retransmit, retransmit.size)
            for _ in range(2):
                datagram = yield client_ep.recv()
                replies.append(datagram.payload)

        env.process(caller(env))
        env.run(until=env.timeout(5))
        assert executions == [99]  # executed once
        assert len(replies) == 2  # but answered twice (replay)
        assert svc.duplicates_replayed.value == 1

    def test_handle_cache_reuse(self):
        cache = HandleCache(initial=2)
        a = cache.acquire()
        b = cache.acquire()
        c = cache.acquire()  # beyond initial: allocates
        assert cache.allocated == 1
        assert cache.in_use == 3
        cache.release(a)
        d = cache.acquire()
        assert d is a
        assert cache.peak_in_use == 3
        cache.release(b)
        cache.release(c)
        cache.release(d)
        assert cache.in_use == 0

    def test_double_reply_rejected(self):
        env = Environment()
        _client, svc, _segment = make_pair(env)
        handles = []

        def serve():
            handle = yield from svc.next_request()
            svc.send_reply(handle, "ok", None)
            handles.append(handle)

        env.process(serve())

        def caller(env):
            call = RpcCall(xid=1, proc="read", args=None, size=100, client="client")
            svc.endpoint.segment.endpoint("client").send("server", call, 100)
            yield env.timeout(1)

        env.process(caller(env))
        env.run()
        with pytest.raises(ValueError):
            svc.send_reply(handles[0], "ok", None)


@given(
    latencies=st.lists(st.floats(0.001, 5.0), min_size=1, max_size=50),
)
@settings(max_examples=50, deadline=None)
def test_property_policy_base_stays_bounded(latencies):
    policy = RpcTimeoutPolicy()
    for latency in latencies:
        policy.observe(CLASS_HEAVY, latency)
        base = policy.base(CLASS_HEAVY)
        assert policy.floor <= base <= policy.ceiling
