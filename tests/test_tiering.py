"""Heterogeneous tiers, placement, and crash-safe live migration
(repro.tiering).

The heart of the suite is the migration fault matrix: a file that is
*actively being written* migrates between shards while the source
crashes, the destination crashes, the network partitions, or a replica
promotion swaps the acting primary mid-flight — and in every case the
extended cluster oracle (acked ranges satisfiable at exactly one
authoritative location) must come out clean and the bytes must be
byte-identical at the final authority.
"""

import json

import pytest

from repro.cluster.failover import FailoverController, ShardCrash
from repro.cluster.fleet import Cluster, ClusterConfig
from repro.cluster.oracle import ClusterOracle
from repro.server.config import WritePath
from repro.tiering import (
    HotFirstPlacement,
    LeastLoadPlacement,
    MigrationEngine,
    MigrationPlan,
    MostFreePlacement,
    TierConfig,
    TieringConfig,
    make_policy,
    run_tiering,
)
from repro.workload.sequential import patterned_chunk
from repro.workload.zipf import tenant_file_name, zipf_tenant, zipf_weights

CHUNK = 4096


def mixed_config(hot=1, cold=2, seed=1, **kw) -> ClusterConfig:
    return ClusterConfig(
        tiers=[
            TierConfig(name="hot", shards=hot, presto_bytes=1 << 20, weight=2.0),
            TierConfig(name="cold", shards=cold),
        ],
        seed=seed,
        **kw,
    )


class TestTierConfig:
    def test_effective_weight_defaults_from_fs_bytes(self):
        from repro.tiering.tiers import DEFAULT_FS_BYTES

        tier = TierConfig(name="big", shards=1, fs_bytes=DEFAULT_FS_BYTES * 2)
        assert tier.effective_weight == pytest.approx(2.0)

    def test_explicit_weight_wins(self):
        tier = TierConfig(name="hot", shards=1, weight=3.0)
        assert tier.effective_weight == 3.0

    def test_accelerated_means_presto(self):
        assert TierConfig(name="hot", shards=1, presto_bytes=1 << 20).accelerated
        assert not TierConfig(name="cold", shards=1).accelerated

    def test_validation(self):
        with pytest.raises(ValueError):
            TierConfig(name="", shards=1)
        with pytest.raises(ValueError):
            TierConfig(name="x", shards=0)
        with pytest.raises(ValueError):
            TierConfig(name="x", shards=1, weight=-1.0)


class TestFleetTiers:
    def test_servers_derived_from_tiers(self):
        cluster = Cluster(mixed_config(hot=2, cold=3))
        assert len(cluster.servers) == 5
        assert cluster.tier_of["server-0"] == "hot"
        assert cluster.tier_of["server-1"] == "hot"
        assert cluster.tier_of["server-4"] == "cold"

    def test_hot_shards_get_presto_cold_do_not(self):
        from repro.nvram.presto import PrestoCache

        cluster = Cluster(mixed_config(hot=1, cold=1))
        assert isinstance(cluster.servers[0].storage, PrestoCache)
        assert not isinstance(cluster.servers[1].storage, PrestoCache)

    def test_ring_is_capacity_weighted(self):
        cluster = Cluster(mixed_config(hot=1, cold=2))
        assert cluster.shard_map.weight_of("server-0") == 2.0
        assert cluster.shard_map.weight_of("server-1") == 1.0

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                tiers=[TierConfig(name="t", shards=1), TierConfig(name="t", shards=1)]
            )

    def test_backups_mirror_their_tier(self):
        from repro.nvram.presto import PrestoCache

        cluster = Cluster(mixed_config(hot=1, cold=1, replicas=1))
        backup = cluster.groups[0].members[1]
        assert cluster.tier_of[backup.host] == "hot"
        assert isinstance(backup.storage, PrestoCache)

    def test_homogeneous_fleet_unchanged(self):
        # No tiers: the ring is unweighted and tier_of reads "default".
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        assert cluster.tier_of["server-0"] == "default"
        assert cluster.shard_map.weight_of("server-0") == 1.0


class TestZipfWorkload:
    def test_weights_normalized_and_skewed(self):
        weights = zipf_weights(4, 1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[1] > weights[3]

    def test_zero_skew_is_uniform(self):
        assert zipf_weights(5, 0.0) == pytest.approx([0.2] * 5)

    def test_tenant_appends_are_deterministic(self):
        def total(seed):
            cluster = Cluster(ClusterConfig(servers=2, seed=3))
            env = cluster.env
            client = cluster.add_client()
            proc = env.process(
                zipf_tenant(env, client, tenant=0, files=2, ops=8, seed=seed),
                name="tenant",
            )
            env.run(until=proc)
            env.run()
            sizes = []
            for server in cluster.servers:
                for name, ino in sorted(server.ufs.root.entries.items()):
                    sizes.append((name, server.ufs.inodes[ino].size))
            return sizes

        assert total(5) == total(5)

    def test_distinct_tenants_hammer_distinct_files(self):
        # Rank-0 of tenant t rotates to file index t % files.
        assert tenant_file_name(0, 0) == "t0-f0"
        assert tenant_file_name(1, 1) == "t1-f1"


class TestPlacementPolicies:
    def test_most_free_prefers_emptiest_shard(self):
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        policy = MostFreePlacement(cluster)
        # Consume space on server-0 by marking blocks allocated.
        cluster.servers[0].ufs.allocator._allocated.update(range(64))
        assert policy.place("anything") == "server-1"

    def test_least_load_prefers_idle_shard(self):
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        policy = LeastLoadPlacement(cluster)
        cluster.servers[0].endpoint.inbox.items.append(object())
        assert policy.place("anything") == "server-1"

    def test_hot_first_prefers_hot_tier(self):
        cluster = Cluster(mixed_config(hot=1, cold=2))
        policy = HotFirstPlacement(cluster)
        assert policy.place("f") == "server-0"
        assert policy.spills == 0

    def test_hot_first_spills_when_reserve_breached(self):
        cluster = Cluster(mixed_config(hot=1, cold=2))
        policy = HotFirstPlacement(cluster, reserve_fraction=0.5)
        server = cluster.servers[0]
        blocks = server.config.fs_bytes // server.config.block_size
        server.ufs.allocator._allocated.update(range(blocks // 2 + 1))
        chosen = policy.place("f")
        assert cluster.tier_of[chosen] == "cold"
        assert policy.spills == 1

    def test_make_policy_registry(self):
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        assert make_policy("hash", cluster) is None
        assert isinstance(make_policy("mfs", cluster), MostFreePlacement)
        with pytest.raises(ValueError):
            make_policy("nope", cluster)

    def test_router_pins_placement_choice(self):
        # A placed name keeps routing to its shard even though the pure
        # hash would send it elsewhere.
        cluster = Cluster(mixed_config(hot=1, cold=2))
        cluster.router.set_placement(HotFirstPlacement(cluster))
        env = cluster.env
        client = cluster.add_client()

        def create():
            open_file = yield from client.create("pinned-name")
            yield from client.close(open_file)

        proc = env.process(create(), name="create")
        env.run(until=proc)
        env.run()
        assert cluster.router.server_for_name("pinned-name") == "server-0"


def run_migration(
    crash_picks=None,
    replicas=0,
    promote=False,
    outage=0.0,
    chunks=50,
    lease_ttl=None,
    write_path=None,
    close_after=True,
    crash_at=0.05,
):
    """Drive one live migration under an active writer, optionally with a
    fault injected mid-copy.  Returns (cluster, oracle, engine, state)."""
    kw = {"replicas": replicas}
    if lease_ttl is not None:
        kw["lease_ttl"] = lease_ttl
    if write_path is not None:
        kw["write_path"] = write_path
    config = ClusterConfig(servers=3, seed=1, **kw)
    cluster = Cluster(config)
    oracle = ClusterOracle(cluster)
    env = cluster.env
    client = cluster.add_client()
    oracle.attach(client)

    def writer():
        open_file = yield from client.create("victim")
        for index in range(chunks):
            yield env.timeout(0.002)
            yield from client.write_stream(open_file, patterned_chunk(index, CHUNK))
        if close_after:
            yield from client.close(open_file)
        return open_file

    proc = env.process(writer(), name="writer")
    engine = MigrationEngine(cluster, oracle=oracle, copy_pace=0.002)
    source = cluster.shard_map.server_for("victim")
    dest = next(h for h in cluster.shard_map.servers if h != source)
    engine.start([MigrationPlan(at=0.02, name="victim", dest=dest)])
    if crash_picks is not None:
        shard = int(crash_picks(source, dest).split("-")[1])
        crashes = [
            ShardCrash(
                at=crash_at,
                shard=shard,
                promote=promote,
                outage=outage,
                redirect=bool(outage),
            )
        ]
        FailoverController(cluster, crashes, oracle=oracle).start()
    env.run(until=proc)
    env.run(until=env.now + 5.0)
    env.run()
    oracle.check("final")
    if replicas:
        oracle.check_divergence("quiesce")
    return cluster, oracle, engine, proc.value


def assert_migrated_clean(cluster, oracle, engine, chunks=50):
    record = engine.records[0]
    assert record["outcome"] == "done"
    assert oracle.clean, oracle.violations
    state = engine.active["victim"]
    authority = cluster.server_by_host(cluster.router.resolve(state["authority"]))
    want = b"".join(patterned_chunk(index, CHUNK) for index in range(chunks))
    assert authority.ufs.durable_read(state["ino"], 0, len(want)) == want
    assert cluster.router.server_for_name("victim") == state["authority"]


class TestLiveMigration:
    def test_migration_under_active_writer(self):
        cluster, oracle, engine, _ = run_migration()
        assert_migrated_clean(cluster, oracle, engine)
        assert engine.records[0]["attempts"] == 1
        # Single-copy: the source no longer holds the inode.
        state = engine.active["victim"]
        source = cluster.server_by_host(state["source"])
        assert state["ino"] not in source.ufs.inodes

    def test_source_crash_mid_copy(self):
        cluster, oracle, engine, _ = run_migration(crash_picks=lambda s, d: s)
        assert_migrated_clean(cluster, oracle, engine)
        # The crash wiped the migration session: the engine must have
        # aborted and retried rather than cutting over on a dead fence.
        assert engine.records[0]["attempts"] >= 2

    def test_dest_crash_mid_copy(self):
        cluster, oracle, engine, _ = run_migration(crash_picks=lambda s, d: d)
        assert_migrated_clean(cluster, oracle, engine)

    def test_partition_mid_copy(self):
        cluster, oracle, engine, _ = run_migration(
            crash_picks=lambda s, d: s, outage=0.08
        )
        assert_migrated_clean(cluster, oracle, engine)

    def test_source_promotion_mid_copy(self):
        cluster, oracle, engine, _ = run_migration(
            crash_picks=lambda s, d: s, replicas=1, promote=True
        )
        assert_migrated_clean(cluster, oracle, engine)

    def test_dest_promotion_mid_copy(self):
        cluster, oracle, engine, _ = run_migration(
            crash_picks=lambda s, d: d, replicas=1, promote=True
        )
        assert_migrated_clean(cluster, oracle, engine)

    def test_migration_of_absent_name_is_gone(self):
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        oracle = ClusterOracle(cluster)
        engine = MigrationEngine(cluster, oracle=oracle)
        engine.start([MigrationPlan(at=0.01, name="ghost", dest="server-1")])
        cluster.env.run()
        assert engine.records[0]["outcome"] == "gone"

    def test_migration_to_source_is_noop(self):
        cluster = Cluster(ClusterConfig(servers=2, seed=1))
        oracle = ClusterOracle(cluster)
        env = cluster.env
        client = cluster.add_client()
        oracle.attach(client)

        def writer():
            open_file = yield from client.create("stay")
            yield from client.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from client.close(open_file)

        proc = env.process(writer(), name="writer")
        env.run(until=proc)
        home = cluster.router.server_for_name("stay")
        engine = MigrationEngine(cluster, oracle=oracle)
        engine.start([MigrationPlan(at=env.now + 0.01, name="stay", dest=home)])
        env.run()
        assert engine.records[0]["outcome"] == "noop"

    def test_contract_checked_at_every_oracle_check(self):
        # The engine registers its contract with the oracle: a poisoned
        # pin (authority disagreeing with the router) must surface.
        cluster, oracle, engine, _ = run_migration()
        state = engine.active["victim"]
        state["authority"] = state["source"]  # lie about authority
        oracle.check("poisoned")
        assert any("migration" in v for v in oracle.violations)


class TestRepointRaces:
    """Satellite: router repoints racing in-flight client machinery."""

    def test_reroute_resolves_before_every_attempt(self):
        # A write parked at the source is abandoned (never acked there);
        # the client's retransmission must re-resolve the route and land
        # on the new authority without manual refresh — no lost ack.
        cluster, oracle, engine, _ = run_migration(chunks=80)
        assert_migrated_clean(cluster, oracle, engine, chunks=80)
        assert oracle.acked_writes == 40  # every 8K block acked somewhere

    def test_repoint_races_pending_commit_verifier(self):
        # async WRITE + COMMIT: unstable writes land at the source, the
        # file migrates, then close() COMMITs against the destination.
        # The shipped verifier state (or the client's replay_stale path)
        # must make every acked range durable at the new authority.
        cluster, oracle, engine, _ = run_migration(
            write_path=WritePath.ASYNC_COMMIT, chunks=60
        )
        assert_migrated_clean(cluster, oracle, engine, chunks=60)

    def test_repoint_races_lease_recalls(self):
        # With leases on, the migrating writer holds cached state the
        # server may recall mid-migration; the repoint must not strand
        # the recall or the cached dirty data.
        cluster, oracle, engine, _ = run_migration(lease_ttl=0.2, chunks=60)
        assert_migrated_clean(cluster, oracle, engine, chunks=60)


class TestTieringExperiment:
    @pytest.fixture(scope="class")
    def quick(self):
        return TieringConfig(
            seed=11,
            tenants=3,
            files_per_tenant=2,
            ops_per_tenant=12,
            policies=("hash", "hot-first"),
            storm_migrations=2,
        )

    @pytest.fixture(scope="class")
    def result(self, quick):
        return run_tiering(quick)

    def test_experiment_clean(self, result):
        assert result.clean
        for arm in result.arms:
            assert arm.clean, arm.violations

    def test_storm_migrations_complete_under_faults(self, result):
        storm = result.storm
        assert storm["crashes"] >= 1
        assert storm["completed"] == storm["started"]
        for record in storm["migrations"]:
            assert record["outcome"] in ("done", "noop")

    def test_json_byte_identical_across_reruns(self, quick, result):
        again = run_tiering(quick)
        assert result.to_json() == again.to_json()
        json.loads(result.to_json())  # well-formed

    def test_mixed_fleet_beats_all_cold_p99(self):
        result = run_tiering(
            TieringConfig(seed=7, policies=("hot-first",), storm_migrations=1)
        )
        assert result.hot_beats_cold
        baseline = result.baseline
        steered = next(a for a in result.arms if a.policy == "hot-first")
        assert (
            steered.write_latency_ms["p99"] < baseline.write_latency_ms["p99"]
        )

    def test_runner_facade_dispatches_tiering(self, quick):
        from repro.experiments import ExperimentSpec, run

        result = run(ExperimentSpec(kind="tiering", config=quick))
        assert result.to_dict()["schema"] == "repro.tiering/1"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TieringConfig(policies=("warm-ish",))
        with pytest.raises(ValueError):
            TieringConfig(tenants=0)
        with pytest.raises(ValueError):
            TieringConfig(storm_replicas=0)
