"""Tests for cylinder-group block/inode allocation."""

import pytest

from repro.fs import Allocator, NoSpace

KB = 1024
MB = 1024 * 1024


def test_groups_partition_capacity():
    alloc = Allocator(capacity_bytes=256 * MB, group_size=32 * MB)
    assert alloc.total_groups == 8


def test_sequential_allocations_are_contiguous():
    alloc = Allocator(capacity_bytes=256 * MB)
    first = alloc.allocate_near(ino=2)
    second = alloc.allocate_near(ino=2)
    third = alloc.allocate_near(ino=2)
    assert second == first + alloc.block_size
    assert third == second + alloc.block_size


def test_inode_and_data_share_cylinder_group():
    """The inode<->data seek distance must be intra-group (locality)."""
    alloc = Allocator(capacity_bytes=256 * MB, group_size=32 * MB)
    ino = 10
    inode_addr = alloc.inode_block_addr(ino)
    data_addr = alloc.allocate_near(ino)
    assert abs(data_addr - inode_addr) < 32 * MB


def test_different_inos_map_to_different_groups():
    alloc = Allocator(capacity_bytes=256 * MB, group_size=32 * MB)
    addrs = {alloc.group_for_inode(ino) for ino in range(8)}
    assert len(addrs) == 8


def test_free_and_reuse():
    alloc = Allocator(capacity_bytes=64 * MB)
    addr = alloc.allocate_near(2)
    count = alloc.allocated_count
    alloc.free(addr)
    assert alloc.allocated_count == count - 1
    again = alloc.allocate_near(2)
    assert again == addr  # free list reuse


def test_double_free_rejected():
    alloc = Allocator(capacity_bytes=64 * MB)
    addr = alloc.allocate_near(2)
    alloc.free(addr)
    with pytest.raises(ValueError):
        alloc.free(addr)


def test_spill_into_next_group():
    alloc = Allocator(capacity_bytes=2 * MB, group_size=1 * MB, inode_table_blocks=4)
    # group data area: 1MB - 4*8K = 96 blocks usable after 32K inode table
    seen_groups = set()
    for _ in range(200):
        try:
            addr = alloc.allocate_near(0)
        except NoSpace:
            break
        seen_groups.add(addr // (1 * MB))
    assert seen_groups == {0, 1}


def test_exhaustion_raises_nospace():
    alloc = Allocator(capacity_bytes=1 * MB, group_size=1 * MB, inode_table_blocks=4)
    with pytest.raises(NoSpace):
        for _ in range(10_000):
            alloc.allocate_near(0)


def test_too_small_capacity_rejected():
    with pytest.raises(ValueError):
        Allocator(capacity_bytes=8 * KB, group_size=8 * KB, inode_table_blocks=4)


def test_inode_block_addr_stable():
    alloc = Allocator(capacity_bytes=256 * MB)
    assert alloc.inode_block_addr(7) == alloc.inode_block_addr(7)
