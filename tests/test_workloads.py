"""Tests for the workload generators: sequential, random, dumb PC, LADDIS."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.net import ETHERNET, FDDI
from repro.workload import (
    DUMB_PC_THINK_TIME,
    SFS_MIX,
    LaddisGenerator,
    make_dumb_pc,
    patterned_chunk,
    write_file,
    write_random,
)

KB = 1024
MB = 1 << 20


class TestPatternedChunk:
    def test_exact_size(self):
        assert len(patterned_chunk(0, 8192)) == 8192
        assert len(patterned_chunk(3, 100)) == 100

    def test_distinct_per_index(self):
        assert patterned_chunk(0) != patterned_chunk(1)

    def test_deterministic(self):
        assert patterned_chunk(7) == patterned_chunk(7)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            patterned_chunk(0, 0)


class TestWriteFile:
    def test_writes_expected_bytes(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI, write_path="gather"))
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_file(env, client, "wf", 100_000))
        env.run(until=proc)
        assert proc.value > 0
        ufs = testbed.server.ufs
        assert ufs.inodes[ufs.root.entries["wf"]].size == 100_000

    def test_remove_first_replaces_existing(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        client = testbed.add_client()
        env = testbed.env

        def driver(env):
            yield from write_file(env, client, "wf", 16 * KB)
            yield from write_file(env, client, "wf", 8 * KB, remove_first=True)

        env.run(until=env.process(driver(env)))
        ufs = testbed.server.ufs
        assert ufs.inodes[ufs.root.entries["wf"]].size == 8 * KB

    def test_rejects_empty(self):
        testbed = Testbed(TestbedConfig())
        client = testbed.add_client()
        with pytest.raises(ValueError):
            next(write_file(testbed.env, client, "wf", 0))


class TestWriteRandom:
    def test_rewrites_random_blocks(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI, write_path="gather"))
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_random(env, client, "rr", 256 * KB, writes=16, seed=9))
        env.run(until=proc)
        assert proc.value > 0

    def test_same_seed_same_elapsed(self):
        def run(seed):
            testbed = Testbed(TestbedConfig(netspec=FDDI))
            client = testbed.add_client()
            env = testbed.env
            proc = env.process(
                write_random(env, client, "rr", 128 * KB, writes=8, seed=seed)
            )
            env.run(until=proc)
            return proc.value

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_file_must_hold_a_record(self):
        testbed = Testbed(TestbedConfig())
        client = testbed.add_client()
        with pytest.raises(ValueError):
            next(write_random(testbed.env, client, "rr", 100, writes=1))


class TestDumbPc:
    def test_has_no_biods(self):
        testbed = Testbed(TestbedConfig(netspec=ETHERNET))
        pc = make_dumb_pc(testbed.env, testbed.segment, testbed.server.host)
        assert pc.nbiods == 0

    def test_slow_client_loss_fades(self):
        """§6.10: 'This loss decreases in significance as slower clients
        are used' — with a 20 ms think time the gathering penalty is
        within a few percent."""

        def run(write_path):
            testbed = Testbed(
                TestbedConfig(netspec=ETHERNET, write_path=write_path, nbiods=0)
            )
            client = testbed.add_client()
            env = testbed.env
            proc = env.process(
                write_file(
                    env, client, "slow", 256 * KB, think_time=DUMB_PC_THINK_TIME
                )
            )
            env.run(until=proc)
            return 256 * KB / proc.value

        std, gat = run("standard"), run("gather")
        assert gat > 0.85 * std  # much better than the fast client's 15% hit


class TestLaddisGenerator:
    def make(self, write_path="standard", **kwargs):
        testbed = Testbed(
            TestbedConfig(netspec=FDDI, write_path=write_path, stripes=4, nfsds=16)
        )
        generator = LaddisGenerator(
            testbed.env,
            testbed.segment,
            server_host=testbed.server.host,
            clients=2,
            procs_per_client=2,
            file_count=8,
            file_blocks=4,
            seed=11,
            **kwargs,
        )
        return testbed, generator

    def test_mix_sums_to_one(self):
        assert sum(weight for _op, weight in SFS_MIX) == pytest.approx(1.0)

    def test_setup_creates_working_set(self):
        testbed, generator = self.make()
        env = testbed.env
        env.run(until=env.process(generator.setup()))
        ufs = testbed.server.ufs
        assert len([n for n in ufs.root.entries if n.startswith("laddis.")]) == 8

    def test_run_point_measures_achieved_and_latency(self):
        testbed, generator = self.make()
        env = testbed.env
        env.run(until=env.process(generator.setup()))
        point = env.process(generator.run_point(100.0, duration=2.0, warmup=0.5))
        result = env.run(until=point)
        assert result.offered_ops == 100.0
        assert 50 < result.achieved_ops < 150
        assert result.avg_latency_ms > 0
        assert result.op_counts  # a mix of operations ran

    def test_mix_roughly_respected(self):
        testbed, generator = self.make()
        env = testbed.env
        env.run(until=env.process(generator.setup()))
        point = env.process(generator.run_point(300.0, duration=3.0, warmup=0.5))
        result = env.run(until=point)
        total = sum(result.op_counts.values())
        lookup_share = result.op_counts.get("lookup", 0) / total
        write_share = result.op_counts.get("write", 0) / total
        assert 0.20 <= lookup_share <= 0.48
        assert 0.05 <= write_share <= 0.30

    def test_run_point_requires_setup(self):
        testbed, generator = self.make()
        with pytest.raises(RuntimeError):
            next(generator.run_point(100.0))

    def test_invalid_load_rejected(self):
        testbed, generator = self.make()
        env = testbed.env
        env.run(until=env.process(generator.setup()))
        with pytest.raises(ValueError):
            next(generator.run_point(0))

    def test_invalid_client_counts(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        with pytest.raises(ValueError):
            LaddisGenerator(testbed.env, testbed.segment, clients=0)
