"""Tests for the SVG chart renderer."""

import pytest

from repro.metrics.svg import LineChart, _nice_ticks


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0, 97)
        assert ticks[0] <= 0
        assert ticks[-1] >= 97

    def test_rounded_steps(self):
        ticks = _nice_ticks(0, 1000)
        steps = {round(b - a, 6) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 2


class TestLineChart:
    def make(self):
        chart = LineChart("T", "x", "y")
        chart.add_series("a", [(0, 0), (10, 5), (20, 3)])
        chart.add_series("b", [(0, 1), (10, 2)], dashed=True)
        return chart

    def test_renders_valid_svg_shell(self):
        svg = self.make().render()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_contains_titles_and_series(self):
        svg = self.make().render()
        assert ">T<" in svg
        assert ">a<" in svg and ">b<" in svg
        assert svg.count("<polyline") == 2
        assert "stroke-dasharray" in svg

    def test_points_drawn(self):
        svg = self.make().render()
        assert svg.count("<circle") == 5

    def test_empty_series_rejected(self):
        chart = LineChart("T", "x", "y")
        with pytest.raises(ValueError):
            chart.add_series("empty", [])
        with pytest.raises(ValueError):
            chart.render()

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        self.make().save(str(path))
        assert path.read_text().startswith("<svg")

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(self.make().render())
        assert root.tag.endswith("svg")
