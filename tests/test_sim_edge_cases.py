"""Edge-case coverage for the simulation kernel: condition failures,
interrupts interacting with resources, store/bounded semantics."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Container,
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    SimError,
    Store,
)


class TestConditionEdges:
    def test_all_of_fails_fast_when_member_fails(self):
        env = Environment()
        good = env.timeout(10, value="late")
        bad = env.event()
        caught = []

        def waiter(env):
            try:
                yield AllOf(env, [good, bad])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        env.process(waiter(env))
        bad.fail(RuntimeError("member died"))
        env.run()
        assert caught == [(0, "member died")]

    def test_any_of_with_already_processed_member(self):
        env = Environment()

        def proc(env):
            first = env.timeout(1, value="early")
            yield env.timeout(5)
            result = yield AnyOf(env, [first, env.timeout(100)])
            return list(result.values())

        p = env.process(proc(env))
        env.run(until=p)
        assert p.value == ["early"]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def proc(env):
            result = yield AllOf(env, [])
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value == {}

    def test_cross_environment_events_rejected(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(SimError):
            AllOf(env_a, [env_b.timeout(1)])

    def test_sibling_failure_after_anyof_fired_is_defused(self):
        env = Environment()
        fast = env.timeout(1, value="fast")
        slow = env.event()

        def proc(env):
            yield AnyOf(env, [fast, slow])
            return "done"

        p = env.process(proc(env))

        def failer(env):
            yield env.timeout(2)
            slow.fail(RuntimeError("too late to matter"))

        env.process(failer(env))
        env.run()  # must not raise
        assert p.value == "done"


class TestInterruptsAndResources:
    def test_interrupt_while_waiting_for_resource(self):
        env = Environment()
        resource = Resource(env)
        log = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(100)

        def waiter(env):
            request = resource.request()
            try:
                yield request
            except Interrupt:
                resource.release(request)  # withdraw from the queue
                log.append(("interrupted", env.now))

        def interrupter(env, victim):
            yield env.timeout(5)
            victim.interrupt()

        env.process(holder(env))
        victim = env.process(waiter(env))
        env.process(interrupter(env, victim))
        env.run(until=20)
        assert log == [("interrupted", 5)]
        assert len(resource.queue) == 0

    def test_priority_resource_withdraw_from_heap(self):
        env = Environment()
        resource = PriorityResource(env)
        holder = resource.request()
        env.run()
        abandoned = resource.request(priority=1)
        kept = resource.request(priority=2)
        resource.release(abandoned)
        resource.release(holder)
        env.run()
        assert kept.triggered  # the withdrawn request did not win the slot

    def test_double_release_of_withdrawn_request_is_noop(self):
        env = Environment()
        resource = Resource(env)
        holder = resource.request()
        env.run()
        waiter = resource.request()
        resource.release(waiter)
        resource.release(waiter)  # idempotent withdraw
        resource.release(holder)
        assert resource.count == 0


class TestStoreAndContainerEdges:
    def test_store_getter_waits_even_with_pending_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.try_put("a")
        put_event = store.put("b")  # blocked: full
        assert not put_event.triggered

        def consumer(env):
            first = yield store.get()
            second = yield store.get()
            return [first, second]

        p = env.process(consumer(env))
        env.run(until=p)
        assert p.value == ["a", "b"]
        assert put_event.triggered

    def test_container_try_get_respects_waiting_getters(self):
        env = Environment()
        tank = Container(env, capacity=100, init=10)
        blocked = tank.get(50)  # waits for level >= 50
        assert not blocked.triggered
        # A try_get must not starve the queued getter out of order.
        assert not tank.try_get(5)

    def test_container_validation(self):
        env = Environment()
        with pytest.raises(SimError):
            Container(env, capacity=0)
        with pytest.raises(SimError):
            Container(env, capacity=10, init=20)
        tank = Container(env, capacity=10)
        with pytest.raises(SimError):
            tank.put(0)
        with pytest.raises(SimError):
            tank.get(-1)

    def test_store_validation(self):
        env = Environment()
        with pytest.raises(SimError):
            Store(env, capacity=0)


class TestRunSemantics:
    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimError):
            Environment().step()

    def test_peek_empty_is_infinity(self):
        assert Environment().peek() == float("inf")

    def test_run_until_event_already_processed(self):
        env = Environment()
        timeout = env.timeout(1, value="v")
        env.run()
        assert env.run(until=timeout) == "v"

    def test_resource_context_manager_releases_on_exception(self):
        env = Environment()
        resource = Resource(env)

        def crasher(env):
            with resource.request() as req:
                yield req
                raise ValueError("boom")

        def waiter(env):
            with resource.request() as req:
                yield req
                return env.now

        crash_proc = env.process(crasher(env))
        wait_proc = env.process(waiter(env))
        with pytest.raises(ValueError):
            env.run()
        # The slot was released despite the crash; the waiter can finish.
        env.run()
        assert wait_proc.value == 0
