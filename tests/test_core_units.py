"""Unit tests for the write-gathering building blocks: state table, write
queue, policy, learned-client db, mbuf hunter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    REPLY_FIFO,
    REPLY_LIFO,
    STAGE_FLUSHING,
    STAGE_GATHER_WAIT,
    STAGE_IDLE,
    STAGE_WRITING,
    ActiveWriteQueue,
    GatherPolicy,
    LearnedClientDb,
    NfsdStateTable,
    WriteDescriptor,
    WriteQueueRegistry,
    hunt,
)
from repro.net import Datagram, SocketBuffer
from repro.nfs import WriteArgs
from repro.rpc import RpcCall
from repro.sim import Environment


class TestStateTable:
    def test_initial_state_idle(self):
        table = NfsdStateTable(4)
        assert len(table) == 4
        assert all(table.slot(i).stage == STAGE_IDLE for i in range(4))

    def test_set_and_clear(self):
        table = NfsdStateTable(2)
        table.set(0, STAGE_WRITING, ino=5, offset=8192, length=8192)
        slot = table.slot(0)
        assert (slot.stage, slot.ino, slot.offset, slot.length) == (
            STAGE_WRITING,
            5,
            8192,
            8192,
        )
        table.clear(0)
        assert table.slot(0).stage == STAGE_IDLE

    def test_another_write_incoming_only_early_stages(self):
        table = NfsdStateTable(3)
        table.set(0, STAGE_WRITING, ino=5)
        assert table.another_write_incoming(5, exclude=1)
        assert not table.another_write_incoming(5, exclude=0)  # it's us
        assert not table.another_write_incoming(9, exclude=1)  # other file
        # A waiting or flushing nfsd is NOT "incoming": it will not enqueue
        # another descriptor, so it is not evidence for a handoff.
        table.set(0, STAGE_GATHER_WAIT, ino=5)
        assert not table.another_write_incoming(5, exclude=1)
        table.set(0, STAGE_FLUSHING, ino=5)
        assert not table.another_write_incoming(5, exclude=1)

    def test_any_responsible_covers_all_active_stages(self):
        table = NfsdStateTable(2)
        assert not table.any_responsible(5)
        for stage in (STAGE_WRITING, STAGE_GATHER_WAIT, STAGE_FLUSHING):
            table.set(0, stage, ino=5)
            assert table.any_responsible(5)
        table.clear(0)
        assert not table.any_responsible(5)

    def test_needs_at_least_one_nfsd(self):
        with pytest.raises(ValueError):
            NfsdStateTable(0)

    def test_snapshot_is_a_copy(self):
        table = NfsdStateTable(1)
        snap = table.snapshot()
        table.set(0, STAGE_WRITING, ino=1)
        assert snap[0].stage == STAGE_IDLE


def make_descriptor(offset=0, length=8192, client="c"):
    return WriteDescriptor(
        handle=object(),
        offset=offset,
        length=length,
        client=client,
        enqueued_at=0.0,
        data=b"x" * length,
    )


class TestWriteQueue:
    def test_fifo_take_all(self):
        queue = ActiveWriteQueue(vnode=None)
        descriptors = [make_descriptor(offset=i * 8192) for i in range(4)]
        for d in descriptors:
            queue.append(d)
        assert len(queue) == 4
        taken = queue.take_all()
        assert taken == descriptors
        assert len(queue) == 0
        assert queue.take_all() == []  # exclusive: second taker gets nothing

    def test_extent(self):
        queue = ActiveWriteQueue(vnode=None)
        assert queue.extent() is None
        queue.append(make_descriptor(offset=16384))
        queue.append(make_descriptor(offset=0))
        assert queue.extent() == (0, 16384 + 8192)

    def test_registry_per_inode(self):
        class FakeVnode:
            def __init__(self, ino):
                self.ino = ino

        registry = WriteQueueRegistry()
        v1, v2 = FakeVnode(1), FakeVnode(2)
        q1 = registry.for_vnode(v1)
        assert registry.for_vnode(v1) is q1
        assert registry.for_vnode(v2) is not q1
        q1.append(make_descriptor())
        assert registry.pending_total() == 1
        assert registry.get(1) is q1
        assert registry.get(99) is None

    def test_registry_replaces_queue_for_recycled_vnode(self):
        class FakeVnode:
            def __init__(self, ino):
                self.ino = ino

        registry = WriteQueueRegistry()
        old = registry.for_vnode(FakeVnode(1))
        new = registry.for_vnode(FakeVnode(1))  # different vnode object
        assert new is not old


class TestGatherPolicy:
    def test_defaults_match_paper(self):
        policy = GatherPolicy()
        assert policy.max_procrastinations == 1
        assert policy.reply_order == REPLY_FIFO
        assert policy.use_mbuf_hunter
        assert policy.interval is None  # transport-dependent

    def test_validation(self):
        with pytest.raises(ValueError):
            GatherPolicy(max_procrastinations=-1)
        with pytest.raises(ValueError):
            GatherPolicy(reply_order="random")
        with pytest.raises(ValueError):
            GatherPolicy(watchdog_factor=0)
        with pytest.raises(ValueError):
            GatherPolicy(interval=-1)

    def test_lifo_accepted(self):
        assert GatherPolicy(reply_order=REPLY_LIFO).reply_order == REPLY_LIFO


class TestLearnedClients:
    def test_new_client_gets_benefit_of_doubt(self):
        db = LearnedClientDb(threshold=4)
        assert db.should_procrastinate("pc")

    def test_persistent_singleton_client_loses_procrastination(self):
        db = LearnedClientDb(window=8, threshold=4)
        for _ in range(8):
            db.observe_batch("pc", 1)
        assert not db.should_procrastinate("pc")
        assert db.singleton_rate("pc") == 1.0

    def test_gathering_client_keeps_procrastination(self):
        db = LearnedClientDb(window=8, threshold=4)
        for _ in range(8):
            db.observe_batch("ws", 8)
        assert db.should_procrastinate("ws")
        assert db.singleton_rate("ws") == 0.0

    def test_client_is_relearned_when_behaviour_changes(self):
        db = LearnedClientDb(window=8, threshold=5)
        for _ in range(8):
            db.observe_batch("host", 1)
        assert not db.should_procrastinate("host")
        for _ in range(8):
            db.observe_batch("host", 6)  # starts running biods
        assert db.should_procrastinate("host")

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedClientDb(window=0)


class TestMbufHunter:
    def make_buffer(self, env):
        return SocketBuffer(env, capacity_bytes=1 << 20)

    def write_datagram(self, fhandle, xid=1):
        call = RpcCall(
            xid=xid,
            proc="write",
            args=WriteArgs(fhandle, 0, b"x" * 8192),
            size=8352,
            client="c",
        )
        return Datagram("c", "s", call, call.size)

    def read_datagram(self, fhandle):
        call = RpcCall(xid=99, proc="read", args=None, size=160, client="c")
        return Datagram("c", "s", call, call.size)

    def test_finds_write_for_file(self):
        env = Environment()
        buffer = self.make_buffer(env)
        buffer.try_put(self.write_datagram((7, 0)))
        assert hunt(buffer, (7, 0))

    def test_ignores_other_files_and_procs(self):
        env = Environment()
        buffer = self.make_buffer(env)
        buffer.try_put(self.write_datagram((8, 0)))
        buffer.try_put(self.read_datagram((7, 0)))
        assert not hunt(buffer, (7, 0))

    def test_empty_buffer(self):
        env = Environment()
        assert not hunt(self.make_buffer(env), (7, 0))

    def test_does_not_remove_the_request(self):
        env = Environment()
        buffer = self.make_buffer(env)
        buffer.try_put(self.write_datagram((7, 0)))
        hunt(buffer, (7, 0))
        assert len(buffer) == 1


@given(batches=st.lists(st.integers(1, 20), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_property_learned_db_rate_bounded(batches):
    db = LearnedClientDb(window=16, threshold=8)
    for size in batches:
        db.observe_batch("host", size)
    assert 0.0 <= db.singleton_rate("host") <= 1.0
