"""Integration tests for repro.overload against the full stack.

Soft/hard mount semantics end to end, the AIMD write window reacting to
real loss, gather's parked-queue cap forcing flushes, the RetransmitStorm
chaos event, and the cluster's per-shard failover budget.
"""

from repro.cluster import ClusterConfig, build_cluster
from repro.core.policy import GatherPolicy
from repro.experiments import Testbed, TestbedConfig
from repro.faults import AtTime, FaultController, FaultPlan, RetransmitStorm
from repro.net import FDDI
from repro.nfs.protocol import NfsError
from repro.overload import AdaptiveRetryPolicy, WriteWindow
from repro.workload import write_file

KB = 1024


def gather_testbed(**config_kwargs):
    config = TestbedConfig(netspec=FDDI, write_path="gather", **config_kwargs)
    return Testbed(config)


class TestMountSemantics:
    def test_soft_mount_surfaces_etimedout(self):
        """A soft mount (finite retry budget) against an unreachable server
        fails the NFS operation with ETIMEDOUT instead of hanging."""
        testbed = gather_testbed()
        policy = AdaptiveRetryPolicy(
            initial_rto=0.01, min_rto=0.001, jitter=0.0, max_attempts=3
        )
        client = testbed.add_client(policy=policy)
        testbed.segment.partition(testbed.server.host)
        env = testbed.env
        outcome = {}

        def driver(env):
            try:
                yield from client.create("f")
            except NfsError as err:
                outcome["code"] = err.code

        env.run(until=env.process(driver(env)))
        env.run()
        assert outcome["code"] == "ETIMEDOUT"
        # The budget bounds transmissions exactly: 3 sends, 3 expiries.
        assert client.rpc.timeouts.value == 3
        assert client.rpc.completed.value == 0

    def test_hard_mount_rides_out_an_outage(self):
        """A hard mount (no budget) retries through a partition and the
        write completes once the network heals — no error ever surfaces."""
        testbed = gather_testbed()
        policy = AdaptiveRetryPolicy(initial_rto=0.05, min_rto=0.01, jitter=0.0)
        client = testbed.add_client(policy=policy)
        env = testbed.env
        testbed.segment.partition(testbed.server.host)

        def healer(env):
            yield env.timeout(0.5)
            testbed.segment.heal(testbed.server.host)

        env.process(healer(env), name="healer")
        proc = env.process(write_file(env, client, "f", 32 * KB))
        env.run(until=proc)
        env.run()

        assert client.rpc.retransmissions.value >= 1
        assert testbed.server.stable_violations == []
        ino = testbed.server.ufs.root.entries["f"]
        assert len(testbed.server.ufs.durable_read(ino, 0, 32 * KB)) == 32 * KB


class TestWriteWindowIntegration:
    def test_window_halves_under_loss_and_regrows_after(self):
        testbed = gather_testbed()
        window = WriteWindow(initial=8, maximum=16)
        policy = AdaptiveRetryPolicy(initial_rto=0.05, min_rto=0.01, jitter=0.0)
        client = testbed.add_client(policy=policy, write_window=window)
        env = testbed.env

        testbed.segment.set_loss_rate(0.5)
        proc = env.process(write_file(env, client, "lossy", 64 * KB))
        env.run(until=proc)
        env.run()
        assert window.halvings >= 1  # write timeouts shrank the window

        testbed.segment.set_loss_rate(0.0)
        ramps_before = window.ramps
        proc = env.process(write_file(env, client, "clean", 64 * KB))
        env.run(until=proc)
        env.run()
        assert window.ramps > ramps_before  # clean completions regrow it
        assert 1 <= window.slots <= window.maximum


class TestGatherParkedCap:
    def test_max_parked_forces_a_flush(self):
        """Bounding the parked queue is backpressure on the gather path:
        once ``max_parked`` writes sit waiting for evidence, the batch is
        flushed instead of parking more."""
        testbed = gather_testbed(gather_policy=GatherPolicy(max_parked=2))
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_file(env, client, "f", 64 * KB, think_time=0.0))
        env.run(until=proc)
        env.run()

        assert testbed.server.write_path.stats.forced_flushes.value >= 1
        assert testbed.server.stable_violations == []
        ino = testbed.server.ufs.root.entries["f"]
        assert len(testbed.server.ufs.durable_read(ino, 0, 64 * KB)) == 64 * KB


class TestRetransmitStormEvent:
    def test_storm_clamps_buffer_and_loss_then_reverts(self):
        testbed = gather_testbed()
        client = testbed.add_client()
        env = testbed.env
        inbox = testbed.server.endpoint.inbox
        original_capacity = inbox.capacity_bytes
        plan = FaultPlan(
            "storm",
            (
                RetransmitStorm(
                    AtTime(0.02),
                    loss_rate=0.25,
                    capacity_bytes=24 * KB,
                    duration=0.05,
                ),
            ),
        )
        controller = FaultController(testbed, plan).start()
        samples = {}

        def prober(env):
            yield env.timeout(0.04)  # mid-storm
            samples["loss"] = testbed.segment.loss_rate
            samples["capacity"] = inbox.capacity_bytes

        env.process(prober(env), name="probe")
        proc = env.process(write_file(env, client, "f", 64 * KB))
        env.run(until=proc)
        env.run()

        assert samples["loss"] == 0.25
        assert samples["capacity"] == 24 * KB
        assert testbed.segment.loss_rate == 0.0
        assert inbox.capacity_bytes == original_capacity
        assert controller.log and controller.log[0]["kind"] == "retransmit_storm"
        # The copy still converged through the storm (hard-mount retries).
        ino = testbed.server.ufs.root.entries["f"]
        assert len(testbed.server.ufs.durable_read(ino, 0, 64 * KB)) == 64 * KB


class TestClusterFailoverBudget:
    def test_budget_is_terminal_when_the_route_does_not_change(self):
        """A pinned file's shard dies and the mount map never redirects:
        the per-shard budget turns the stranded write into ETIMEDOUT."""
        cluster = build_cluster(
            ClusterConfig(servers=2, seed=0, failover_attempts=2), clients=1
        )
        client = cluster.clients[0]
        env = cluster.env
        outcome = {}

        def driver(env):
            open_file = yield from client.create("victim")
            yield from client.write_stream(open_file, b"\xaa" * (8 * KB))
            # The fhandle is now pinned to its shard; kill that shard's
            # network presence and try again.
            shard = cluster.router.server_for_fhandle(open_file.fhandle)
            cluster.segment_of(shard).partition(shard)
            try:
                # Write-behind captures the asynchronous failure; the
                # sync-on-close is where it surfaces to the application.
                yield from client.write_stream(open_file, b"\xbb" * (8 * KB))
                yield from client.close(open_file)
            except NfsError as err:
                outcome["code"] = err.code

        env.run(until=env.process(driver(env)))
        env.run()
        assert outcome["code"] == "ETIMEDOUT"

    def test_budget_redirects_once_the_map_moves_the_name(self):
        """The shard dies mid-call but failover removes it from the mount
        map: exhausting the budget re-resolves the route and the call
        lands on the surviving shard instead of failing."""
        cluster = build_cluster(
            ClusterConfig(servers=2, seed=0, failover_attempts=2), clients=1
        )
        client = cluster.clients[0]
        env = cluster.env
        dead = cluster.servers[0].host
        live = cluster.servers[1].host
        # A name the map currently places on the doomed shard.
        name = next(
            f"f{i}" for i in range(200) if cluster.shard_map.server_for(f"f{i}") == dead
        )
        cluster.segment_of(dead).partition(dead)

        def failover(env):
            # Default RTO schedule: attempt 1 expires at 1.1 s, attempt 2
            # at 3.3 s — remove the shard between the two.
            yield env.timeout(2.0)
            cluster.shard_map.remove_server(dead)

        env.process(failover(env), name="failover")
        proc = env.process(write_file(env, client, name, 16 * KB))
        env.run(until=proc)
        env.run()

        survivor = cluster.server_by_host(live)
        assert name in survivor.ufs.root.entries
        ino = survivor.ufs.root.entries[name]
        assert len(survivor.ufs.durable_read(ino, 0, 16 * KB)) == 16 * KB
        assert cluster.stable_violations_total() == 0
