"""§9's operational advice, measured.

"The addition of more biods on the client may increase throughput if the
carrying capacity of the network/server can support it (the server socket
buffer, e.g., is a limit ...).  As a rule of thumb, I don't recommend more
than 7 biods for general purpose/heavily used networks."
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import ETHERNET, FDDI
from repro.workload import write_file

KB = 1024


def busy_network_aggregate(nbiods, clients=4, buffer_kb=48):
    """Several clients hammering a server with a small socket buffer."""
    config = TestbedConfig(netspec=ETHERNET, write_path="gather", nbiods=nbiods)
    testbed = Testbed(config)
    testbed.server.endpoint.inbox.capacity_bytes = buffer_kb * KB
    hosts = [testbed.add_client() for _ in range(clients)]
    env = testbed.env
    procs = [
        env.process(write_file(env, host, f"f{i}", 192 * KB))
        for i, host in enumerate(hosts)
    ]

    def waiter(env):
        for proc in procs:
            yield proc

    env.run(until=env.process(waiter(env)))
    retrans = sum(h.rpc.retransmissions.value for h in hosts)
    return clients * 192 * KB / env.now / 1024, retrans, testbed


def test_private_network_rewards_more_biods():
    """On a private network with one writer, more biods keep paying
    (Table 3: 534 -> 1085 from 3 to 15 biods)."""

    def single(nbiods):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=nbiods)
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_file(env, client, "f", 1024 * KB))
        env.run(until=proc)
        return 1024 * KB / proc.value / 1024

    assert single(15) > 1.5 * single(3)


def test_busy_network_does_not_reward_biods_past_seven():
    """On a shared, heavily used network with a bounded socket buffer, 23
    biods per client buys little or nothing over 7 — the §9 rule of thumb."""
    seven, retrans7, _tb = busy_network_aggregate(7)
    many, retrans23, _tb = busy_network_aggregate(23)
    assert many < 1.15 * seven  # no meaningful gain
    assert retrans23 >= retrans7  # and more retransmission pressure


def test_overflowing_buffer_causes_drops_with_many_biods():
    _speed, _retrans, testbed = busy_network_aggregate(23, buffer_kb=32)
    assert testbed.segment.dropped.value > 0
