"""Tests for the elevator (C-SCAN) disk scheduler extension."""

import pytest

from repro.disk import RZ26, SCHEDULER_ELEVATOR, DiskDevice
from repro.sim import Environment

KB = 1024


def submit_batch(env, device, offsets):
    """Submit all offsets while the device is busy; return completion order."""
    order = []

    def driver(env):
        # Pin the head with an initial request, then queue the batch so the
        # scheduler has a full queue to reorder.
        first = device.submit(0, 8 * KB)
        events = []
        for offset in offsets:
            event = device.submit(offset, 8 * KB)
            event.callbacks.append(lambda _ev, o=offset: order.append(o))
            events.append(event)
        yield first
        for event in events:
            yield event

    env.run(until=env.process(driver(env)))
    return order


def test_unknown_scheduler_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        DiskDevice(env, RZ26, scheduler="lifo")


def test_fifo_preserves_arrival_order():
    env = Environment()
    device = DiskDevice(env, RZ26)
    offsets = [900 * KB, 100 * KB, 500 * KB, 200 * KB]
    assert submit_batch(env, device, offsets) == offsets


def test_elevator_serves_in_scan_order():
    env = Environment()
    device = DiskDevice(env, RZ26, scheduler=SCHEDULER_ELEVATOR)
    offsets = [900 * KB, 100 * KB, 500 * KB, 200 * KB]
    # head ends at 8K after the pinning request: sweep upward.
    assert submit_batch(env, device, offsets) == sorted(offsets)


def test_elevator_wraps_like_cscan():
    env = Environment()
    device = DiskDevice(env, RZ26, scheduler=SCHEDULER_ELEVATOR)
    order = []

    def driver(env):
        # Move the head to ~500K first.
        yield device.submit(500 * KB, 8 * KB)
        events = []
        for offset in (100 * KB, 600 * KB, 300 * KB, 700 * KB):
            event = device.submit(offset, 8 * KB)
            event.callbacks.append(lambda _ev, o=offset: order.append(o))
            events.append(event)
        for event in events:
            yield event

    env.run(until=env.process(driver(env)))
    # Ahead of 508K: 600K, 700K (ascending); then wrap to 100K, 300K.
    assert order == [600 * KB, 700 * KB, 100 * KB, 300 * KB]


def test_elevator_faster_on_deep_random_queue():
    """Serving a deep queue of scattered requests in scan order beats FIFO
    — the driver-level cousin of what gathering does at the NFS layer."""
    import random

    rng = random.Random(1)
    offsets = [rng.randrange(0, 100_000) * 8 * KB for _ in range(40)]

    def total_time(scheduler):
        env = Environment()
        device = DiskDevice(env, RZ26, scheduler=scheduler)

        def driver(env):
            events = [device.submit(offset, 8 * KB) for offset in offsets]
            for event in events:
                yield event

        env.run(until=env.process(driver(env)))
        return env.now

    assert total_time(SCHEDULER_ELEVATOR) < 0.8 * total_time("fifo")


def test_elevator_still_completes_everything():
    env = Environment()
    device = DiskDevice(env, RZ26, scheduler=SCHEDULER_ELEVATOR)
    offsets = [i * 64 * KB for i in range(20)]
    done = submit_batch(env, device, offsets)
    assert sorted(done) == sorted(offsets)
    assert device.queue_depth() == 0
