"""Unit tests for the repro.overload policy pieces.

Covers the client half (Van Jacobson RTO estimation, Karn's rule, seeded
jitter, the soft-mount retry budget, the AIMD write window), the fixed
policy's backoff ceiling clamp, and the server half (the bounded
admission queue and its three shed policies) — all without standing up a
full testbed.
"""

import pytest

from repro.net.packet import Datagram
from repro.net.segment import Segment
from repro.net.spec import FDDI
from repro.overload import (
    SHED_POLICIES,
    AdaptiveRetryPolicy,
    AdmissionQueue,
    RtoEstimator,
    WriteWindow,
    retransmit_jitter,
)
from repro.rpc.client import RpcTimeoutPolicy
from repro.rpc.dupcache import DuplicateRequestCache
from repro.rpc.messages import CLASS_HEAVY, CLASS_LIGHT, CLASS_MEDIUM, RpcCall, RpcReply
from repro.sim import Environment


class TestRtoEstimator:
    def test_first_sample_seeds_srtt_and_rttvar(self):
        est = RtoEstimator(initial_rto=1.1, min_rto=0.02, max_rto=60.0)
        est.observe(0.2)
        assert est.srtt == pytest.approx(0.2)
        assert est.rttvar == pytest.approx(0.1)
        assert est.rto == pytest.approx(0.2 + 4 * 0.1)

    def test_vj_update_math(self):
        est = RtoEstimator(min_rto=0.001)
        est.observe(0.2)
        est.observe(0.4)
        # error = 0.2; rttvar = 0.75*0.1 + 0.25*0.2; srtt = 0.2 + 0.125*0.2
        assert est.rttvar == pytest.approx(0.125)
        assert est.srtt == pytest.approx(0.225)
        assert est.rto == pytest.approx(0.225 + 4 * 0.125)
        assert est.samples == 2

    def test_rto_clamped_to_floor_and_ceiling(self):
        est = RtoEstimator(min_rto=0.5, max_rto=2.0)
        est.observe(0.001)  # SRTT + 4*RTTVAR far below the floor
        assert est.rto == 0.5
        est.observe(100.0)
        assert est.rto == 2.0

    def test_backoff_doubles_and_never_exceeds_ceiling(self):
        est = RtoEstimator(initial_rto=1.0, max_rto=8.0)
        est.backoff()
        assert est.rto == pytest.approx(2.0)
        est.backoff()
        assert est.rto == pytest.approx(4.0)
        # Satellite: no unbounded growth — dozens of backoffs stay clamped.
        for _ in range(50):
            est.backoff()
        assert est.rto == 8.0

    def test_clean_sample_clears_retained_backoff(self):
        est = RtoEstimator(initial_rto=1.0, min_rto=0.02, max_rto=60.0)
        est.backoff()
        est.backoff()
        assert est.backoff_level == 2
        est.observe(0.1)
        assert est.backoff_level == 0
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_rejects_bad_bounds_and_negative_rtt(self):
        with pytest.raises(ValueError):
            RtoEstimator(min_rto=0.0)
        with pytest.raises(ValueError):
            RtoEstimator(min_rto=1.0, max_rto=0.5)
        est = RtoEstimator()
        with pytest.raises(ValueError):
            est.observe(-0.1)


class TestRetransmitJitter:
    def test_deterministic_for_same_key(self):
        a = retransmit_jitter(7, "client-3", 41, 2, 0.1)
        b = retransmit_jitter(7, "client-3", 41, 2, 0.1)
        assert a == b

    def test_decorrelates_hosts_xids_and_attempts(self):
        base = retransmit_jitter(0, "client-0", 10, 1, 0.1)
        assert retransmit_jitter(0, "client-1", 10, 1, 0.1) != base
        assert retransmit_jitter(0, "client-0", 11, 1, 0.1) != base
        assert retransmit_jitter(0, "client-0", 10, 2, 0.1) != base
        assert retransmit_jitter(1, "client-0", 10, 1, 0.1) != base

    def test_bounded_by_spread(self):
        for xid in range(200):
            factor = retransmit_jitter(0, "client-0", xid, 1, 0.25)
            assert 0.75 <= factor <= 1.25

    def test_zero_spread_is_exactly_one(self):
        assert retransmit_jitter(0, "client-0", 1, 1, 0.0) == 1.0


class TestAdaptiveRetryPolicy:
    def test_per_class_estimators_are_independent(self):
        policy = AdaptiveRetryPolicy(min_rto=0.001)
        policy.observe(CLASS_HEAVY, 2.0)
        policy.observe(CLASS_LIGHT, 0.01)
        assert policy.base(CLASS_HEAVY) > policy.base(CLASS_LIGHT)
        assert policy.base(CLASS_MEDIUM) == pytest.approx(1.1)  # untouched

    def test_timeout_for_doubles_per_attempt_capped_at_max_rto(self):
        policy = AdaptiveRetryPolicy(initial_rto=1.0, max_rto=4.0)
        assert policy.timeout_for(CLASS_HEAVY, 1) == pytest.approx(1.0)
        assert policy.timeout_for(CLASS_HEAVY, 2) == pytest.approx(2.0)
        assert policy.timeout_for(CLASS_HEAVY, 3) == pytest.approx(4.0)
        assert policy.timeout_for(CLASS_HEAVY, 40) == 4.0

    def test_interval_for_applies_seeded_jitter(self):
        policy = AdaptiveRetryPolicy(initial_rto=1.0, jitter=0.1, jitter_seed=3)
        expected = policy.timeout_for(CLASS_HEAVY, 1) * retransmit_jitter(
            3, "client-0", 17, 1, 0.1
        )
        assert policy.interval_for(CLASS_HEAVY, 1, "client-0", 17) == pytest.approx(
            expected
        )

    def test_karn_suppresses_retransmitted_samples(self):
        policy = AdaptiveRetryPolicy()
        policy.observe(CLASS_HEAVY, 0.5, retransmitted=True)
        assert policy.karn_suppressed == 1
        assert policy.estimator(CLASS_HEAVY).samples == 0
        policy.observe(CLASS_HEAVY, 0.5, retransmitted=False)
        assert policy.estimator(CLASS_HEAVY).samples == 1

    def test_on_timeout_backs_off_only_that_class(self):
        policy = AdaptiveRetryPolicy(initial_rto=1.0)
        policy.on_timeout(CLASS_HEAVY)
        assert policy.estimator(CLASS_HEAVY).backoff_level == 1
        assert policy.estimator(CLASS_LIGHT).backoff_level == 0
        assert policy.base(CLASS_HEAVY) == pytest.approx(2.0)

    def test_validates_jitter_and_budget(self):
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(max_attempts=0)
        assert AdaptiveRetryPolicy(max_attempts=3).max_attempts == 3
        assert AdaptiveRetryPolicy().max_attempts is None  # hard mount


class TestRpcTimeoutPolicyClamp:
    """Satellite: the fixed reference policy no longer grows without bound."""

    def test_backoff_exponent_is_clamped(self):
        policy = RpcTimeoutPolicy(ceiling=30.0)
        # Before the clamp, attempt 1000 would compute 1.1 * 2**999.
        assert policy.timeout_for(CLASS_HEAVY, 1000) == 30.0
        assert policy.timeout_for(CLASS_HEAVY, 5) == pytest.approx(1.1 * 16)

    def test_max_attempts_budget_is_validated(self):
        with pytest.raises(ValueError):
            RpcTimeoutPolicy(max_attempts=0)
        assert RpcTimeoutPolicy(max_attempts=4).max_attempts == 4
        assert RpcTimeoutPolicy().max_attempts is None

    def test_jittered_interval_matches_schedule(self):
        policy = RpcTimeoutPolicy(jitter=0.2, jitter_seed=5)
        expected = policy.timeout_for(CLASS_HEAVY, 2) * retransmit_jitter(
            5, "client-9", 33, 2, 0.2
        )
        assert policy.interval_for(CLASS_HEAVY, 2, "client-9", 33) == pytest.approx(
            expected
        )
        plain = RpcTimeoutPolicy()  # jitter defaults to 0
        assert plain.interval_for(CLASS_HEAVY, 2, "client-9", 33) == pytest.approx(
            plain.timeout_for(CLASS_HEAVY, 2)
        )


class TestWriteWindow:
    def test_heavy_timeout_halves_down_to_one(self):
        window = WriteWindow(initial=8, maximum=64)
        window.on_timeout(CLASS_HEAVY)
        assert window.cwnd == pytest.approx(4.0)
        for _ in range(10):
            window.on_timeout(CLASS_HEAVY)
        assert window.cwnd == 1.0
        assert window.slots == 1
        assert window.halvings == 11

    def test_light_timeouts_do_not_shrink(self):
        window = WriteWindow(initial=8)
        window.on_timeout(CLASS_LIGHT)
        window.on_timeout(CLASS_MEDIUM)
        assert window.cwnd == 8.0
        assert window.halvings == 0

    def test_clean_heavy_success_ramps_additively(self):
        window = WriteWindow(initial=4, maximum=64, ramp=1.0)
        window.on_success(CLASS_HEAVY, attempts=1)
        assert window.cwnd == pytest.approx(4.25)
        assert window.ramps == 1

    def test_retransmitted_success_proves_nothing(self):
        window = WriteWindow(initial=4)
        window.on_success(CLASS_HEAVY, attempts=2)
        window.on_success(CLASS_LIGHT, attempts=1)
        assert window.cwnd == 4.0
        assert window.ramps == 0

    def test_growth_capped_at_maximum(self):
        window = WriteWindow(initial=4, maximum=5)
        for _ in range(100):
            window.on_success(CLASS_HEAVY, attempts=1)
        assert window.cwnd == 5.0
        assert window.slots == 5

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            WriteWindow(initial=0)
        with pytest.raises(ValueError):
            WriteWindow(initial=8, maximum=4)


def make_admission(policy, max_requests=2):
    """A segment with a server endpoint whose inbox is admission-gated."""
    env = Environment()
    segment = Segment(env, FDDI)
    server_ep = segment.attach("server")
    client_ep = segment.attach("raw")
    dup_cache = DuplicateRequestCache(env)
    admission = AdmissionQueue(
        env, server_ep, dup_cache, max_requests=max_requests, policy=policy
    )
    server_ep.inbox.admission = admission
    return env, server_ep, client_ep, dup_cache, admission


def call_datagram(xid, attempt=1):
    call = RpcCall(
        xid=xid,
        proc="write",
        args=None,
        size=1024,
        client="raw",
        weight=CLASS_HEAVY,
        attempt=attempt,
    )
    return Datagram(src="raw", dst="server", payload=call, size=call.size)


class TestAdmissionQueue:
    def test_under_cap_admits(self):
        env, server_ep, _, _, admission = make_admission("drop-newest")
        assert server_ep.inbox.try_put(call_datagram(1))
        assert server_ep.inbox.try_put(call_datagram(2))
        assert admission.admitted.value == 2
        assert admission.shed.value == 0

    def test_non_rpc_traffic_is_not_policed(self):
        env, server_ep, _, _, admission = make_admission("drop-newest", max_requests=1)
        server_ep.inbox.try_put(call_datagram(1))
        stray = Datagram(src="raw", dst="server", payload="ping", size=64)
        assert server_ep.inbox.try_put(stray)
        assert admission.shed.value == 0

    def test_drop_newest_refuses_at_cap(self):
        env, server_ep, _, _, admission = make_admission("drop-newest", max_requests=2)
        server_ep.inbox.try_put(call_datagram(1))
        server_ep.inbox.try_put(call_datagram(2))
        assert not server_ep.inbox.try_put(call_datagram(3))
        assert admission.shed.value == 1
        assert [d.payload.xid for d in server_ep.inbox.items] == [1, 2]

    def test_drop_oldest_evicts_head_for_newcomer(self):
        env, server_ep, _, _, admission = make_admission("drop-oldest", max_requests=2)
        server_ep.inbox.try_put(call_datagram(1))
        server_ep.inbox.try_put(call_datagram(2))
        assert server_ep.inbox.try_put(call_datagram(3))
        assert admission.evicted.value == 1
        assert [d.payload.xid for d in server_ep.inbox.items] == [2, 3]

    def test_early_reply_sheds_in_progress_duplicate(self):
        env, server_ep, _, dup_cache, admission = make_admission(
            "early-reply", max_requests=1
        )
        original = call_datagram(7)
        dup_cache.check(original.payload)  # now registered IN_PROGRESS
        server_ep.inbox.try_put(call_datagram(8))  # fills the queue
        assert not server_ep.inbox.try_put(call_datagram(7, attempt=2))
        assert admission.dup_sheds.value == 1
        assert admission.evicted.value == 0

    def test_early_reply_replays_done_duplicate_without_queueing(self):
        env, server_ep, client_ep, dup_cache, admission = make_admission(
            "early-reply", max_requests=1
        )
        original = call_datagram(7)
        dup_cache.check(original.payload)
        reply = RpcReply(xid=7, status="ok", result=None)
        dup_cache.record_done(original.payload, reply)
        server_ep.inbox.try_put(call_datagram(8))
        assert not server_ep.inbox.try_put(call_datagram(7, attempt=2))
        assert admission.early_replies.value == 1
        env.run()  # let the replayed reply cross the wire
        got = client_ep.inbox.try_get()
        assert got is not None and got.payload.xid == 7
        assert len(server_ep.inbox) == 1  # only the unrelated request queued

    def test_early_reply_falls_back_to_drop_oldest_for_fresh_work(self):
        env, server_ep, _, _, admission = make_admission("early-reply", max_requests=1)
        server_ep.inbox.try_put(call_datagram(1))
        assert server_ep.inbox.try_put(call_datagram(2))
        assert admission.evicted.value == 1
        assert [d.payload.xid for d in server_ep.inbox.items] == [2]

    def test_validates_policy_and_cap(self):
        env = Environment()
        segment = Segment(env, FDDI)
        ep = segment.attach("server")
        cache = DuplicateRequestCache(env)
        with pytest.raises(ValueError):
            AdmissionQueue(env, ep, cache, max_requests=0)
        with pytest.raises(ValueError):
            AdmissionQueue(env, ep, cache, max_requests=1, policy="lifo")
        assert set(SHED_POLICIES) == {"drop-newest", "drop-oldest", "early-reply"}
