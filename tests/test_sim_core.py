"""Unit and property tests for the simulation kernel (events, processes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Interrupt, SimError


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(3.5)
    assert p.value == "done"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimError):
        env.timeout(-1)


def test_processes_interleave_in_time_order():
    env = Environment()
    trace = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        trace.append((env.now, name))

    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "c", 3.0))
    env.run()
    assert trace == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_same_time_events_fire_in_insertion_order():
    env = Environment()
    trace = []

    def proc(env, name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in ["first", "second", "third"]:
        env.process(proc(env, name))
    env.run()
    assert trace == ["first", "second", "third"]


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result * 2

    p = env.process(parent(env))
    env.run()
    assert p.value == 84


def test_run_until_time_stops_early():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(10)
        fired.append(True)

    env.process(proc(env))
    env.run(until=5)
    assert env.now == 5
    assert not fired
    env.run()
    assert fired


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "payload"

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"
    assert env.now == 2


def test_run_until_past_time_rejected():
    env = Environment()

    def noop(env):
        yield env.timeout(1)

    env.process(noop(env))
    env.run()
    with pytest.raises(SimError):
        env.run(until=env.now - 1)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimError):
        env.process(iter([]))  # a plain iterator is not a generator


def test_event_succeed_and_value():
    env = Environment()
    ev = env.event()
    results = []

    def waiter(env, ev):
        value = yield ev
        results.append(value)

    env.process(waiter(env, ev))
    ev.succeed("hello")
    env.run()
    assert results == ["hello"]
    assert ev.ok and ev.processed


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)
    with pytest.raises(SimError):
        ev.fail(ValueError("x"))


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env, ev))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_crashes_the_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("oops")

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_yield_non_event_fails_the_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimError):
        env.run()
    assert not p.ok


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimError):
        p.interrupt()


def test_interrupted_process_can_resume_waiting():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            yield env.timeout(5)
            log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [7]


def test_all_of_collects_values():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        results = yield AllOf(env, [t1, t2])
        return sorted(results.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["a", "b"]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(10, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return list(results.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == ["fast"]
    assert env.now == 1


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(SimError):
        AnyOf(env, [])


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc(env):
        t = env.timeout(1, value="x")
        yield env.timeout(5)
        value = yield t  # t fired long ago
        return (env.now, value)

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, "x")


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_property_clock_is_monotonic_and_ends_at_max(delays):
    env = Environment()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert seen == sorted(seen)
    assert env.now == pytest.approx(max(delays))
    assert len(seen) == len(delays)


@given(
    delays=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=30
    )
)
@settings(max_examples=50, deadline=None)
def test_property_sequential_delays_sum(delays):
    """A chain of timeouts inside one process ends at the sum of its delays."""
    env = Environment()

    def proc(env, pair):
        a, b = pair
        yield env.timeout(a)
        yield env.timeout(b)
        return env.now

    procs = [env.process(proc(env, pair)) for pair in delays]
    env.run()
    for pair, p in zip(delays, procs):
        assert p.value == pytest.approx(sum(pair))


def test_determinism_same_structure_same_trace():
    """Two identical runs produce identical event traces."""

    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, name, period, count):
            for i in range(count):
                yield env.timeout(period)
                trace.append((env.now, name, i))

        env.process(worker(env, "x", 1.5, 5))
        env.process(worker(env, "y", 2.0, 4))
        env.process(worker(env, "z", 1.5, 5))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
