"""Crash/reboot semantics for the NFSv2 world: the statelessness payoff.

§1: "The major advantage of this statelessness is that NFS crash recovery
is very easy.  Neither client nor server must detect the other's crashes."
A v2 client simply keeps retransmitting; every write the old incarnation
*answered* is on stable storage (that was the promise), every unanswered
write is re-executed by the new incarnation, and the file converges.
"""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.fs import fsck
from repro.net import FDDI
from repro.workload import patterned_chunk, write_file

KB = 1024


@pytest.mark.parametrize("presto", [False, True], ids=["plain", "presto"])
@pytest.mark.parametrize("write_path", ["standard", "gather", "siva"])
def test_v2_client_survives_server_crash(write_path, presto):
    config = TestbedConfig(
        netspec=FDDI,
        write_path=write_path,
        nbiods=7,
        verify_stable=True,
        presto_bytes=(1 << 20) if presto else None,
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 512 * KB))
    # Mid-transfer; the accelerated copy finishes much sooner, so crash it
    # correspondingly earlier.
    crash_at = 0.06 if presto else 0.25

    def saboteur(env):
        yield env.timeout(crash_at)
        testbed.server.simulate_crash()

    env.process(saboteur(env))
    env.run(until=proc)
    # Recovery costs retransmission timeouts but must converge.
    assert client.rpc.retransmissions.value > 0
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(64))
    assert ufs.durable_read(ino, 0, 512 * KB) == expected
    report = fsck(ufs, strict=False)
    assert report.clean, report.errors


def test_crash_during_gather_leaves_no_orphans():
    config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=15)
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 256 * KB))

    def saboteur(env):
        yield env.timeout(0.1)
        testbed.server.simulate_crash()

    env.process(saboteur(env))
    env.run(until=proc)
    env.run()  # drain everything
    assert testbed.server.write_path.queues.pending_total() == 0
    assert testbed.server.svc.handles.in_use == 0


def test_presto_crash_preserves_nvram_accepted_writes():
    """NVRAM is stable storage: a crash loses RAM, not the Presto board.

    With the accelerator on, gathered writes are durable the moment the
    board accepts them — the crash must not orphan or lose any extent the
    client was told about, and the board's dirty extents destage cleanly
    under the new incarnation."""
    config = TestbedConfig(
        netspec=FDDI,
        write_path="gather",
        nbiods=7,
        verify_stable=True,
        presto_bytes=1 << 20,
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 256 * KB))

    def saboteur(env):
        yield env.timeout(0.03)  # mid-transfer (accelerated copies are quick)
        testbed.server.simulate_crash()

    env.process(saboteur(env))
    env.run(until=proc)
    env.run()  # let the board finish destaging to the spindle
    assert client.rpc.retransmissions.value > 0
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(32))
    assert ufs.durable_read(ino, 0, 256 * KB) == expected
    assert testbed.storage.dirty_bytes == 0  # fully destaged after drain
    report = fsck(ufs, strict=False)
    assert report.clean, report.errors


def test_double_crash_still_converges():
    config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7, verify_stable=True)
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 256 * KB))

    def saboteur(env):
        yield env.timeout(0.1)
        testbed.server.simulate_crash()
        yield env.timeout(1.5)
        testbed.server.simulate_crash()

    env.process(saboteur(env))
    env.run(until=proc)
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(32))
    assert ufs.durable_read(ino, 0, 256 * KB) == expected
