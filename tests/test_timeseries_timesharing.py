"""Tests for RateSeries (the §5 traffic-cycle oracle) and the timesharing
multiprocess client workload."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.metrics import RateSeries
from repro.net import ETHERNET, FDDI
from repro.rpc.messages import RpcCall
from repro.sim import Environment
from repro.workload import run_timesharing

KB = 1024


class TestRateSeries:
    def test_bucketing_and_rates(self):
        env = Environment()
        series = RateSeries(env, bucket_seconds=1.0)

        def proc(env):
            series.observe(10)
            yield env.timeout(0.5)
            series.observe(10)
            yield env.timeout(1.0)  # now in bucket 1
            series.observe(5)

        env.run(until=env.process(proc(env)))
        rates = series.rates()
        assert rates[0] == pytest.approx(20.0)
        assert rates[1] == pytest.approx(5.0)
        assert series.mean_rate() == pytest.approx(12.5)

    def test_burstiness_detects_on_off_pattern(self):
        env = Environment()
        bursty = RateSeries(env, bucket_seconds=0.1)
        smooth = RateSeries(env, bucket_seconds=0.1)

        def proc(env):
            for i in range(40):
                smooth.observe(1)
                if i % 4 == 0:
                    bursty.observe(4)
                yield env.timeout(0.1)

        env.run(until=env.process(proc(env)))
        assert bursty.burstiness() > 3 * smooth.burstiness()
        assert bursty.idle_fraction() > 0.5
        assert smooth.idle_fraction() == pytest.approx(0.0, abs=0.05)

    def test_sparkline(self):
        env = Environment()
        series = RateSeries(env, bucket_seconds=1.0)

        def proc(env):
            for _ in range(5):
                series.observe(3)
                yield env.timeout(1.0)

        env.run(until=env.process(proc(env)))
        line = series.sparkline(width=10)
        assert len(line) >= 5
        assert set(line) <= set(" .:-=+*#%@")

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            RateSeries(Environment(), bucket_seconds=0)


class TestTrafficCycles:
    def test_standard_server_traffic_oscillates(self):
        """§5: 'A cycle of these uni-directional traffic shifts continues'
        — client write emissions come in trains separated by reply waits,
        so the per-10ms write rate is strongly bursty."""
        config = TestbedConfig(netspec=ETHERNET, write_path="standard", nbiods=4)
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        series = RateSeries(env, bucket_seconds=0.01)
        endpoint = client.rpc.endpoint
        original_send = endpoint.send

        def counting_send(dst, payload, size):
            if isinstance(payload, RpcCall) and payload.proc == "write":
                series.observe(1)
            original_send(dst, payload, size)

        endpoint.send = counting_send
        from repro.workload import write_file

        proc = env.process(write_file(env, client, "osc", 512 * KB))
        env.run(until=proc)
        assert series.burstiness() > 1.0
        assert series.idle_fraction() > 0.4


class TestTimesharing:
    def run_host(self, write_path, processes=3, nbiods=4):
        config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=nbiods)
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(
            run_timesharing(env, client, processes, 128 * KB), name="timesharing"
        )
        env.run(until=proc)
        return testbed, proc.value, env.now

    def test_all_processes_complete(self):
        testbed, elapsed, _total = self.run_host("gather")
        assert len(elapsed) == 3
        ufs = testbed.server.ufs
        for index in range(3):
            assert ufs.inodes[ufs.root.entries[f"ts.{index:02d}"]].size == 128 * KB

    def test_gathering_helps_the_timesharing_host(self):
        _tb1, _e1, std_total = self.run_host("standard")
        _tb2, _e2, gat_total = self.run_host("gather")
        assert gat_total < 0.8 * std_total

    def test_rough_fairness_across_processes(self):
        _testbed, elapsed, _total = self.run_host("gather")
        assert max(elapsed) < 3.0 * min(elapsed)

    def test_requires_a_process(self):
        config = TestbedConfig(netspec=FDDI)
        testbed = Testbed(config)
        client = testbed.add_client()
        with pytest.raises(ValueError):
            next(run_timesharing(testbed.env, client, 0, KB))
