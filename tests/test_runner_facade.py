"""The unified ``run(ExperimentSpec)`` front door and its deprecation shims."""

import pytest

from repro.cluster.fleet import ClusterConfig
from repro.experiments import ExperimentSpec, run
from repro.faults.campaign import ChaosCampaign
from repro.payload import PAYLOAD_FLYWEIGHT, PAYLOAD_FULL


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            ExperimentSpec(kind="bogus")

    def test_new_kinds_accepted(self):
        for kind in ("bench", "chaos", "cluster", "overload", "replica"):
            spec = ExperimentSpec(kind=kind)
            assert spec.kind == kind

    def test_payload_defaults_per_kind(self):
        assert ExperimentSpec(kind="bench").payload == PAYLOAD_FLYWEIGHT
        assert ExperimentSpec(kind="chaos").payload == PAYLOAD_FULL
        assert ExperimentSpec(kind="replica").payload == PAYLOAD_FULL

    def test_file_kb_defaults_per_kind(self):
        assert ExperimentSpec(kind="trace").file_kb == 256
        assert ExperimentSpec(kind="chaos").file_kb == 192
        assert ExperimentSpec(kind="cluster").file_kb == 64
        assert ExperimentSpec(kind="cluster", file_kb=128).file_kb == 128

    def test_cluster_and_replica_require_config(self):
        with pytest.raises(ValueError, match="ClusterConfig"):
            run(ExperimentSpec(kind="cluster"))
        with pytest.raises(ValueError, match="ClusterConfig"):
            run(ExperimentSpec(kind="replica"))


class TestFacadeKinds:
    def test_bench_kind(self):
        report = run(ExperimentSpec(kind="bench", file_mb=0.125))
        assert report["schema"] == "repro.bench/1"
        assert report["payload"] == PAYLOAD_FLYWEIGHT
        assert len(report["cells"]) == 8

    def test_chaos_kind(self):
        report = run(
            ExperimentSpec(
                kind="chaos", plans=1, write_paths=("standard",),
                presto_modes=(False,), file_kb=64,
            )
        )
        assert len(report.results) == 1
        assert report.clean, report.violations

    def test_cluster_kind_single_cell(self):
        result = run(
            ExperimentSpec(
                kind="cluster", config=ClusterConfig(servers=2, seed=0),
                clients=2, files_per_client=1, file_kb=32,
            )
        )
        assert result.servers == 2
        assert result.clean, result.violations

    def test_cluster_kind_sweep(self):
        sweep = run(
            ExperimentSpec(
                kind="cluster", config=ClusterConfig(servers=1, seed=0),
                server_counts=[1, 2], client_counts=[2],
                files_per_client=1, file_kb=32,
            )
        )
        assert [row.servers for row in sweep.rows] == [1, 2]
        assert sweep.clean

    def test_replica_kind(self):
        result = run(
            ExperimentSpec(
                kind="replica", config=ClusterConfig(servers=2, seed=0),
                replica_counts=(0,), clients=2, files_per_client=1,
                file_kb=32, storm_crashes=1,
            )
        )
        assert [arm.replicas for arm in result.arms] == [0]
        assert result.clean

    def test_overload_kind(self):
        from repro.overload.experiment import OverloadConfig

        report = run(
            ExperimentSpec(
                kind="overload",
                config=OverloadConfig(
                    write_paths=("standard",), presto_modes=(False,),
                    modes=("adaptive",), clients=2, duration=0.5,
                    loads=(16000, 48000),
                ),
            )
        )
        assert len(report.combos) == 1


class TestDeprecatedEntryPoints:
    """The old per-subsystem entry points warn but keep working."""

    def test_run_cluster_warns_and_matches_facade(self):
        from repro.cluster import run_cluster

        with pytest.warns(DeprecationWarning, match="run_cluster"):
            old = run_cluster(
                ClusterConfig(servers=2, seed=0),
                clients=2, files_per_client=1, file_kb=32,
            )
        new = run(
            ExperimentSpec(
                kind="cluster", config=ClusterConfig(servers=2, seed=0),
                clients=2, files_per_client=1, file_kb=32,
            )
        )
        assert old.to_json() == new.to_json()

    def test_run_scaling_sweep_warns(self):
        from repro.cluster import run_scaling_sweep

        with pytest.warns(DeprecationWarning, match="run_scaling_sweep"):
            sweep = run_scaling_sweep(
                ClusterConfig(servers=1, seed=0),
                server_counts=[1], client_counts=[2],
                files_per_client=1, file_kb=32,
            )
        assert sweep.clean

    def test_run_replica_warns(self):
        from repro.replica import run_replica

        with pytest.warns(DeprecationWarning, match="run_replica"):
            result = run_replica(
                ClusterConfig(servers=2, seed=0),
                replica_counts=(0,), clients=2, files_per_client=1,
                file_kb=32, storm_crashes=1,
            )
        assert result.clean

    def test_run_overload_warns(self):
        from repro.overload import OverloadConfig, run_overload

        with pytest.warns(DeprecationWarning, match="run_overload"):
            report = run_overload(
                OverloadConfig(
                    write_paths=("standard",), presto_modes=(False,),
                    modes=("adaptive",), clients=2, duration=0.5,
                    loads=(16000,),
                )
            )
        assert len(report.combos) == 1

    def test_chaos_campaign_run_warns_and_matches_execute(self):
        def campaign():
            return ChaosCampaign(
                seed=0, plans_per_combo=1, write_paths=("standard",),
                presto_modes=(False,), file_kb=64,
            )

        with pytest.warns(DeprecationWarning, match="ChaosCampaign.run"):
            old = campaign().run()
        new = campaign().execute()
        assert old.to_json() == new.to_json()
