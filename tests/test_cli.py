"""Tests for the `repro` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.server.config import WritePath


class TestParser:
    def test_table_requires_valid_number(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "9"])
        args = parser.parse_args(["table", "3"])
        assert args.number == 3
        assert args.file_mb == 10.0

    def test_copy_defaults(self):
        args = build_parser().parse_args(["copy"])
        assert args.net == "fddi"
        assert args.biods == 7
        assert not args.gather

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_write_path_choices(self):
        args = build_parser().parse_args(["copy", "--write-path", "siva"])
        assert args.write_path == "siva"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["copy", "--write-path", "bogus"])

    def test_net_fault_flags(self):
        for command in ("copy", "laddis", "sweep"):
            prefix = [command] if command != "sweep" else ["sweep", "nbiods", "1"]
            args = build_parser().parse_args(
                prefix + ["--loss-rate", "0.05", "--net-seed", "9"]
            )
            assert args.loss_rate == 0.05
            assert args.net_seed == 9
            defaults = build_parser().parse_args(prefix)
            assert defaults.loss_rate == 0.0
            assert defaults.net_seed is None


class TestWritePathFlags:
    def test_new_flag_selects_path(self, capsys):
        assert (
            main(["copy", "--write-path", "gather", "--biods", "7", "--file-mb", "0.5"])
            == 0
        )
        captured = capsys.readouterr()
        assert "/gather" in captured.out
        assert "deprecated" not in captured.err

    def test_removed_gather_flag_errors_with_pointer(self, capsys):
        assert main(["copy", "--gather", "--file-mb", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "--gather was removed" in err
        assert "--write-path gather" in err

    def test_removed_siva_flag_errors_with_pointer(self, capsys):
        assert main(["copy", "--siva", "--file-mb", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "--siva was removed" in err
        assert "--write-path siva" in err

    def test_enum_round_trip(self):
        assert WritePath.coerce("gather") is WritePath.GATHER
        assert WritePath.coerce(WritePath.SIVA) is WritePath.SIVA
        assert str(WritePath.STANDARD) == "standard"
        assert f"{WritePath.GATHER}" == "gather"
        with pytest.raises(ValueError):
            WritePath.coerce("bogus")


class TestJsonOutput:
    def test_copy_json_includes_phase_percentiles(self, capsys):
        assert (
            main(
                [
                    "copy",
                    "--net",
                    "fddi",
                    "--biods",
                    "7",
                    "--write-path",
                    "gather",
                    "--json",
                    "--file-mb",
                    "0.5",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"].endswith("/gather")
        phases = payload["phases"]
        for phase in (
            "net.sockbuf",
            "server.vnode_wait",
            "gather.procrastinate",
            "storage.commit",
            "reply.delay",
        ):
            assert {"p50", "p95", "p99"} <= set(phases[phase]), phase

    def test_table_json(self, capsys):
        assert main(["table", "1", "--file-mb", "0.25", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table"] == 1
        assert len(payload["standard"]) == len(payload["biods"])

    def test_sweep_json(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "nbiods",
                    "0",
                    "7",
                    "--write-path",
                    "gather",
                    "--file-mb",
                    "0.25",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["field"] == "nbiods"
        assert len(payload["results"]) == 2


class TestCommands:
    def test_copy_standard(self, capsys):
        assert main(["copy", "--net", "fddi", "--biods", "3", "--file-mb", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "client write speed" in out
        assert "fddi/standard" in out

    def test_copy_gather_shows_batch_stats(self, capsys):
        assert (
            main(
                [
                    "copy",
                    "--write-path",
                    "gather",
                    "--biods",
                    "7",
                    "--file-mb",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean gathered batch size" in out

    def test_copy_interval_override(self, capsys):
        assert (
            main(
                [
                    "copy",
                    "--write-path",
                    "gather",
                    "--interval-ms",
                    "2",
                    "--file-mb",
                    "0.5",
                ]
            )
            == 0
        )
        assert "gather" in capsys.readouterr().out

    def test_copy_rejects_removed_aliases(self, capsys):
        assert main(["copy", "--gather", "--siva"]) == 2
        assert "--write-path" in capsys.readouterr().err

    def test_copy_presto_stripes(self, capsys):
        assert (
            main(
                ["copy", "--presto", "--stripes", "3", "--file-mb", "0.5"]
            )
            == 0
        )
        assert "presto" in capsys.readouterr().out

    def test_table_small(self, capsys):
        assert main(["table", "1", "--file-mb", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Without Write Gathering" in out
        assert "measured vs paper" in out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "standard server" in out
        assert "gathering server" in out

    def test_laddis_tiny(self, capsys):
        assert (
            main(["laddis", "--loads", "60", "--duration", "1.0"]) == 0
        )
        out = capsys.readouterr().out
        assert "capacity" in out

    def test_copy_with_injected_loss_still_converges(self, capsys):
        assert (
            main(
                [
                    "copy",
                    "--file-mb",
                    "0.5",
                    "--loss-rate",
                    "0.02",
                    "--net-seed",
                    "9",
                ]
            )
            == 0
        )
        assert "client write speed" in capsys.readouterr().out


class TestClusterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.servers == [2]
        assert args.clients == [4]
        assert args.vnodes == 64
        assert args.crash_shard is None
        assert not args.presto

    def test_single_run_human_output(self, capsys):
        assert main(["cluster", "--servers", "2", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 servers x 2 clients" in out
        assert "crash contract held" in out

    def test_json_shape(self, capsys):
        assert (
            main(["cluster", "--servers", "2", "--clients", "2", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["servers"] == 2
        assert payload["clients"] == 2
        assert payload["clean"] is True
        assert len(payload["per_shard"]) == 2
        assert sum(payload["placement"].values()) == 2 * payload["files_per_client"]

    def test_removed_gather_alias_errors(self, capsys):
        assert main(["cluster", "--clients", "1", "--gather"]) == 2
        assert "--write-path gather" in capsys.readouterr().err

    def test_write_path_option_selects_siva(self, capsys):
        assert (
            main(
                ["cluster", "--clients", "1", "--write-path", "siva", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["write_path"] == str(WritePath.SIVA)

    def test_crash_run_exits_zero_when_contract_holds(self, capsys):
        assert (
            main(
                [
                    "cluster",
                    "--servers",
                    "3",
                    "--clients",
                    "3",
                    "--crash-shard",
                    "1",
                    "--crash-at",
                    "0.05",
                    "--outage",
                    "0.2",
                    "--redirect",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashes"] == 1
        assert payload["faults"][0]["redirected"] is True

    def test_sweep_mode_prints_efficiency_table(self, capsys):
        assert (
            main(["cluster", "--servers", "1", "2", "--clients", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "ok" in out

    def test_sweep_rejects_crash_flags(self, capsys):
        assert (
            main(["cluster", "--servers", "1", "2", "--crash-shard", "0"]) == 2
        )
        assert "single-cell" in capsys.readouterr().err


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.net == "fddi"
        assert args.file_mb == 2.0
        assert args.biods == 7
        assert args.out is None

    def test_json_shape(self, capsys):
        assert main(["bench", "--file-mb", "0.25", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.bench/1"
        assert len(payload["cells"]) == 8  # 4 write paths x presto off/on
        for cell in payload["cells"]:
            assert {"p50", "p99", "mean"} <= set(cell["write_latency_ms"])
            assert cell["client_kb_per_sec"] > 0
            assert cell["disk_writes_per_mb"] > 0
            assert cell["sim_ops"] > 0
            assert cell["sim_ops_per_sec"] > 0

    def test_out_file_written_and_deterministic(self, tmp_path, capsys):
        first = tmp_path / "BENCH_a.json"
        second = tmp_path / "BENCH_b.json"
        assert main(["bench", "--file-mb", "0.25", "--out", str(first)]) == 0
        assert main(["bench", "--file-mb", "0.25", "--out", str(second)]) == 0
        capsys.readouterr()

        def stable(path):
            # sim_ops_per_sec is wall-clock-derived — the one field allowed
            # to differ between same-seed reruns.
            payload = json.loads(path.read_text())
            for cell in payload["cells"]:
                cell.pop("sim_ops_per_sec", None)
            return payload

        assert stable(first) == stable(second)
        payload = json.loads(first.read_text())
        assert payload["file_mb"] == 0.25
        assert payload["payload"] == "flyweight"
