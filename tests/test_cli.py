"""Tests for the `repro` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_requires_valid_number(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "9"])
        args = parser.parse_args(["table", "3"])
        assert args.number == 3
        assert args.file_mb == 10.0

    def test_copy_defaults(self):
        args = build_parser().parse_args(["copy"])
        assert args.net == "fddi"
        assert args.biods == 7
        assert not args.gather

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_copy_standard(self, capsys):
        assert main(["copy", "--net", "fddi", "--biods", "3", "--file-mb", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "client write speed" in out
        assert "fddi/standard" in out

    def test_copy_gather_shows_batch_stats(self, capsys):
        assert (
            main(["copy", "--gather", "--biods", "7", "--file-mb", "0.5"]) == 0
        )
        out = capsys.readouterr().out
        assert "mean gathered batch size" in out

    def test_copy_interval_override(self, capsys):
        assert (
            main(
                [
                    "copy",
                    "--gather",
                    "--interval-ms",
                    "2",
                    "--file-mb",
                    "0.5",
                ]
            )
            == 0
        )
        assert "gather" in capsys.readouterr().out

    def test_copy_rejects_gather_plus_siva(self, capsys):
        assert main(["copy", "--gather", "--siva"]) == 2

    def test_copy_presto_stripes(self, capsys):
        assert (
            main(
                ["copy", "--presto", "--stripes", "3", "--file-mb", "0.5"]
            )
            == 0
        )
        assert "presto" in capsys.readouterr().out

    def test_table_small(self, capsys):
        assert main(["table", "1", "--file-mb", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Without Write Gathering" in out
        assert "measured vs paper" in out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "standard server" in out
        assert "gathering server" in out

    def test_laddis_tiny(self, capsys):
        assert (
            main(["laddis", "--loads", "60", "--duration", "1.0"]) == 0
        )
        out = capsys.readouterr().out
        assert "capacity" in out
