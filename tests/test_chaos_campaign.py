"""ChaosCampaign: seeded reproducibility and the CLI front door.

The acceptance bar from the issue: a campaign across write paths × Presto
reports zero violations, and re-running with the same seed produces a
byte-identical JSON report.
"""

import json

from repro.cli import main
from repro.faults import ChaosCampaign, ServerCrash
from repro.faults.campaign import WRITE_PATHS


def small_campaign(seed=5):
    return ChaosCampaign(seed=seed, plans_per_combo=2, file_kb=64)


def test_plan_generation_is_seed_deterministic():
    campaign = small_campaign()
    twin = small_campaign()
    for write_path in WRITE_PATHS:
        for presto in (False, True):
            for index in range(2):
                plan = campaign.plan_for(write_path, presto, index)
                again = twin.plan_for(write_path, presto, index)
                assert plan == again
    other = small_campaign(seed=6).plan_for("gather", False, 0)
    assert other != campaign.plan_for("gather", False, 0)


def test_even_indices_carry_a_crash():
    campaign = small_campaign()
    for write_path in WRITE_PATHS:
        even = campaign.plan_for(write_path, False, 0)
        odd = campaign.plan_for(write_path, False, 1)
        assert even.crash_count == 1
        assert any(isinstance(e, ServerCrash) for e in even.events)
        assert odd.crash_count == 0


def test_small_campaign_clean_and_byte_stable():
    report = small_campaign().run()
    assert report.clean, report.violations
    assert len(report.results) == len(WRITE_PATHS) * 2 * 2
    # Crashes actually happened somewhere (even-index plans).
    assert sum(result.crashes for result in report.results) > 0
    assert sum(result.acked_writes for result in report.results) > 0
    rerun = small_campaign().run()
    assert report.to_json() == rerun.to_json()


def test_report_surfaces_violations_with_combo_prefix():
    report = small_campaign().run()
    result = report.results[0]
    result.violations.append("synthetic violation")
    assert not report.clean
    prefix = f"{result.write_path}/presto={'on' if result.presto else 'off'}"
    assert any(
        violation.startswith(prefix) and "synthetic violation" in violation
        for violation in report.violations
    )


def test_cli_chaos_json(capsys):
    exit_code = main(
        ["chaos", "--seed", "3", "--plans", "1", "--file-kb", "48", "--json"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    report = json.loads(out)
    assert report["clean"] is True
    assert report["plans_run"] == len(WRITE_PATHS) * 2
    assert report["violations"] == []


def test_cli_chaos_subset_flags(capsys):
    exit_code = main(
        [
            "chaos",
            "--seed",
            "3",
            "--plans",
            "1",
            "--file-kb",
            "48",
            "--write-paths",
            "gather",
            "--presto",
            "off",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "gather" in out
    assert "ok" in out
