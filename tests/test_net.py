"""Tests for the network substrate: specs, segments, socket buffers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ETHERNET, FDDI, Datagram, Segment, SocketBuffer
from repro.sim import Environment

KB = 1024


class TestNetSpec:
    def test_ethernet_fragments_8k_write_into_six(self):
        assert ETHERNET.frames_for(8 * KB + 160) == 6

    def test_fddi_fragments_8k_write_into_two(self):
        assert FDDI.frames_for(8 * KB + 160) == 2

    def test_small_request_single_frame(self):
        assert ETHERNET.frames_for(120) == 1

    def test_wire_time_scales_with_size(self):
        assert ETHERNET.wire_time(8 * KB) > 10 * ETHERNET.wire_time(512)

    def test_fddi_is_faster(self):
        assert FDDI.wire_time(8 * KB) < ETHERNET.wire_time(8 * KB) / 5

    def test_gather_intervals_match_paper(self):
        assert ETHERNET.gather_interval == pytest.approx(0.008)
        assert FDDI.gather_interval == pytest.approx(0.005)

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            ETHERNET.frames_for(0)


class TestSegment:
    def test_delivery(self):
        env = Environment()
        segment = Segment(env, ETHERNET)
        segment.attach("client")
        server = segment.attach("server")
        received = []

        def receiver(env):
            datagram = yield server.recv()
            received.append((env.now, datagram.payload))

        def sender(env):
            yield env.timeout(0)
            segment.endpoint("client").send("server", "hello", 200)

        env.process(receiver(env))
        env.process(sender(env))
        env.run()
        assert len(received) == 1
        when, payload = received[0]
        assert payload == "hello"
        # one frame: (200+42)*8/10Mb = ~0.19ms, plus latency 0.4ms
        assert when == pytest.approx((200 + 42) * 8 / 10e6 + ETHERNET.latency)

    def test_unknown_destination_rejected(self):
        env = Environment()
        segment = Segment(env, ETHERNET)
        client = segment.attach("client")
        with pytest.raises(ValueError):
            client.send("nobody", "x", 100)

    def test_duplicate_attach_rejected(self):
        env = Environment()
        segment = Segment(env, ETHERNET)
        segment.attach("host")
        with pytest.raises(ValueError):
            segment.attach("host")

    def test_shared_medium_serializes_senders(self):
        """Two hosts sending big datagrams at once: total time ~ sum."""
        env = Environment()
        segment = Segment(env, ETHERNET)
        a = segment.attach("a")
        b = segment.attach("b")
        sink = segment.attach("sink")
        done = []

        def receiver(env):
            for _ in range(2):
                datagram = yield sink.recv()
                done.append((env.now, datagram.src))

        def sender(env, endpoint):
            yield env.timeout(0)
            endpoint.send("sink", "bulk", 8 * KB)

        env.process(receiver(env))
        env.process(sender(env, a))
        env.process(sender(env, b))
        env.run()
        assert len(done) == 2
        single = ETHERNET.wire_time(8 * KB)
        assert done[-1][0] >= 2 * single * 0.9

    def test_full_socket_buffer_drops(self):
        env = Environment()
        segment = Segment(env, ETHERNET)
        client = segment.attach("client")
        segment.attach("server", buffer_bytes=10 * KB)

        def sender(env):
            yield env.timeout(0)
            for _ in range(5):
                client.send("server", "w", 4 * KB)

        env.process(sender(env))
        env.run()
        assert segment.dropped.value >= 1
        assert segment.delivered.value <= 3

    def test_loss_rate_loses_frames(self):
        env = Environment()
        segment = Segment(env, ETHERNET, loss_rate=0.5, seed=42)
        client = segment.attach("client")
        segment.attach("server")

        def sender(env):
            yield env.timeout(0)
            for _ in range(40):
                client.send("server", "w", 2 * KB)

        env.process(sender(env))
        env.run()
        assert segment.lost.value > 0
        assert segment.delivered.value > 0
        assert segment.lost.value + segment.delivered.value == 40

    def test_bad_loss_rate_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Segment(env, ETHERNET, loss_rate=1.5)

    def test_wire_utilization_measured(self):
        env = Environment()
        segment = Segment(env, ETHERNET)
        client = segment.attach("client")
        segment.attach("server")

        def sender(env):
            yield env.timeout(0)
            client.send("server", "bulk", 8 * KB)

        env.process(sender(env))
        env.run()
        assert 0.5 < segment.utilization.utilization() <= 1.0


class TestSocketBuffer:
    def test_byte_capacity(self):
        env = Environment()
        buffer = SocketBuffer(env, capacity_bytes=10 * KB)
        assert buffer.try_put(Datagram("a", "b", 1, 6 * KB))
        assert not buffer.try_put(Datagram("a", "b", 2, 6 * KB))
        assert buffer.try_put(Datagram("a", "b", 3, 4 * KB))
        assert buffer.used_bytes == 10 * KB

    def test_steal_and_scan(self):
        env = Environment()
        buffer = SocketBuffer(env, capacity_bytes=100 * KB)
        for i in range(5):
            buffer.try_put(Datagram("c", "s", {"op": "write" if i % 2 else "read", "i": i}, KB))
        writes = buffer.scan(lambda d: d.payload["op"] == "write")
        assert [d.payload["i"] for d in writes] == [1, 3]
        stolen = buffer.steal(lambda d: d.payload["op"] == "write")
        assert stolen.payload["i"] == 1
        assert buffer.used_bytes == 4 * KB
        assert len(buffer) == 4

    def test_get_blocks_until_put(self):
        env = Environment()
        buffer = SocketBuffer(env, capacity_bytes=10 * KB)
        times = []

        def getter(env):
            datagram = yield buffer.get()
            times.append((env.now, datagram.payload))

        def putter(env):
            yield env.timeout(3)
            buffer.try_put(Datagram("a", "b", "late", KB))

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert times == [(3, "late")]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            SocketBuffer(env, capacity_bytes=0)


@given(
    sizes=st.lists(st.integers(100, 9000), min_size=1, max_size=30),
    spec=st.sampled_from([ETHERNET, FDDI]),
)
@settings(max_examples=40, deadline=None)
def test_property_all_sent_datagrams_arrive_in_order(sizes, spec):
    """Lossless segment: every datagram arrives, FIFO per sender."""
    env = Environment()
    segment = Segment(env, spec)
    client = segment.attach("client")
    server = segment.attach("server", buffer_bytes=100_000_000)
    got = []

    def sender(env):
        yield env.timeout(0)
        for i, size in enumerate(sizes):
            client.send("server", i, size)

    def receiver(env):
        for _ in sizes:
            datagram = yield server.recv()
            got.append(datagram.payload)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got == list(range(len(sizes)))
