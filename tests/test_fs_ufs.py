"""Tests for the UFS write paths, clustering, fsync semantics, namespace,
and crash-consistency (durable image) behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import RZ26, DiskDevice
from repro.fs import (
    IO_DATAONLY,
    IO_DELAYDATA,
    IO_SYNC,
    NDIRECT,
    FileType,
    FsError,
    Ufs,
    VnodeTable,
)
from repro.nvram import PrestoCache
from repro.sim import Environment

KB = 1024
MB = 1024 * 1024


def make_fs(env, presto=False, **kwargs):
    disk = DiskDevice(env, RZ26)
    storage = PrestoCache(env, disk) if presto else disk
    ufs = Ufs(env, storage, fs_bytes=256 * MB, **kwargs)
    return ufs, disk


def run(env, generator):
    """Drive a UFS generator inside a process and return its value."""

    def wrapper():
        result = yield from generator
        return result

    proc = env.process(wrapper())
    env.run(until=proc)
    return proc.value


def make_file(env, ufs, name="f"):
    return run(env, ufs.create(ufs.root, name))


class TestStandardWrite:
    def test_new_block_costs_data_plus_inode(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        disk.stats.reset()
        result = run(env, ufs.write(inode, 0, b"x" * 8192, IO_SYNC))
        # data block + inode block, both synchronous; file still in direct
        # blocks so no indirect write.
        assert result.sync_transactions == 2
        assert disk.stats.by_kind == {"data": 1.0, "inode": 1.0}
        assert not result.metadata_dirty

    def test_indirect_block_written_past_direct_range(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        offset = NDIRECT * 8192  # first indirect-mapped block
        disk.stats.reset()
        result = run(env, ufs.write(inode, offset, b"y" * 8192, IO_SYNC))
        assert result.sync_transactions == 3
        assert disk.stats.by_kind == {"data": 1.0, "inode": 1.0, "indirect": 1.0}

    def test_rewrite_is_mtime_only_async_inode(self):
        """The reference port's special case: a write to an allocated block
        changes only mtime, and that inode update is asynchronous."""
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"x" * 8192, IO_SYNC))
        disk.stats.reset()
        result = run(env, ufs.write(inode, 0, b"z" * 8192, IO_SYNC))
        assert result.sync_transactions == 1  # data only
        assert result.mtime_only
        assert disk.stats.by_kind == {"data": 1.0}
        assert inode.only_mtime_dirty

    def test_sequential_file_write_costs_about_3n(self):
        """§5: a new N-block file in the indirect range costs ~3N disk ops."""
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        nblocks = 30
        disk.stats.reset()

        def driver():
            for i in range(nblocks):
                yield from ufs.write(inode, i * 8192, b"a" * 8192, IO_SYNC)

        run(env, driver())
        total = disk.stats.transactions.value
        assert 2 * nblocks <= total <= 3 * nblocks + 2

    def test_write_validation(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        with pytest.raises(FsError):
            run(env, ufs.write(inode, -1, b"x"))
        with pytest.raises(FsError):
            run(env, ufs.write(inode, 0, b""))
        with pytest.raises(FsError):
            run(env, ufs.write(ufs.root, 0, b"x"))

    def test_enospc_when_volume_full(self):
        env = Environment()
        disk = DiskDevice(env, RZ26)
        ufs = Ufs(env, disk, fs_bytes=1 * MB)
        inode = make_file(env, ufs)

        def driver():
            for i in range(1000):
                yield from ufs.write(inode, i * 8192, b"f" * 8192, IO_SYNC)

        with pytest.raises(FsError) as excinfo:
            run(env, driver())
        assert excinfo.value.code == "ENOSPC"


class TestDataOnlyAndDelayed:
    def test_dataonly_leaves_metadata_dirty(self):
        env = Environment()
        ufs, disk = make_fs(env, presto=True)
        inode = make_file(env, ufs)
        disk.stats.reset()
        result = run(env, ufs.write(inode, 0, b"x" * 8192, IO_SYNC | IO_DATAONLY))
        assert result.metadata_dirty
        assert inode.inode_dirty
        # Data accepted by NVRAM: durable without any disk data transaction yet.
        assert ufs.cache.durable.blocks  # committed via presto accept

    def test_delaydata_defers_everything(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        disk.stats.reset()
        result = run(env, ufs.write(inode, 0, b"x" * 8192, IO_DELAYDATA))
        assert result.sync_transactions == 0
        assert disk.stats.transactions.value == 0
        assert ufs.cache.dirty_addrs()

    def test_delaydata_kicks_async_cluster_write(self):
        """Filling a full 64K cluster window starts an async clustered write."""
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        disk.stats.reset()

        def driver():
            for i in range(16):  # 128K: two full windows
                yield from ufs.write(inode, i * 8192, bytes([i]) * 8192, IO_DELAYDATA)

        run(env, driver())
        env.run()  # let async flushes complete
        assert disk.stats.transactions.value >= 1
        data_transfers = [k for k in disk.stats.by_kind if k == "data"]
        assert data_transfers
        # Clustered: far fewer transactions than 16 blocks.
        assert disk.stats.transactions.value <= 4

    def test_syncdata_flushes_range_clustered(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)

        def driver():
            for i in range(8):  # 64K contiguous
                yield from ufs.write(inode, i * 8192, b"q" * 8192, IO_DELAYDATA)
            transactions = yield from ufs.sync_data(inode, 0, 8 * 8192)
            return transactions

        disk.stats.reset()
        result = run(env, driver())
        assert result <= 1 or disk.stats.transactions.value <= 2
        assert not ufs.cache.dirty_addrs()

    def test_fsync_metadata_only_skips_data(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"x" * 8192, IO_DELAYDATA))
        disk.stats.reset()
        run(env, ufs.fsync(inode, metadata_only=True))
        assert "inode" in disk.stats.by_kind
        assert "data" not in disk.stats.by_kind
        assert ufs.cache.dirty_addrs()  # data still delayed

    def test_full_fsync_flushes_data_and_metadata(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"x" * 8192, IO_DELAYDATA))
        disk.stats.reset()
        run(env, ufs.fsync(inode))
        assert "inode" in disk.stats.by_kind
        assert "data" in disk.stats.by_kind
        assert not ufs.cache.dirty_addrs()
        assert not inode.inode_dirty


class TestReadback:
    def test_write_then_read_roundtrip(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        payload = bytes(range(256)) * 64  # 16K
        run(env, ufs.write(inode, 0, payload, IO_SYNC))
        assert run(env, ufs.read(inode, 0, len(payload))) == payload

    def test_read_hole_returns_zeros(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 16384, b"x" * 8192, IO_SYNC))
        data = run(env, ufs.read(inode, 0, 8192))
        assert data == b"\x00" * 8192

    def test_read_past_eof_truncates(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"abc", IO_SYNC))
        assert run(env, ufs.read(inode, 0, 100)) == b"abc"
        assert run(env, ufs.read(inode, 50, 10)) == b""

    def test_unaligned_write_and_read(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 5000, b"hello world", IO_SYNC))
        assert run(env, ufs.read(inode, 5000, 11)) == b"hello world"

    def test_read_after_cache_drop_faults_from_durable(self):
        env = Environment()
        ufs, disk = make_fs(env)
        inode = make_file(env, ufs)
        payload = b"\xab" * 8192
        run(env, ufs.write(inode, 0, payload, IO_SYNC))
        ufs.cache.drop_clean()
        disk.stats.reset()
        assert run(env, ufs.read(inode, 0, 8192)) == payload
        assert disk.stats.reads.value == 1


class TestNamespace:
    def test_create_lookup(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs, "hello.txt")
        found = run(env, ufs.lookup(ufs.root, "hello.txt"))
        assert found is inode

    def test_create_duplicate_rejected(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        make_file(env, ufs, "dup")
        with pytest.raises(FsError) as excinfo:
            make_file(env, ufs, "dup")
        assert excinfo.value.code == "EEXIST"

    def test_lookup_missing_enoent(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        with pytest.raises(FsError) as excinfo:
            run(env, ufs.lookup(ufs.root, "ghost"))
        assert excinfo.value.code == "ENOENT"

    def test_remove_frees_blocks_and_stales_handles(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs, "victim")
        run(env, ufs.write(inode, 0, b"x" * 8192, IO_SYNC))
        ino = inode.ino
        before = ufs.allocator.allocated_count
        run(env, ufs.remove(ufs.root, "victim"))
        assert ufs.allocator.allocated_count < before
        with pytest.raises(FsError) as excinfo:
            ufs.get_inode(ino)
        assert excinfo.value.code == "ESTALE"

    def test_readdir_sorted(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        for name in ["zeta", "alpha", "mid"]:
            make_file(env, ufs, name)
        assert run(env, ufs.readdir(ufs.root)) == ["alpha", "mid", "zeta"]

    def test_subdirectory(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        subdir = run(env, ufs.create(ufs.root, "sub", FileType.DIRECTORY))
        inner = run(env, ufs.create(subdir, "inner"))
        assert run(env, ufs.lookup(subdir, "inner")) is inner

    def test_nondir_operations_rejected(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        for generator in (
            ufs.lookup(inode, "x"),
            ufs.create(inode, "x"),
            ufs.remove(inode, "x"),
            ufs.readdir(inode),
        ):
            with pytest.raises(FsError):
                run(env, generator)


class TestDurability:
    def test_sync_write_is_durable_immediately(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        payload = b"\x5a" * 8192
        run(env, ufs.write(inode, 0, payload, IO_SYNC))
        assert ufs.durable_read(inode.ino, 0, 8192) == payload

    def test_delayed_write_not_durable_until_fsync(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"d" * 8192, IO_DELAYDATA))
        assert ufs.durable_read(inode.ino, 0, 8192) is None
        run(env, ufs.fsync(inode))
        assert ufs.durable_read(inode.ino, 0, 8192) == b"d" * 8192

    def test_dataonly_write_not_recoverable_without_metadata(self):
        """Data in stable storage is unreachable after a crash until the
        block pointers (inode) are also committed — the §6.3/§6.4 ordering."""
        env = Environment()
        ufs, _disk = make_fs(env, presto=True)
        inode = make_file(env, ufs)
        offset = NDIRECT * 8192  # indirect range: needs indirect block too
        run(env, ufs.write(inode, offset, b"p" * 8192, IO_SYNC | IO_DATAONLY))
        assert ufs.durable_read(inode.ino, offset, 8192) is None
        run(env, ufs.fsync(inode, metadata_only=True))
        assert ufs.durable_read(inode.ino, offset, 8192) == b"p" * 8192

    def test_sync_all_flushes_everything(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        inode = make_file(env, ufs)
        run(env, ufs.write(inode, 0, b"s" * 8192, IO_DELAYDATA))
        run(env, ufs.sync_all())
        assert not ufs.cache.dirty_addrs()
        assert ufs.durable_read(inode.ino, 0, 8192) == b"s" * 8192


class TestVnodeLayer:
    def test_vnode_table_resolves_fhandle(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        table = VnodeTable(env, ufs)
        inode = make_file(env, ufs)
        vnode = table.vnode_for(inode)
        assert table.by_fhandle(vnode.fhandle) is vnode

    def test_stale_fhandle_rejected(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        table = VnodeTable(env, ufs)
        inode = make_file(env, ufs, "gone")
        fhandle = table.vnode_for(inode).fhandle
        run(env, ufs.remove(ufs.root, "gone"))
        with pytest.raises(FsError):
            table.by_fhandle(fhandle)

    def test_vnode_lock_waiters_visible(self):
        env = Environment()
        ufs, _disk = make_fs(env)
        table = VnodeTable(env, ufs)
        inode = make_file(env, ufs)
        vnode = table.vnode_for(inode)
        observations = []

        def holder(env):
            with vnode.lock.request() as req:
                yield req
                yield env.timeout(5)

        def waiter(env):
            yield env.timeout(1)
            with vnode.lock.request() as req:
                yield req

        def observer(env):
            yield env.timeout(2)
            observations.append((vnode.locked(), vnode.waiters()))

        env.process(holder(env))
        env.process(waiter(env))
        env.process(observer(env))
        env.run()
        assert observations == [(True, 1)]


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 40), st.integers(1, 3), st.integers(0, 255)),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_readback_matches_reference_model(writes):
    """Arbitrary block-ish writes read back exactly like a flat bytearray."""
    env = Environment()
    disk = DiskDevice(env, RZ26)
    ufs = Ufs(env, disk, fs_bytes=256 * MB)
    inode = run(env, ufs.create(ufs.root, "prop"))
    reference = bytearray()

    def apply(offset, data):
        if len(reference) < offset + len(data):
            reference.extend(b"\x00" * (offset + len(data) - len(reference)))
        reference[offset : offset + len(data)] = data

    def driver():
        for block, nblocks, fill in writes:
            offset = block * 4096
            data = bytes([fill]) * (nblocks * 4096)
            apply(offset, data)
            yield from ufs.write(inode, offset, data, IO_SYNC)

    run(env, driver())
    readback = run(env, ufs.read(inode, 0, len(reference)))
    assert readback == bytes(reference)


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 255)), min_size=1, max_size=20
    )
)
@settings(max_examples=40, deadline=None)
def test_property_durable_after_fsync_matches_cache(writes):
    """After fsync, the durable image equals the live file content."""
    env = Environment()
    disk = DiskDevice(env, RZ26)
    ufs = Ufs(env, disk, fs_bytes=256 * MB)
    inode = run(env, ufs.create(ufs.root, "prop2"))

    def driver():
        for block, fill in writes:
            yield from ufs.write(inode, block * 8192, bytes([fill]) * 8192, IO_DELAYDATA)
        yield from ufs.fsync(inode)

    run(env, driver())
    live = run(env, ufs.read(inode, 0, inode.size))
    durable = ufs.durable_read(inode.ino, 0, inode.size)
    assert durable == live
