"""Tests for the NFS client: biod write-behind, blocking, sync-on-close,
client cache-block coalescing."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsError


def make_bed(nbiods=4, write_path="standard"):
    config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=nbiods)
    testbed = Testbed(config)
    client = testbed.add_client()
    return testbed, client


class TestWriteBehind:
    def test_small_writes_coalesce_into_8k_blocks(self):
        """Application writes below 8K stay in the client cache block until
        it fills ('needs to go to the wire')."""
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            for _ in range(4):
                yield from client.write_stream(open_file, b"a" * 2048)
            # 8K accumulated: exactly one WRITE should have gone out.
            return client.bytes_written.value + len(open_file.pending)

        proc = env.process(driver(env))
        env.run(until=proc)
        env.run()  # drain the biod's in-flight RPC
        assert testbed.server.ops_completed["write"].value == 1

    def test_partial_block_flushed_at_close(self):
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            yield from client.write_stream(open_file, b"a" * 3000)
            yield from client.close(open_file)

        env.run(until=env.process(driver(env)))
        assert testbed.server.ops_completed["write"].value == 1
        ufs = testbed.server.ufs
        assert ufs.inodes[ufs.root.entries["c"]].size == 3000

    def test_biod_handoff_keeps_application_running(self):
        """With biods free, write_stream returns without waiting for the
        server; the application's clock barely advances."""
        testbed, client = make_bed(nbiods=4)
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            before = env.now
            yield from client.write_stream(open_file, b"a" * 8192)
            handoff_time = env.now - before
            yield from client.close(open_file)
            return handoff_time

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value < 0.005  # far below one server round trip
        assert client.biod_handoffs.value == 1

    def test_no_biods_blocks_application_per_write(self):
        testbed, client = make_bed(nbiods=0)
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            before = env.now
            yield from client.write_stream(open_file, b"a" * 8192)
            return env.now - before

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value > 0.01  # full synchronous round trip
        assert client.blocked_writes.value == 1
        assert client.biod_handoffs.value == 0

    def test_busy_biods_block_the_application(self):
        testbed, client = make_bed(nbiods=2)
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            for i in range(3):  # two handoffs, third blocks inline
                yield from client.write_stream(open_file, bytes([i]) * 8192)
            yield from client.close(open_file)

        env.run(until=env.process(driver(env)))
        assert client.biod_handoffs.value == 2
        assert client.blocked_writes.value == 1

    def test_close_waits_for_all_outstanding(self):
        testbed, client = make_bed(nbiods=8)
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("c")
            for i in range(6):
                yield from client.write_stream(open_file, bytes([i]) * 8192)
            yield from client.close(open_file)
            return client.bytes_written.value

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value == 6 * 8192  # every write answered before close

    def test_negative_biods_rejected(self):
        testbed, _client = make_bed()
        from repro.nfs import NfsClient

        with pytest.raises(ValueError):
            NfsClient(testbed.env, _client.rpc, nbiods=-1)


class TestNamespaceOps:
    def test_lookup_getattr_readdir_statfs(self):
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("hello")
            yield from client.close(open_file)
            fhandle, fattr = yield from client.lookup("hello")
            assert fhandle == open_file.fhandle
            attrs = yield from client.getattr(fhandle)
            names = yield from client.readdir()
            stats = yield from client.statfs()
            return fattr, attrs, names, stats

        proc = env.process(driver(env))
        env.run(until=proc)
        fattr, attrs, names, stats = proc.value
        assert fattr.size == 0
        assert attrs.ino == fattr.ino
        assert names == ["hello"]
        assert stats["bfree"] > 0

    def test_lookup_missing_raises(self):
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            try:
                yield from client.lookup("nope")
            except NfsError as exc:
                return exc.code

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value == "ENOENT"

    def test_setattr_truncate(self):
        testbed, client = make_bed()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("t")
            yield from client.write_stream(open_file, b"z" * 8192)
            yield from client.close(open_file)
            attrs = yield from client.setattr(open_file.fhandle, size=0)
            return attrs.size

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value == 0


class TestRandomAccessClient:
    def test_write_at_splits_large_buffers(self):
        testbed, client = make_bed(nbiods=8)
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("big")
            yield from client.write_at(open_file, 0, b"q" * (32 * 1024))
            yield from client.close(open_file)

        env.run(until=env.process(driver(env)))
        assert testbed.server.ops_completed["write"].value == 4  # 4 x 8K
