"""Tests for Resource / PriorityResource / Store / Container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, PriorityResource, Resource, SimError, Store


def test_resource_serializes_access():
    env = Environment()
    resource = Resource(env, capacity=1)
    trace = []

    def user(env, resource, name, hold):
        with resource.request() as req:
            yield req
            trace.append(("start", name, env.now))
            yield env.timeout(hold)
            trace.append(("end", name, env.now))

    env.process(user(env, resource, "a", 2))
    env.process(user(env, resource, "b", 3))
    env.run()
    assert trace == [
        ("start", "a", 0),
        ("end", "a", 2),
        ("start", "b", 2),
        ("end", "b", 5),
    ]


def test_resource_capacity_two_overlaps():
    env = Environment()
    resource = Resource(env, capacity=2)
    ends = []

    def user(env):
        with resource.request() as req:
            yield req
            yield env.timeout(4)
            ends.append(env.now)

    for _ in range(3):
        env.process(user(env))
    env.run()
    assert ends == [4, 4, 8]


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimError):
        Resource(env, capacity=0)


def test_resource_release_ungranted_request_withdraws():
    env = Environment()
    resource = Resource(env, capacity=1)
    holder = resource.request()
    env.run()
    assert holder.triggered
    waiter = resource.request()
    assert not waiter.triggered
    resource.release(waiter)  # withdraw from queue
    resource.release(holder)
    assert len(resource.queue) == 0
    assert resource.count == 0


def test_priority_resource_grants_lowest_priority_first():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def user(env, name, priority, arrive):
        yield env.timeout(arrive)
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(user(env, "low", 5, 0))  # grabs first (resource idle)
    env.process(user(env, "urgent", 0, 1))
    env.process(user(env, "medium", 3, 1))
    env.process(user(env, "slow", 9, 1))
    env.run()
    assert order == ["low", "urgent", "medium", "slow"]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(5):
            yield env.timeout(1)
            store.put(i)

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]


def test_store_bounded_try_put_drops():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")  # full: dropped, like a full socket buffer
    assert len(store) == 2


def test_store_blocking_put_waits_for_space():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("x")
        times.append(("x-in", env.now))
        yield store.put("y")
        times.append(("y-in", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        times.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("x-in", 0) in times
    assert ("y-in", 5) in times


def test_store_steal_removes_matching_item():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.try_put({"id": i})
    stolen = store.steal(lambda item: item["id"] == 3)
    assert stolen == {"id": 3}
    assert store.steal(lambda item: item["id"] == 3) is None
    remaining = [item["id"] for item in store.items]
    assert remaining == [0, 1, 2, 4]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.try_put("a")
    assert store.try_get() == "a"
    assert store.try_get() is None


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    assert tank.try_get(30)
    assert tank.level == 20
    assert not tank.try_get(30)


def test_container_blocking_get_waits_for_put():
    env = Environment()
    tank = Container(env, capacity=100)
    log = []

    def getter(env):
        yield tank.get(10)
        log.append(("got", env.now))

    def putter(env):
        yield env.timeout(7)
        yield tank.put(10)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [("got", 7)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=8)
    log = []

    def putter(env):
        yield tank.put(5)
        log.append(("put-done", env.now))

    def drainer(env):
        yield env.timeout(3)
        assert tank.try_get(4)

    env.process(putter(env))
    env.process(drainer(env))
    env.run()
    assert log == [("put-done", 3)]
    assert tank.level == 9


@given(ops=st.lists(st.integers(1, 20), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_store_conserves_items(ops):
    """Everything put into a store is eventually got, in FIFO order."""
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i, gap in enumerate(ops):
            yield env.timeout(gap)
            store.put(i)

    def consumer(env):
        for _ in ops:
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == list(range(len(ops)))


@given(
    capacity=st.integers(1, 4),
    holds=st.lists(st.integers(1, 9), min_size=1, max_size=25),
)
@settings(max_examples=50, deadline=None)
def test_property_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = [0]
    active = [0]

    def user(env, hold):
        with resource.request() as req:
            yield req
            active[0] += 1
            max_seen[0] = max(max_seen[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert active[0] == 0
