"""Tests for the repro.overload sweep and its `repro overload` CLI.

A reduced three-point sweep (gather, Presto off) exercises the whole
machinery: both modes, the curve flags, the mid-storm crash probe, and
byte-identical same-seed JSON.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.overload import MODES, OverloadConfig, run_overload

SMALL = dict(
    write_paths=("gather",),
    presto_modes=(False,),
    loads=(8_000, 48_000, 480_000),
    seed=0,
)

_cache = {}


def small_report():
    if "report" not in _cache:
        _cache["report"] = run_overload(OverloadConfig(**SMALL))
    return _cache["report"]


class TestSweep:
    def test_structure_and_crash_contract(self):
        report = small_report()
        assert len(report.combos) == 1
        combo = report.combos[0]
        assert combo["write_path"] == "gather"
        assert combo["presto"] is False
        assert set(combo["curves"]) == set(MODES)
        for mode in MODES:
            curve = combo["curves"][mode]
            assert len(curve["points"]) == 3
            for point in curve["points"]:
                assert point["goodput_kbs"] > 0
                assert point["oracle_violations"] == []
                assert point["stable_violations"] == 0
                assert point["crashes"] == 0
            # The crash probe really crashed, mid-storm, and the ledger of
            # acked writes survived in BOTH modes — the paper's contract.
            probe = combo["crash_probe"][mode]
            assert probe["crashes"] == 1
            assert probe["oracle_violations"] == []
            assert probe["stable_violations"] == 0
        assert report.clean
        assert report.violations == []

    def test_adaptive_stack_is_actually_engaged(self):
        combo = small_report().combos[0]
        top_static = combo["curves"]["static"]["points"][-1]
        top_adaptive = combo["curves"]["adaptive"]["points"][-1]
        # Static sheds only by silent overflow: no shed accounting.
        assert "shed" not in top_static
        assert "karn_suppressed" not in top_static
        # Adaptive: admission queue made deliberate shed decisions, Karn
        # suppressed ambiguous samples, and the windows reacted.
        shed = top_adaptive["shed"]
        assert sum(shed.values()) > 0
        assert top_adaptive["karn_suppressed"] > 0
        assert len(top_adaptive["final_cwnd"]) == OverloadConfig(**SMALL).clients

    def test_static_collapses_and_adaptive_plateaus(self):
        combo = small_report().combos[0]
        assert combo["curves"]["static"]["collapse"] is True
        assert combo["curves"]["adaptive"]["monotone_nondecreasing"] is True
        verdict = combo["verdict"]
        assert verdict["adaptation_wins"] is True
        assert (
            combo["curves"]["adaptive"]["points"][-1]["recovery_s"]
            < combo["curves"]["static"]["points"][-1]["recovery_s"]
        )
        assert small_report().adaptation_holds

    def test_same_seed_json_is_byte_identical(self):
        first = small_report().to_json()
        second = run_overload(OverloadConfig(**SMALL)).to_json()
        assert first == second


class TestConfigValidation:
    def test_loads_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            OverloadConfig(loads=(48_000, 8_000))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            OverloadConfig(modes=("static", "turbo"))

    def test_storm_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            OverloadConfig(storm_start_frac=0.8, storm_end_frac=0.2)

    def test_needs_a_client_and_a_load(self):
        with pytest.raises(ValueError):
            OverloadConfig(clients=0)
        with pytest.raises(ValueError):
            OverloadConfig(loads=())


class TestOverloadCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["overload"])
        assert args.seed == 0
        assert args.presto == "both"
        assert args.clients == 12
        assert args.loads is None
        assert not args.no_adapt
        assert not args.adapt_only

    def test_conflicting_mode_flags_rejected(self, capsys):
        assert main(["overload", "--no-adapt", "--adapt-only"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_json_small_sweep(self, capsys):
        code = main(
            [
                "overload",
                "--write-paths",
                "gather",
                "--presto",
                "off",
                "--loads",
                "8",
                "48",
                "470",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["adaptation_holds"] is True
        assert len(payload["combos"]) == 1
        assert set(payload["combos"][0]["curves"]) == {"static", "adaptive"}

    def test_no_adapt_runs_static_only(self, capsys):
        code = main(
            [
                "overload",
                "--write-paths",
                "gather",
                "--presto",
                "off",
                "--loads",
                "470",
                "--no-adapt",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        curves = payload["combos"][0]["curves"]
        assert "static" in curves and "adaptive" not in curves
        assert payload["combos"][0]["verdict"] is None
