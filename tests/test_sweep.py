"""Tests for the parameter sweep API and its CLI command."""

import pytest

from repro.cli import main
from repro.experiments import TestbedConfig, sweep, sweepable_fields


class TestSweepApi:
    def test_biod_sweep(self):
        results = sweep(
            TestbedConfig(write_path="gather"), "nbiods", [0, 7], file_mb=0.5
        )
        assert len(results) == 2
        assert results[1].client_kb_per_sec > results[0].client_kb_per_sec

    def test_interval_ms_derived_field(self):
        results = sweep(
            TestbedConfig(write_path="gather", nbiods=7),
            "interval_ms",
            [0, 5],
            file_mb=0.5,
        )
        assert results[1].mean_batch_size > results[0].mean_batch_size

    def test_presto_mb_derived_field(self):
        results = sweep(
            TestbedConfig(write_path="standard", nbiods=7),
            "presto_mb",
            [0, 1],
            file_mb=0.5,
        )
        assert results[1].client_kb_per_sec > 2 * results[0].client_kb_per_sec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            sweep(TestbedConfig(), "warp_factor", [1])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep(TestbedConfig(), "nbiods", [])

    def test_sweepable_fields_lists_derived(self):
        fields = sweepable_fields()
        assert "interval_ms" in fields
        assert "presto_mb" in fields
        assert "nbiods" in fields
        assert "netspec" not in fields  # not scalar-sweepable


class TestSweepCli:
    def test_cli_sweep(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "nbiods",
                    "0",
                    "3",
                    "--write-path",
                    "gather",
                    "--file-mb",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "nbiods" in out
        assert "KB/s" in out

    def test_cli_sweep_bad_field(self, capsys):
        assert main(["sweep", "nonsense", "1"]) == 2
