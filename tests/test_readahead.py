"""Tests for client read-ahead through biods (§4.1)."""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsClient
from repro.rpc import RpcClient
from repro.workload import patterned_chunk, write_file

KB = 1024


def make_bed(read_ahead=True, nbiods=4):
    config = TestbedConfig(netspec=FDDI, write_path="standard", nbiods=nbiods)
    testbed = Testbed(config)
    endpoint = testbed.segment.attach("reader")
    rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
    client = NfsClient(testbed.env, rpc, nbiods=nbiods, read_ahead=read_ahead)
    return testbed, client


def write_then_read(testbed, client, file_kb=128, drop_cache=True):
    env = testbed.env

    def driver(env):
        yield from write_file(env, client, "r", file_kb * KB)
        if drop_cache:
            testbed.server.ufs.cache.drop_clean()
        handle = yield from client.open("r")
        collected = b""
        offset = 0
        start = env.now
        while offset < file_kb * KB:
            _fattr, data = yield from client.read(handle, offset, 8 * KB)
            collected += data
            offset += 8 * KB
        return collected, env.now - start

    proc = env.process(driver(env))
    env.run(until=proc)
    return proc.value


class TestReadAhead:
    def test_data_correct_with_readahead(self):
        testbed, client = make_bed(read_ahead=True)
        collected, _elapsed = write_then_read(testbed, client)
        expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(16))
        assert collected == expected

    def test_sequential_reads_faster_with_readahead(self):
        """From a warm server cache the read path is round-trip bound, and
        pipelined prefetches overlap those round trips.  (From a cold cache
        the single spindle is the limit and read-ahead only hides the wire
        time — also checked, loosely.)"""
        testbed_on, client_on = make_bed(read_ahead=True)
        _data, warm_with = write_then_read(testbed_on, client_on, drop_cache=False)
        testbed_off, client_off = make_bed(read_ahead=False)
        _data, warm_without = write_then_read(testbed_off, client_off, drop_cache=False)
        assert warm_with < 0.7 * warm_without
        assert client_on.readahead_hits.value > 5
        assert client_off.readahead_hits.value == 0

        testbed_on, client_on = make_bed(read_ahead=True)
        _data, cold_with = write_then_read(testbed_on, client_on, drop_cache=True)
        testbed_off, client_off = make_bed(read_ahead=False)
        _data, cold_without = write_then_read(testbed_off, client_off, drop_cache=True)
        assert cold_with < cold_without  # still a (smaller) win

    def test_prefetch_stops_at_eof(self):
        testbed, client = make_bed(read_ahead=True)
        env = testbed.env

        def driver(env):
            yield from write_file(env, client, "tiny", 16 * KB)
            handle = yield from client.open("tiny")
            yield from client.read(handle, 0, 8 * KB)
            yield from client.read(handle, 8 * KB, 8 * KB)
            return handle

        proc = env.process(driver(env))
        env.run(until=proc)
        env.run()
        # No prefetch should remain pending past EOF.
        assert all(ev.triggered for ev in proc.value.prefetched.values())
        assert testbed.server.ops_completed["read"].value <= 3

    def test_random_reads_do_not_prefetch(self):
        testbed, client = make_bed(read_ahead=True)
        env = testbed.env

        def driver(env):
            yield from write_file(env, client, "rnd", 64 * KB)
            handle = yield from client.open("rnd")
            for offset in (40 * KB, 8 * KB, 56 * KB):
                yield from client.read(handle, offset, 8 * KB)
            return handle

        proc = env.process(driver(env))
        env.run(until=proc)
        assert client.readahead_hits.value == 0

    def test_no_biods_disables_prefetch(self):
        testbed, client = make_bed(read_ahead=True, nbiods=0)
        collected, _elapsed = write_then_read(testbed, client, file_kb=32)
        assert len(collected) == 32 * KB
        assert client.readahead_hits.value == 0
