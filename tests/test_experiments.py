"""Tests for the experiment harness: testbed, filecopy, tables, trace,
LADDIS curves, and report rendering."""

import pytest

from repro.experiments import (
    PAPER,
    TABLES,
    Testbed,
    TestbedConfig,
    build_testbed,
    figure1,
    render_timeline,
    run_curve,
    run_filecopy,
    run_table,
    trace_filecopy,
)
from repro.experiments.laddis_curves import CurvePoint, LaddisCurve
from repro.metrics import format_comparison, format_paper_table
from repro.net import ETHERNET, FDDI


class TestTestbed:
    def test_build_with_clients(self):
        testbed = build_testbed(TestbedConfig(netspec=ETHERNET), clients=2)
        assert len(testbed.clients) == 2
        assert testbed.server.config.nfsds == 8

    def test_variant_copies_config(self):
        config = TestbedConfig(nbiods=3)
        changed = config.variant(nbiods=9, write_path="gather")
        assert (config.nbiods, changed.nbiods) == (3, 9)
        assert changed.write_path == "gather"

    def test_presto_and_stripes_assembled(self):
        config = TestbedConfig(presto_bytes=1 << 20, stripes=3)
        testbed = Testbed(config)
        assert len(testbed.disks) == 3
        assert getattr(testbed.storage, "is_accelerated", False)
        assert testbed.server.ufs.is_accelerated


class TestFileCopy:
    def test_metrics_populated(self):
        metrics = run_filecopy(
            TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7), file_mb=1
        )
        assert metrics.client_kb_per_sec > 0
        assert 0 <= metrics.server_cpu_pct <= 100
        assert metrics.disk_kb_per_sec > 0
        assert metrics.disk_trans_per_sec > 0
        assert metrics.mean_batch_size > 1
        assert "gather" in metrics.label

    def test_standard_has_no_gather_stats(self):
        metrics = run_filecopy(TestbedConfig(netspec=FDDI), file_mb=0.5)
        assert metrics.mean_batch_size is None

    def test_row_shape_matches_paper(self):
        metrics = run_filecopy(TestbedConfig(netspec=FDDI), file_mb=0.5)
        row = metrics.row()
        assert set(row) == {
            "client write speed (KB/sec.)",
            "server cpu util. (%)",
            "server disk (KB/sec)",
            "server disk (trans/sec)",
        }

    def test_deterministic(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7)
        a = run_filecopy(config, file_mb=1)
        b = run_filecopy(config, file_mb=1)
        assert a.client_kb_per_sec == b.client_kb_per_sec


class TestTableSpecs:
    def test_all_six_tables_defined(self):
        assert sorted(TABLES) == [1, 2, 3, 4, 5, 6]

    def test_paper_values_complete(self):
        for number, spec in TABLES.items():
            for variant in ("std", "gather"):
                for row in ("speed", "cpu", "disk_kbs", "disk_tps"):
                    values = PAPER[number][variant][row]
                    assert len(values) == len(spec.biods), (number, variant, row)

    def test_presto_tables_marked(self):
        assert TABLES[1].presto_bytes is None
        assert TABLES[2].presto_bytes
        assert TABLES[5].stripes == 3

    def test_run_table_small_scale(self):
        result = run_table(1, file_mb=0.5)
        assert len(result.standard) == len(TABLES[1].biods)
        assert len(result.gathering) == len(TABLES[1].biods)
        rendered = result.render()
        assert "Without Write Gathering" in rendered
        assert "client write speed (KB/sec.)" in rendered
        speeds = result.series("gather", "speed")
        assert len(speeds) == len(TABLES[1].biods)


class TestTrace:
    def test_events_recorded_in_order(self):
        events = trace_filecopy("gather", file_kb=64)
        times = [e.time_ms for e in events]
        assert times == sorted(times)
        actors = {e.actor for e in events}
        assert actors == {"client", "disk"}

    def test_figure1_summary_shows_gathering_signature(self):
        sides = figure1(file_kb=192)
        standard = sides["standard"]
        gathering = sides["gathering"]
        # The standard server needs >= 2 disk ops per write; the gatherer
        # must do strictly fewer disk transactions per write in the window.
        assert standard["disk_transactions"] >= 2 * max(1, standard["writes"]) * 0.8
        per_write_std = standard["disk_transactions"] / max(1, standard["writes"])
        per_write_gat = gathering["disk_transactions"] / max(1, gathering["writes"])
        assert per_write_gat < per_write_std
        assert "time(ms)" in gathering["rendered"]

    def test_render_timeline_window(self):
        events = trace_filecopy("standard", file_kb=64)
        text = render_timeline(events, start_ms=0, end_ms=50)
        assert "client" in text

    def test_timeline_svg_valid(self):
        import xml.etree.ElementTree as ET

        from repro.experiments.trace import render_timeline_svg

        sides = figure1(file_kb=128)
        svg = render_timeline_svg(
            sides["standard"]["window"], sides["gathering"]["window"]
        )
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "Gathering server" in svg
        assert svg.count("<circle") > 10


class TestLaddisCurve:
    def test_capacity_respects_latency_bound(self):
        curve = LaddisCurve(write_path="standard", presto=False)
        curve.points = [
            CurvePoint(100, 98, 10.0),
            CurvePoint(200, 190, 45.0),
            CurvePoint(300, 240, 80.0),
        ]
        assert curve.capacity() == 190

    def test_latency_interpolation(self):
        curve = LaddisCurve(write_path="standard", presto=False)
        curve.points = [CurvePoint(100, 100, 10.0), CurvePoint(200, 200, 30.0)]
        assert curve.latency_at(150) == pytest.approx(20.0)
        assert curve.latency_at(500) is None

    def test_run_curve_small(self):
        curve = run_curve(
            "gather",
            loads=(80.0,),
            duration=1.5,
            warmup=0.3,
            stripes=4,
            nfsds=8,
            clients=2,
            procs_per_client=2,
        )
        assert len(curve.points) == 1
        point = curve.points[0]
        assert 40 < point.achieved < 120
        assert point.latency_ms > 0


class TestReports:
    def test_format_paper_table(self):
        cells = [
            {
                "client write speed (KB/sec.)": 100 + i,
                "server cpu util. (%)": 10,
                "server disk (KB/sec)": 500,
                "server disk (trans/sec)": 70,
            }
            for i in range(3)
        ]
        text = format_paper_table("Table X", [0, 3, 7], cells, cells)
        assert "Table X" in text
        assert "With Write Gathering" in text
        assert "102" in text

    def test_format_comparison(self):
        text = format_comparison("speed", [0, 3], [100.0, 200.0], [110, 190])
        assert "x0.91" in text
        assert "x1.05" in text

    def test_format_comparison_without_paper(self):
        text = format_comparison("speed", [0], [123.0], None)
        assert "123" in text
