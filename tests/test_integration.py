"""End-to-end integration tests: full client/server stack over the network.

These exercise the paper's correctness claims: the crash-recovery contract
(stable storage before reply), exactly-one-reply semantics under duplicates
and gathering, shared mtimes within a gathered batch, FIFO reply order, and
data integrity through every server variant.
"""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.core import GatherPolicy
from repro.net import ETHERNET, FDDI
from repro.nfs import NfsError, WriteArgs, call_size, reply_size
from repro.workload import patterned_chunk, write_file, write_random

KB = 1024
MB = 1024 * 1024


def run_copy(config, file_kb=256, **kwargs):
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", file_kb * KB, **kwargs))
    env.run(until=proc)
    return testbed, client, proc.value


class TestDataIntegrity:
    @pytest.mark.parametrize("write_path", ["standard", "gather", "siva"])
    def test_file_contents_survive_the_stack(self, write_path):
        config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=4)
        testbed, client, _elapsed = run_copy(config, file_kb=128)
        env = testbed.env

        def reader(env):
            handle = yield from client.open("f")
            collected = b""
            offset = 0
            while offset < 128 * KB:
                _fattr, data = yield from client.read(handle, offset, 8 * KB)
                collected += data
                offset += 8 * KB
            return collected

        proc = env.process(reader(env))
        env.run(until=proc)
        expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(16))
        assert proc.value == expected

    @pytest.mark.parametrize("presto", [False, True])
    def test_gathered_file_is_durable_after_close(self, presto):
        config = TestbedConfig(
            netspec=FDDI,
            write_path="gather",
            nbiods=7,
            presto_bytes=1 * MB if presto else None,
        )
        testbed, _client, _elapsed = run_copy(config, file_kb=256)
        ufs = testbed.server.ufs
        ino = ufs.root.entries["f"]
        durable = ufs.durable_read(ino, 0, 256 * KB)
        expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(32))
        assert durable == expected


class TestStableStorageInvariant:
    @pytest.mark.parametrize("write_path", ["standard", "gather", "siva"])
    @pytest.mark.parametrize("presto", [False, True])
    def test_no_reply_before_stable_commit(self, write_path, presto):
        """The paper's core contract: every replied byte range (and its
        covering metadata) is on stable storage at reply time."""
        config = TestbedConfig(
            netspec=ETHERNET,
            write_path=write_path,
            nbiods=7,
            presto_bytes=1 * MB if presto else None,
            verify_stable=True,
        )
        testbed, _client, _elapsed = run_copy(config, file_kb=256)
        assert testbed.server.stable_violations == []

    def test_invariant_holds_under_random_access(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7, verify_stable=True)
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_random(env, client, "r", 512 * KB, writes=64))
        env.run(until=proc)
        assert testbed.server.stable_violations == []


class TestGatheringSemantics:
    def drive_concurrent_writes(self, config, nwrites=8):
        """Issue nwrites concurrent WRITE RPCs for the same new file and
        return (testbed, list of (reply_order_index, offset, Fattr))."""
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        results = []

        def one_write(open_file, index):
            args = WriteArgs(open_file.fhandle, index * 8 * KB, patterned_chunk(index))
            reply = yield from client.rpc.call(
                "write",
                args,
                size=call_size("write", args),
                reply_size=reply_size("write", args),
                weight="heavy",
            )
            results.append((index, reply.result))

        def driver(env):
            open_file = yield from client.create("burst")
            procs = [
                env.process(one_write(open_file, i)) for i in range(nwrites)
            ]
            for proc in procs:
                yield proc

        env.run(until=env.process(driver(env)))
        return testbed, results

    def test_gathered_replies_share_one_mtime(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=8)
        testbed, results = self.drive_concurrent_writes(config)
        stats = testbed.server.write_path.stats
        assert stats.batches.value >= 1
        # All writes flushed in one batch carry the same file modify time;
        # with a simultaneous burst we expect a single batch.
        mtimes = {fattr.mtime for _index, fattr in results}
        if stats.batches.value == 1:
            assert len(mtimes) == 1
        assert len(mtimes) <= stats.batches.value

    def test_replies_fifo_by_arrival(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=8)
        testbed, results = self.drive_concurrent_writes(config)
        # results appended in reply-arrival order; requests were sent in
        # index order over one NIC, so FIFO means ascending indices within
        # each batch.  With one batch the whole sequence is ascending.
        indices = [index for index, _fattr in results]
        if testbed.server.write_path.stats.batches.value == 1:
            assert indices == sorted(indices)

    def test_lifo_policy_reverses_batch_order(self):
        config = TestbedConfig(
            netspec=FDDI,
            write_path="gather",
            nbiods=8,
            gather_policy=GatherPolicy(reply_order="lifo"),
        )
        testbed, results = self.drive_concurrent_writes(config)
        indices = [index for index, _fattr in results]
        if testbed.server.write_path.stats.batches.value == 1:
            assert indices == sorted(indices, reverse=True)

    def test_exactly_one_reply_per_request(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=8)
        testbed, results = self.drive_concurrent_writes(config, nwrites=12)
        svc = testbed.server.svc
        assert len(results) == 12
        assert svc.replies_sent.value == svc.requests_received.value

    def test_no_descriptors_left_behind(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=8)
        testbed, _results = self.drive_concurrent_writes(config)
        assert testbed.server.write_path.queues.pending_total() == 0

    def test_single_writer_procrastinates_once_then_flushes(self):
        config = TestbedConfig(netspec=ETHERNET, write_path="gather", nbiods=0)
        testbed, _client, _elapsed = run_copy(config, file_kb=64)
        stats = testbed.server.write_path.stats
        assert stats.procrastinations.value >= 8  # one per lonely write
        assert stats.mean_batch_size() == pytest.approx(1.0)
        assert stats.gather_success_rate() == 0.0

    def test_burst_gathers_into_few_batches(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=15)
        testbed, _client, _elapsed = run_copy(config, file_kb=512)
        stats = testbed.server.write_path.stats
        assert stats.mean_batch_size() > 4
        assert stats.gather_success_rate() > 0.8


class TestFaults:
    def test_stale_handle_rejected_with_estale(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather")
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env

        def driver(env):
            open_file = yield from client.create("doomed")
            yield from client.write_stream(open_file, b"x" * 8192)
            yield from client.close(open_file)
            yield from client.remove("doomed")
            try:
                # The write is handed to a biod; sync-on-close surfaces the
                # asynchronous ESTALE (the same path that captures ENOSPC).
                yield from client.write_at(open_file, 0, b"y" * 8192)
                yield from client.close(open_file)
            except NfsError as exc:
                return exc.code
            return None

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value == "ESTALE"

    def test_enospc_surfaces_at_close(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=4)
        testbed = Testbed(config)
        testbed.server.ufs.allocator = type(testbed.server.ufs.allocator)(
            2 * MB, testbed.server.config.block_size
        )
        client = testbed.add_client()
        env = testbed.env

        def driver(env):
            try:
                yield from write_file(env, client, "huge", 8 * MB)
            except NfsError as exc:
                return exc.code
            return None

        proc = env.process(driver(env))
        env.run(until=proc)
        assert proc.value == "ENOSPC"

    def test_lossy_network_completes_without_orphans(self):
        """Frame loss causes retransmissions and duplicates; §6.9 demands
        no orphaned writes and exactly one effective reply per request."""
        config = TestbedConfig(
            netspec=ETHERNET, write_path="gather", nbiods=7, verify_stable=True, seed=3
        )
        testbed = Testbed(config)
        testbed.segment.loss_rate = 0.05
        client = testbed.add_client()
        env = testbed.env
        proc = env.process(write_file(env, client, "lossy", 256 * KB))
        env.run(until=proc)
        assert client.rpc.retransmissions.value > 0
        assert testbed.server.write_path.queues.pending_total() == 0
        assert testbed.server.stable_violations == []
        ufs = testbed.server.ufs
        ino = ufs.root.entries["lossy"]
        expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(32))
        assert ufs.durable_read(ino, 0, 256 * KB) == expected


class TestMultipleClients:
    def test_concurrent_clients_separate_files(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=4, verify_stable=True)
        testbed = Testbed(config)
        clients = [testbed.add_client() for _ in range(3)]
        env = testbed.env
        procs = [
            env.process(write_file(env, client, f"file-{i}", 128 * KB))
            for i, client in enumerate(clients)
        ]

        def waiter(env):
            for proc in procs:
                yield proc

        env.run(until=env.process(waiter(env)))
        assert testbed.server.stable_violations == []
        ufs = testbed.server.ufs
        for i in range(3):
            ino = ufs.root.entries[f"file-{i}"]
            assert ufs.durable_read(ino, 0, 128 * KB) is not None
