"""Tests for the SYMLINK / READLINK / RENAME procedures end to end."""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsError


def make_bed():
    testbed = Testbed(TestbedConfig(netspec=FDDI, write_path="gather"))
    return testbed, testbed.add_client()


def run(testbed, generator):
    proc = testbed.env.process(generator)
    testbed.env.run(until=proc)
    return proc.value


class TestSymlinks:
    def test_symlink_and_readlink(self):
        testbed, client = make_bed()

        def driver():
            open_file = yield from client.create("target")
            yield from client.close(open_file)
            fhandle, fattr = yield from client.symlink("alias", "target")
            target = yield from client.readlink(fhandle)
            return fattr.ftype, target

        ftype, target = run(testbed, driver())
        assert ftype == "symlink"
        assert target == "target"

    def test_readlink_on_regular_file_rejected(self):
        testbed, client = make_bed()

        def driver():
            open_file = yield from client.create("plain")
            yield from client.close(open_file)
            try:
                yield from client.readlink(open_file.fhandle)
            except NfsError as exc:
                return exc.code

        assert run(testbed, driver()) == "EINVAL"

    def test_duplicate_symlink_rejected(self):
        testbed, client = make_bed()

        def driver():
            yield from client.symlink("dup", "a")
            try:
                yield from client.symlink("dup", "b")
            except NfsError as exc:
                return exc.code

        assert run(testbed, driver()) == "EEXIST"


class TestRename:
    def test_rename_moves_entry(self):
        testbed, client = make_bed()

        def driver():
            open_file = yield from client.create("before")
            yield from client.write_stream(open_file, b"x" * 8192)
            yield from client.close(open_file)
            yield from client.rename("before", "after")
            names = yield from client.readdir()
            fhandle, fattr = yield from client.lookup("after")
            return names, fhandle, open_file.fhandle

        names, new_fhandle, old_fhandle = run(testbed, driver())
        assert names == ["after"]
        assert new_fhandle == old_fhandle  # same file, new name

    def test_rename_replaces_destination(self):
        testbed, client = make_bed()

        def driver():
            a = yield from client.create("a")
            yield from client.close(a)
            b = yield from client.create("b")
            yield from client.write_stream(b, b"y" * 8192)
            yield from client.close(b)
            yield from client.rename("b", "a")
            names = yield from client.readdir()
            fhandle, fattr = yield from client.lookup("a")
            return names, fattr.size

        names, size = run(testbed, driver())
        assert names == ["a"]
        assert size == 8192  # b's content won

    def test_rename_missing_source(self):
        testbed, client = make_bed()

        def driver():
            try:
                yield from client.rename("ghost", "x")
            except NfsError as exc:
                return exc.code

        assert run(testbed, driver()) == "ENOENT"

    def test_rename_is_nonidempotent_in_dup_cache(self):
        from repro.rpc import NONIDEMPOTENT_PROCS

        assert "rename" in NONIDEMPOTENT_PROCS
        assert "symlink" in NONIDEMPOTENT_PROCS
