"""§6.9: the duplicate request cache under retransmit storms.

The gathering write path deliberately *delays* replies (parked writes,
procrastination naps), which widens the window in which an impatient
client retransmits.  The [JUSZ89] cache must hold the line:

* a write parked on the active write queue is ``IN_PROGRESS`` — its
  retransmission is dropped, not re-executed, and the *original* parked
  reply still reaches the client when the batch flushes;
* after a crash the cache is empty (it is volatile state), so the same
  retransmission is legitimately re-executed by the new incarnation and
  answered — exactly the v2 statelessness contract.

Requests are driven over a raw endpoint so xids and retransmission
attempts are under test control.
"""

from repro.experiments import Testbed, TestbedConfig
from repro.fs import fsck
from repro.net import FDDI
from repro.nfs import WriteArgs
from repro.rpc import RpcCall
from repro.workload import write_file

KB = 1024
DATA_A = b"\xa1" * (8 * KB)
DATA_B = b"\xb2" * (8 * KB)


def make_testbed():
    config = TestbedConfig(netspec=FDDI, write_path="gather", verify_stable=True)
    testbed = Testbed(config)
    setup_client = testbed.add_client()
    client_ep = testbed.segment.attach("raw")
    created = {}

    def creator(env):
        open_file = yield from setup_client.create("victim")
        created["fhandle"] = open_file.fhandle

    testbed.env.run(until=testbed.env.process(creator(testbed.env)))
    return testbed, client_ep, created["fhandle"]


def write_call(xid, fhandle, offset, data, attempt=1):
    return RpcCall(
        xid=xid,
        proc="write",
        args=WriteArgs(fhandle, offset, data),
        size=160 + len(data),
        client="raw",
        attempt=attempt,
    )


def collect_replies(env, client_ep):
    """Spawn a collector that appends every reply payload; returns the list.

    The collector blocks forever once traffic stops; the sim kernel drains
    around processes parked on never-triggered events.
    """
    replies = []

    def collector(env):
        while True:
            datagram = yield client_ep.recv()
            replies.append(datagram.payload)

    env.process(collector(env), name="reply-collector")
    return replies


def test_parked_write_retransmission_dropped_reply_still_arrives():
    """W1 parks on the active write queue (W2 is its gathering evidence);
    the retransmission of W1 finds it IN_PROGRESS and is dropped; the
    eventual batch flush still answers both originals exactly once."""
    testbed, client_ep, fhandle = make_testbed()
    env = testbed.env
    replies = collect_replies(env, client_ep)

    def driver(env):
        w1 = write_call(101, fhandle, 0, DATA_A)
        w2 = write_call(102, fhandle, 8 * KB, DATA_B)
        client_ep.send("server", w1, w1.size)
        client_ep.send("server", w2, w2.size)
        # Mid-gather (the FDDI procrastination interval is 5 ms): the
        # "client" gives up early and retransmits W1.
        yield env.timeout(0.002)
        dup = write_call(101, fhandle, 0, DATA_A, attempt=2)
        client_ep.send("server", dup, dup.size)

    env.run(until=env.process(driver(env)))
    env.run()  # drain: flush, replies, watchdogs

    assert sorted(r.xid for r in replies) == [101, 102]
    assert all(r.status == "ok" for r in replies)
    assert testbed.server.svc.duplicates_dropped.value >= 1
    assert testbed.server.svc.duplicates_replayed.value == 0
    # W1 really was parked: a handoff (nfsd- or mbuf-evidence) happened.
    stats = testbed.server.write_path.stats
    assert stats.handoffs_nfsd.value + stats.handoffs_mbuf.value >= 1
    # And the acked data is durable, as every reply promised.
    ufs = testbed.server.ufs
    ino = ufs.root.entries["victim"]
    assert ufs.durable_read(ino, 0, 16 * KB) == DATA_A + DATA_B


def test_retransmit_storm_every_duplicate_dropped():
    """A storm of retransmissions while the original is parked: every one
    is dropped, and the client still gets exactly one reply per xid."""
    testbed, client_ep, fhandle = make_testbed()
    env = testbed.env
    replies = collect_replies(env, client_ep)

    def driver(env):
        w1 = write_call(301, fhandle, 0, DATA_A)
        w2 = write_call(302, fhandle, 8 * KB, DATA_B)
        client_ep.send("server", w1, w1.size)
        client_ep.send("server", w2, w2.size)
        yield env.timeout(0.0015)
        for attempt in range(2, 5):
            dup = write_call(301, fhandle, 0, DATA_A, attempt=attempt)
            client_ep.send("server", dup, dup.size)
            yield env.timeout(0.0005)

    env.run(until=env.process(driver(env)))
    env.run()

    assert sorted(r.xid for r in replies) == [301, 302]
    assert all(r.status == "ok" for r in replies)
    assert testbed.server.svc.duplicates_dropped.value >= 3
    ufs = testbed.server.ufs
    ino = ufs.root.entries["victim"]
    assert ufs.durable_read(ino, 0, 16 * KB) == DATA_A + DATA_B


def test_post_crash_retransmission_is_reexecuted():
    """The cache is volatile: a crash wipes it along with the unanswered
    original, so the retransmission is a *new* request to the new
    incarnation — re-executed, made stable, and answered."""
    testbed, client_ep, fhandle = make_testbed()
    env = testbed.env
    replies = collect_replies(env, client_ep)

    def driver(env):
        w1 = write_call(201, fhandle, 0, DATA_A)
        client_ep.send("server", w1, w1.size)
        # W1 is in its procrastination nap, unanswered, when the server
        # dies; its dup-cache entry and parked descriptor die with it.
        yield env.timeout(0.002)
        testbed.server.simulate_crash()
        dup = write_call(201, fhandle, 0, DATA_A, attempt=2)
        client_ep.send("server", dup, dup.size)

    env.run(until=env.process(driver(env)))
    env.run()

    assert [r.xid for r in replies] == [201]
    assert replies[0].status == "ok"
    # The retransmission was executed, not served from the (wiped) cache.
    assert testbed.server.svc.duplicates_dropped.value == 0
    assert testbed.server.svc.duplicates_replayed.value == 0
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["victim"]
    assert ufs.durable_read(ino, 0, 8 * KB) == DATA_A
    report = fsck(ufs, strict=False)
    assert report.clean, report.errors


def test_storm_during_normal_copy_converges():
    """Duplication injected at the *network* level during an ordinary
    client copy: the dup cache absorbs it and the copy converges."""
    config = TestbedConfig(netspec=FDDI, write_path="gather", verify_stable=True)
    testbed = Testbed(config)
    testbed.segment.set_duplicate_rate(0.3)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 128 * KB))
    env.run(until=proc)
    env.run()
    dup_hits = (
        testbed.server.svc.duplicates_dropped.value
        + testbed.server.svc.duplicates_replayed.value
    )
    assert dup_hits > 0
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    assert len(ufs.durable_read(ino, 0, 128 * KB)) == 128 * KB


def test_adaptive_rto_retransmits_into_parked_write_still_dropped():
    """§6.9 under adaptive retransmission: an AdaptiveRetryPolicy tuned far
    below the gather procrastination interval fires real retransmissions
    while the original writes sit parked IN_PROGRESS.  Every duplicate is
    dropped (never re-executed), each write is acked exactly once, and the
    durable image matches the acks."""
    from repro.overload import AdaptiveRetryPolicy

    config = TestbedConfig(netspec=FDDI, write_path="gather", verify_stable=True)
    testbed = Testbed(config)
    policy = AdaptiveRetryPolicy(
        initial_rto=0.002, min_rto=0.001, max_rto=0.5, jitter=0.0
    )
    client = testbed.add_client(policy=policy)
    env = testbed.env

    proc = env.process(write_file(env, client, "f", 64 * KB))
    env.run(until=proc)
    env.run()

    # The 2 ms RTO genuinely beat the 5 ms procrastination nap.
    assert client.rpc.retransmissions.value >= 1
    assert testbed.server.svc.duplicates_dropped.value >= 1
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    assert len(ufs.durable_read(ino, 0, 64 * KB)) == 64 * KB
    report = fsck(ufs, strict=False)
    assert report.clean, report.errors


def test_karn_keeps_parked_write_latency_out_of_the_estimator():
    """Karn's rule end to end: replies won by retransmitting (the parked
    writes above) never feed the RTO estimator, and a timeout's backoff is
    retained until a clean sample arrives."""
    from repro.overload import AdaptiveRetryPolicy
    from repro.rpc import CLASS_HEAVY

    config = TestbedConfig(netspec=FDDI, write_path="gather", verify_stable=True)
    testbed = Testbed(config)
    policy = AdaptiveRetryPolicy(
        initial_rto=0.002, min_rto=0.001, max_rto=0.5, jitter=0.0
    )
    client = testbed.add_client(policy=policy)
    env = testbed.env

    proc = env.process(write_file(env, client, "f", 64 * KB))
    env.run(until=proc)
    env.run()

    # At least one ambiguous (retransmitted) completion was suppressed...
    assert policy.karn_suppressed >= 1
    # ...so the heavy estimator saw strictly fewer samples than completions.
    heavy = policy.estimator(CLASS_HEAVY)
    assert heavy.samples < client.rpc.completed.value
    # Clean samples did arrive eventually, clearing any retained backoff.
    assert heavy.samples >= 1
    assert heavy.backoff_level == 0
