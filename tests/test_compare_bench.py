"""The bench comparison gate (scripts/compare_bench.py).

The schema rule under test is asymmetric on purpose: a fresh run may
*add* cell fields (new instrumentation lands without forcing a baseline
refresh — tolerated with a note), but may never *drop* one the baseline
has (a vanished metric is a gate that silently stopped gating).
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "compare_bench", REPO / "scripts" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_spec)
sys.modules["compare_bench"] = compare_bench
_spec.loader.exec_module(compare_bench)


def cell(write_path="gather", presto=False, p99=5.0, **extra):
    payload = {
        "write_path": write_path,
        "presto": presto,
        "write_latency_ms": {"p50": 2.0, "p99": p99},
        "sim_ops_per_sec": 1000.0,
        "rpcs_per_op": 1.5,
    }
    payload.update(extra)
    return payload


def report(*cells):
    return {"cells": list(cells)}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def run(tmp_path, baseline, fresh, *extra_args):
    argv = [
        write(tmp_path, "baseline.json", baseline),
        write(tmp_path, "fresh.json", fresh),
        *extra_args,
    ]
    return compare_bench.main(argv)


def test_identical_reports_pass(tmp_path):
    assert run(tmp_path, report(cell()), report(cell())) == 0


def test_added_fields_are_tolerated(tmp_path, capsys):
    fresh = cell(scrub_passes=3, extra_stats={"nested": 1})
    assert run(tmp_path, report(cell()), report(fresh)) == 0
    out = capsys.readouterr().out
    assert "adds field 'scrub_passes' (tolerated)" in out
    assert "adds field 'extra_stats.nested' (tolerated)" in out


def test_removed_top_level_field_fails(tmp_path, capsys):
    fresh = cell()
    del fresh["rpcs_per_op"]
    assert run(tmp_path, report(cell()), report(fresh)) == 1
    err = capsys.readouterr().err
    assert "'rpcs_per_op' present in baseline but missing" in err


def test_removed_nested_field_fails(tmp_path, capsys):
    fresh = cell()
    del fresh["write_latency_ms"]["p50"]
    assert run(tmp_path, report(cell()), report(fresh)) == 1
    err = capsys.readouterr().err
    assert "'write_latency_ms.p50' present in baseline but missing" in err


def test_removed_gating_metric_fails_without_crashing(tmp_path, capsys):
    fresh = cell()
    del fresh["write_latency_ms"]
    assert run(tmp_path, report(cell()), report(fresh)) == 1
    err = capsys.readouterr().err
    assert "'write_latency_ms.p99' present in baseline but missing" in err


def test_latency_regression_still_fails(tmp_path, capsys):
    assert run(tmp_path, report(cell(p99=5.0)), report(cell(p99=25.0))) == 1
    err = capsys.readouterr().err
    assert "p99 write latency regressed" in err


def test_missing_cell_still_fails(tmp_path, capsys):
    baseline = report(cell(), cell(write_path="async"))
    assert run(tmp_path, baseline, report(cell())) == 1
    err = capsys.readouterr().err
    assert "cell missing from fresh run" in err


def test_baseline_lacking_optional_fields_skips_those_gates(tmp_path, capsys):
    baseline_cell = cell()
    del baseline_cell["sim_ops_per_sec"]
    del baseline_cell["rpcs_per_op"]
    # The fresh run *adding* them back is the tolerated direction.
    assert run(tmp_path, report(baseline_cell), report(cell())) == 0
    out = capsys.readouterr().out
    assert "ops/s gate skipped" in out
    assert "rpc/op gate skipped" in out
