"""Property tests for the consistent-hash shard map (repro.cluster.shardmap)."""

import pytest

from repro.cluster.shardmap import ShardMap

SERVERS = ["server-0", "server-1", "server-2", "server-3"]
KEYS = [f"client-{c}-f{i}" for c in range(8) for i in range(25)]


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = ShardMap(SERVERS, vnodes=64, seed=7)
        b = ShardMap(SERVERS, vnodes=64, seed=7)
        assert [a.server_for(k) for k in KEYS] == [b.server_for(k) for k in KEYS]

    def test_placement_independent_of_server_order(self):
        a = ShardMap(SERVERS, vnodes=64, seed=7)
        b = ShardMap(list(reversed(SERVERS)), vnodes=64, seed=7)
        assert [a.server_for(k) for k in KEYS] == [b.server_for(k) for k in KEYS]

    def test_different_seed_moves_keys(self):
        a = ShardMap(SERVERS, vnodes=64, seed=0)
        b = ShardMap(SERVERS, vnodes=64, seed=1)
        moved = sum(a.server_for(k) != b.server_for(k) for k in KEYS)
        assert moved > 0

    def test_placement_is_stable_across_processes(self):
        # blake2b positions, not Python hash(): pin a few absolute
        # placements so hash-randomization regressions are caught.
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        snapshot = {key: shard_map.server_for(key) for key in KEYS[:6]}
        assert snapshot == {
            "client-0-f0": "server-3",
            "client-0-f1": "server-1",
            "client-0-f2": "server-2",
            "client-0-f3": "server-3",
            "client-0-f4": "server-2",
            "client-0-f5": "server-2",
        }


class TestBalance:
    def test_vnodes_spread_load(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        load = shard_map.load(KEYS)
        expected = len(KEYS) / len(SERVERS)
        for server in SERVERS:
            assert load[server] == pytest.approx(expected, rel=0.5)

    def test_more_vnodes_balance_better(self):
        def spread(vnodes):
            load = ShardMap(SERVERS, vnodes=vnodes, seed=0).load(KEYS)
            return max(load.values()) - min(load.values())

        assert spread(128) <= spread(4)

    def test_every_server_serves_some_keys(self):
        shard_map = ShardMap(SERVERS, vnodes=32, seed=3)
        assignments = shard_map.assignments(KEYS)
        assert set(assignments.values()) == set(SERVERS)
        assert shard_map.describe()["ring_points"] == 32 * len(SERVERS)


class TestMinimalMovement:
    def test_add_server_only_moves_keys_to_it(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.add_server("server-4")
        for key in KEYS:
            after = shard_map.server_for(key)
            if after != before[key]:
                assert after == "server-4"

    def test_remove_server_only_moves_its_keys(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.remove_server("server-2")
        for key in KEYS:
            if before[key] != "server-2":
                assert shard_map.server_for(key) == before[key]

    def test_remove_then_add_restores_placement(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.remove_server("server-1")
        shard_map.add_server("server-1")
        assert {k: shard_map.server_for(k) for k in KEYS} == before

    def test_add_moves_roughly_one_over_n(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.add_server("server-4")
        moved = sum(shard_map.server_for(k) != before[k] for k in KEYS)
        # Ideal is len(KEYS)/5 = 40; allow generous slack but far less
        # than a full reshuffle (which would move ~4/5 of the keys).
        assert 0 < moved < len(KEYS) / 2

    def test_cannot_remove_last_server(self):
        shard_map = ShardMap(["only"], vnodes=8, seed=0)
        with pytest.raises(ValueError):
            shard_map.remove_server("only")

    def test_duplicate_add_rejected(self):
        shard_map = ShardMap(SERVERS, vnodes=8, seed=0)
        with pytest.raises(ValueError):
            shard_map.add_server("server-0")


class TestCapacityWeights:
    """Capacity-weighted vnodes (repro.tiering, satellite of the mixed
    hot/cold fleet): ring-point counts scale with weight, and a reweight
    moves only keys into or out of the reweighted server's own arcs."""

    def test_vnode_count_scales_with_weight(self):
        shard_map = ShardMap(
            SERVERS, vnodes=64, seed=0, weights={"server-0": 2.0, "server-1": 0.5}
        )
        assert shard_map.vnode_count("server-0") == 128
        assert shard_map.vnode_count("server-1") == 32
        assert shard_map.vnode_count("server-2") == 64

    def test_heavier_server_takes_proportional_load(self):
        shard_map = ShardMap(SERVERS, vnodes=128, seed=0, weights={"server-0": 3.0})
        load = shard_map.load(KEYS)
        # server-0 has weight 3 of a total 6: expect ~half the keys.
        assert load["server-0"] == pytest.approx(len(KEYS) / 2, rel=0.4)
        assert load["server-0"] > max(load[s] for s in SERVERS[1:])

    def test_weights_are_deterministic(self):
        weights = {"server-0": 2.0, "server-3": 0.5}
        a = ShardMap(SERVERS, vnodes=64, seed=5, weights=weights)
        b = ShardMap(SERVERS, vnodes=64, seed=5, weights=weights)
        assert [a.server_for(k) for k in KEYS] == [b.server_for(k) for k in KEYS]

    def test_grow_weight_only_moves_keys_to_that_server(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.set_weight("server-2", 2.0)
        for key in KEYS:
            after = shard_map.server_for(key)
            if after != before[key]:
                assert after == "server-2"

    def test_shrink_weight_only_moves_keys_from_that_server(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.set_weight("server-2", 0.25)
        for key in KEYS:
            if before[key] != "server-2":
                assert shard_map.server_for(key) == before[key]

    def test_reweight_round_trip_restores_placement(self):
        shard_map = ShardMap(SERVERS, vnodes=64, seed=0)
        before = {k: shard_map.server_for(k) for k in KEYS}
        shard_map.set_weight("server-1", 4.0)
        shard_map.set_weight("server-1", 1.0)
        assert {k: shard_map.server_for(k) for k in KEYS} == before

    def test_weight_floor_keeps_at_least_one_point(self):
        shard_map = ShardMap(SERVERS, vnodes=4, seed=0, weights={"server-0": 0.01})
        assert shard_map.vnode_count("server-0") == 1
        assert "server-0" in shard_map

    def test_invalid_weight_rejected(self):
        shard_map = ShardMap(SERVERS, vnodes=8, seed=0)
        with pytest.raises(ValueError):
            shard_map.set_weight("server-0", 0.0)
        with pytest.raises(ValueError):
            shard_map.add_server("server-9", weight=-1.0)

    def test_describe_includes_weights_only_when_set(self):
        plain = ShardMap(SERVERS, vnodes=8, seed=0)
        assert "weights" not in plain.describe()
        weighted = ShardMap(SERVERS, vnodes=8, seed=0, weights={"server-0": 2.0})
        assert weighted.describe()["weights"]["server-0"] == 2.0
