"""Tests for repro.lease: grants, caching, recalls, failover, the oracle."""

import pytest

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.lease import LEASE_WRITE, StalenessOracle
from repro.nfs.cache import NEGATIVE
from repro.nfs.client import NfsError
from repro.sim import Environment
from repro.workload.sequential import patterned_chunk

CHUNK = 8192


def _testbed(ttl=30.0, clients=2, **kw):
    testbed = Testbed(TestbedConfig(lease_ttl=ttl, seed=0, **kw))
    for _ in range(clients):
        testbed.add_client()
    return testbed


def _run(env, gen, name="t"):
    proc = env.process(gen, name=name)
    env.run(until=proc)
    return proc.value


def _rpcs(client) -> float:
    return client.rpcs_per_op.numerator.value


class TestGrants:
    def test_create_grants_write_lease(self):
        testbed = _testbed()
        client = testbed.clients[0]

        def go():
            open_file = yield from client.create("f")
            return open_file

        open_file = _run(testbed.env, go())
        assert client.cache.lease_valid(open_file.fhandle, LEASE_WRITE)

    def test_repeat_lookup_served_from_cache(self):
        testbed = _testbed()
        client = testbed.clients[0]

        def go():
            open_file = yield from client.create("f")
            yield from client.close(open_file)
            yield from client.lookup("f")
            before = _rpcs(client)
            yield from client.lookup("f")
            yield from client.lookup("f")
            return before

        before = _run(testbed.env, go())
        assert _rpcs(client) == before  # no wire traffic for the repeats
        assert client.cache.dirent_hits.value == 2

    def test_negative_lookup_cached_under_dir_lease(self):
        testbed = _testbed()
        client = testbed.clients[0]

        def go():
            with pytest.raises(NfsError):
                yield from client.lookup("missing")
            before = _rpcs(client)
            with pytest.raises(NfsError):
                yield from client.lookup("missing")
            return before

        before = _run(testbed.env, go())
        assert _rpcs(client) == before
        assert client.cache.negative_hits.value == 1

    def test_getattr_and_read_served_from_cache(self):
        testbed = _testbed()
        client = testbed.clients[0]

        def go():
            open_file = yield from client.create("f")
            yield from client.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from client.close(open_file)
            open_file = yield from client.open("f")
            yield from client.read(open_file, 0, CHUNK)
            before = _rpcs(client)
            yield from client.getattr(open_file.fhandle)
            fattr, data = yield from client.read(open_file, 0, CHUNK)
            return before, data

        before, data = _run(testbed.env, go())
        assert _rpcs(client) == before
        assert client.cache.attr_hits.value >= 1
        assert client.cache.data_hits.value >= 1
        assert data == patterned_chunk(0, CHUNK)

    def test_grants_ride_error_replies(self):
        # An ENOENT lookup still grants the directory lease (it is what
        # makes the negative entry servable at all).
        testbed = _testbed()
        client = testbed.clients[0]

        def go():
            with pytest.raises(NfsError):
                yield from client.lookup("nope")

        _run(testbed.env, go())
        assert client.cache.held_leases()  # the dir read lease arrived


class TestWriteBack:
    def test_full_blocks_deferred_then_flushed_at_close(self):
        testbed = _testbed()
        client = testbed.clients[0]
        env = testbed.env

        def go():
            open_file = yield from client.create("f")
            yield from client.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from client.write_stream(open_file, patterned_chunk(1, CHUNK))
            deferred = client.cache.deferred_writes.value
            server_writes = testbed.server.ops_completed["write"].value
            yield from client.close(open_file)
            return deferred, server_writes

        deferred, server_writes_before_close = _run(env, go())
        assert deferred == 2
        assert server_writes_before_close == 0  # nothing hit the wire yet
        env.run()
        assert testbed.server.ops_completed["write"].value == 2
        assert client.cache.flushed_blocks.value == 2

    def test_no_write_lease_means_write_through(self):
        # Opening an existing file grants only a read lease: writes must
        # not be absorbed.
        testbed = _testbed()
        c0, c1 = testbed.clients

        def setup():
            open_file = yield from c0.create("f")
            yield from c0.close(open_file)

        def go():
            open_file = yield from c1.open("f")
            yield from c1.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from c1.close(open_file)

        _run(testbed.env, setup())
        _run(testbed.env, go())
        assert c1.cache.deferred_writes.value == 0
        assert testbed.server.ops_completed["write"].value == 1


class TestRecall:
    def test_conflicting_write_recalls_and_flushes_holder(self):
        testbed = _testbed()
        c0, c1 = testbed.clients
        env = testbed.env
        oracle = StalenessOracle(env)
        oracle.attach_testbed(testbed)

        def holder():
            open_file = yield from c0.create("hot")
            yield from c0.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from c0.write_stream(open_file, patterned_chunk(1, CHUNK))
            yield env.timeout(1.0)
            yield from c0.close(open_file)
            return open_file

        def writer():
            yield env.timeout(0.1)
            open_file = yield from c1.open("hot")
            yield from c1.write_stream(open_file, patterned_chunk(9, CHUNK))
            yield from c1.close(open_file)

        hold = env.process(holder(), name="holder")
        write = env.process(writer(), name="writer")
        env.run(until=write)
        env.run(until=hold)
        env.run()
        manager = testbed.server.leases
        assert manager.recalls_sent.value >= 1
        assert manager.recall_acks.value >= 1
        assert c0.cache.recalls_served.value >= 1
        # The recall flushed the holder's dirty set before the writer ran.
        assert c0.cache.flushed_blocks.value == 2
        assert oracle.clean, oracle.violations

    def test_negative_dirent_invalidated_by_remote_create(self):
        # c0 caches "newfile does not exist"; c1 then creates it.  The
        # create must recall c0's dir lease so c0's next lookup sees it.
        testbed = _testbed()
        c0, c1 = testbed.clients
        env = testbed.env
        oracle = StalenessOracle(env)
        oracle.attach_testbed(testbed)

        def go():
            with pytest.raises(NfsError):
                yield from c0.lookup("newfile")
            assert c0.cache.dirent_hit(c0.root_fhandle, "newfile") is NEGATIVE
            open_file = yield from c1.create("newfile")
            yield from c1.close(open_file)
            # The negative entry is gone with the recalled dir lease...
            assert c0.cache.dirent_hit(c0.root_fhandle, "newfile") is None
            # ...and the lookup now goes to the server and succeeds.
            fhandle, fattr = yield from c0.lookup("newfile")
            return fhandle

        fhandle = _run(env, go())
        assert fhandle is not None
        assert oracle.clean, oracle.violations

    def test_ttl_expiry_during_partition_unblocks_writer(self):
        # The recall can never reach the partitioned holder: the writer
        # must proceed at lease expiry, not hang, and the holder must not
        # serve another hit once its lease lapses.
        ttl = 2.0
        testbed = _testbed(ttl=ttl)
        c0, c1 = testbed.clients
        env = testbed.env
        oracle = StalenessOracle(env)
        oracle.attach_testbed(testbed)

        def holder():
            open_file = yield from c0.create("hot")
            yield from c0.write_stream(open_file, patterned_chunk(0, CHUNK))
            testbed.segment.partition("client-0")
            yield env.timeout(4.0)
            testbed.segment.heal("client-0")
            yield from c0.close(open_file)

        def writer():
            yield env.timeout(0.2)
            open_file = yield from c1.open("hot")
            yield from c1.write_stream(open_file, patterned_chunk(9, CHUNK))
            yield from c1.close(open_file)
            return env.now

        hold = env.process(holder(), name="holder")
        write = env.process(writer(), name="writer")
        env.run(until=write)
        done_at = write.value
        env.run(until=hold)
        env.run()
        manager = testbed.server.leases
        assert manager.recall_expirations.value == 1
        # Blocked until the holder's lease (granted ~t=0) expired.
        assert ttl <= done_at < ttl + 1.0
        assert oracle.clean, oracle.violations

    def test_recall_racing_retransmitted_write_hits_dup_cache(self):
        # The writer's WRITE stalls on a recall that must wait out the
        # partitioned holder's TTL (2 s) — past the client's RTO — so the
        # same xid is retransmitted into the server's dup-cache while the
        # original is still executing.  Exactly one write may apply.
        ttl = 2.0
        testbed = _testbed(ttl=ttl)
        c0, c1 = testbed.clients
        env = testbed.env
        oracle = StalenessOracle(env)
        oracle.attach_testbed(testbed)

        def holder():
            open_file = yield from c0.create("hot")
            yield from c0.write_stream(open_file, patterned_chunk(0, CHUNK))
            testbed.segment.partition("client-0")
            yield env.timeout(4.0)
            testbed.segment.heal("client-0")
            yield from c0.close(open_file)

        def writer():
            yield env.timeout(0.2)
            open_file = yield from c1.open("hot")
            yield from c1.write_stream(open_file, patterned_chunk(9, CHUNK))
            yield from c1.close(open_file)

        hold = env.process(holder(), name="holder")
        write = env.process(writer(), name="writer")
        env.run(until=write)
        env.run(until=hold)
        env.run()
        svc = testbed.server.svc
        assert c1.rpc.retransmissions.value >= 1
        assert (
            svc.duplicates_dropped.value + svc.duplicates_replayed.value >= 1
        )
        # One application write (plus the healed holder's late flush).
        assert testbed.server.ops_completed["write"].value == 2
        assert oracle.clean, oracle.violations


class TestCoverageGap:
    def test_entry_from_expired_lease_not_served_under_new_lease(self):
        # c0's dir lease lapses; c1 removes a file (no recall needed); a
        # later lookup of a *different* name re-grants c0 the dir lease.
        # The pre-gap positive dirent must not ride back in under it.
        ttl = 1.0
        testbed = _testbed(ttl=ttl)
        c0, c1 = testbed.clients
        env = testbed.env
        oracle = StalenessOracle(env)
        oracle.attach_testbed(testbed)

        def go():
            for name in ("a", "b"):
                open_file = yield from c1.create(name)
                yield from c1.close(open_file)
            yield from c0.lookup("a")  # cached under the dir lease
            yield env.timeout(1.5)  # the lease lapses
            yield from c1.remove("a")  # no conflict: c0's lease expired
            yield from c0.lookup("b")  # fresh dir lease, coverage gap behind it
            with pytest.raises(NfsError):
                yield from c0.lookup("a")

        _run(env, go())
        env.run()
        assert oracle.clean, oracle.violations


class TestClusterFailover:
    def test_promotion_reregisters_leases_via_reroute(self):
        # A call in flight during the promotion repoint discovers the new
        # primary via re-resolve; the cache stack must re-register its
        # leases with it (whose table started empty).
        from repro.cluster import ClusterConfig, ShardCrash, build_cluster
        from repro.cluster.failover import FailoverController

        config = ClusterConfig(
            servers=2, replicas=1, quorum=1, lease_ttl=30.0, seed=1
        )
        cluster = build_cluster(config, clients=1)
        client = cluster.clients[0]
        env = cluster.env
        victim = cluster.servers[0].host
        name = next(
            f"file-{i}"
            for i in range(32)
            if cluster.shard_map.server_for(f"file-{i}") == victim
        )

        def setup():
            open_file = yield from client.create(name)
            yield from client.write_stream(open_file, patterned_chunk(0, CHUNK))
            yield from client.close(open_file)

        _run(env, setup())
        held_before = dict(client.cache.held_leases())
        assert held_before  # the write lease from create is still live

        def probe():
            yield env.timeout(4.5 - env.now)
            yield from client.lookup(name)

        FailoverController(
            cluster, [ShardCrash(at=4.5002, shard=0, promote=True)]
        ).start()
        proc = env.process(probe(), name="probe")
        env.run(until=proc)
        env.run()
        assert client.cache.reregistrations.value >= 1
        promoted = cluster.groups[0].primary
        assert promoted.host != victim
        assert promoted.leases.granted.value >= 1

    def test_promoted_backup_opens_grace_window(self):
        from repro.cluster import ClusterConfig, ShardCrash, build_cluster
        from repro.cluster.failover import FailoverController

        config = ClusterConfig(
            servers=2, replicas=1, quorum=1, lease_ttl=5.0, seed=1
        )
        cluster = build_cluster(config, clients=1)
        env = cluster.env
        FailoverController(
            cluster, [ShardCrash(at=1.0, shard=0, promote=True)]
        ).start()
        env.run(until=env.timeout(2.0))
        promoted = cluster.groups[0].primary
        assert promoted.leases.grace_until == pytest.approx(1.0 + 5.0)


class TestOracleUnit:
    def test_flags_stale_hit_by_other_client(self):
        env = Environment()
        oracle = StalenessOracle(env)
        key = (7, 0)
        oracle._on_mutate(key, "client-1")
        oracle._on_hit("client-0", "attr", key, fetched_at=-1.0, dirty=False)
        assert not oracle.clean
        assert "stale attr hit" in oracle.violations[0]

    def test_ignores_own_mutations_and_dirty_hits(self):
        env = Environment()
        oracle = StalenessOracle(env)
        key = (7, 0)
        oracle._on_mutate(key, "client-0")
        oracle._on_hit("client-0", "attr", key, fetched_at=-1.0, dirty=False)
        oracle._on_hit("client-1", "data", key, fetched_at=-1.0, dirty=True)
        assert oracle.clean

    def test_check_raises_with_label(self):
        env = Environment()
        oracle = StalenessOracle(env)
        oracle.violations.append("synthetic")
        with pytest.raises(AssertionError, match="final"):
            oracle.check("final")


class TestExperiment:
    @staticmethod
    def _tiny(chaos=False, **kw):
        from repro.lease.experiment import CacheConfig

        return CacheConfig(
            lease_ttls=(1.0,),
            sharing_ratios=(0.9,),
            clients=2,
            ops_per_client=8,
            workloads=("copy",),
            chaos=chaos,
            **kw,
        )

    def test_seeded_rerun_is_byte_identical(self):
        from repro.lease.experiment import _run_cache

        first = _run_cache(self._tiny(seed=3))
        second = _run_cache(self._tiny(seed=3))
        assert first.to_json() == second.to_json()

    def test_leases_reduce_rpcs_on_shared_reads(self):
        from repro.lease.experiment import _run_cache

        report = _run_cache(self._tiny())
        cell = report.headline
        assert cell is not None
        assert cell["reduction"] > 1.0
        assert report.clean, report.violations

    def test_chaos_probes_are_clean(self):
        from repro.lease.experiment import CacheConfig, _run_cache

        config = CacheConfig(
            lease_ttls=(1.0,),
            sharing_ratios=(0.9,),
            clients=2,
            ops_per_client=4,
            workloads=(),
            chaos=True,
        )
        report = _run_cache(config)
        assert len(report.probes) == 3
        for probe in report.probes:
            assert probe["clean"], (probe["name"], probe)
        # Each probe proves its adversity actually happened.
        by_name = {probe["name"]: probe for probe in report.probes}
        assert by_name["crash_mid_recall"]["leases"]["grace_delays"] >= 1
        assert by_name["lost_callback"]["leases"]["recall_expirations"] >= 1
        assert by_name["partition_expiry"]["leases"]["recall_expirations"] >= 1

    def test_headline_defaults_to_axis_top(self):
        from repro.lease.experiment import CacheConfig

        config = CacheConfig(lease_ttls=(2.0, 8.0), sharing_ratios=(0.1, 0.7))
        assert config.headline_ttl == 8.0
        assert config.headline_sharing == 0.7
        with pytest.raises(ValueError):
            CacheConfig(lease_ttls=(2.0,), headline_ttl=9.0)

    def test_cli_smoke(self, capsys):
        import json

        from repro.cli import main

        status = main(
            [
                "cache",
                "--ttls",
                "30",
                "--sharing",
                "0.9",
                "--clients",
                "3",
                "--ops",
                "20",
                "--no-chaos",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert status == 0
        assert report["clean"] is True
        assert report["headline"]["meets_target"] is True
        assert report["grid"]
