"""Tests for the MOUNT protocol (mountd)."""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsError
from repro.workload import write_file

KB = 1024


def make_bed():
    testbed = Testbed(TestbedConfig(netspec=FDDI, write_path="gather"))
    return testbed, testbed.add_client()


def run(testbed, generator):
    proc = testbed.env.process(generator)
    testbed.env.run(until=proc)
    return proc.value


def test_mount_returns_root_handle():
    testbed, client = make_bed()

    def driver():
        fhandle = yield from client.mount("/export")
        return fhandle

    fhandle = run(testbed, driver())
    assert fhandle == testbed.server.vnodes.root.fhandle
    assert client.root_fhandle == fhandle


def test_mount_then_full_workload():
    testbed, client = make_bed()

    def driver():
        yield from client.mount("/export")
        yield from write_file(testbed.env, client, "after-mount", 64 * KB)
        yield from client.umount("/export")

    run(testbed, driver())
    ufs = testbed.server.ufs
    assert ufs.inodes[ufs.root.entries["after-mount"]].size == 64 * KB


def test_unexported_path_rejected():
    testbed, client = make_bed()

    def driver():
        try:
            yield from client.mount("/secret")
        except NfsError as exc:
            return exc.code

    assert run(testbed, driver()) == "EACCES"


def test_custom_export_list():
    from repro.server import ServerConfig

    config = ServerConfig(exports=("/export", "/scratch"))
    assert "/scratch" in config.exports
