"""Simulation determinism, pinned end to end.

The kernel guarantees identical traces for identical inputs; these tests
pin that guarantee at full-stack scale (so any accidental use of global
randomness, wall-clock time, or dict-ordering-dependent behaviour breaks
loudly) and check that seeds actually change what they should.
"""

from repro.experiments import TestbedConfig, run_filecopy, run_table
from repro.net import ETHERNET, FDDI


class TestBitwiseRepeatability:
    def test_filecopy_identical_across_runs(self):
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7)
        a = run_filecopy(config, file_mb=1)
        b = run_filecopy(config, file_mb=1)
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.client_kb_per_sec == b.client_kb_per_sec
        assert a.server_cpu_pct == b.server_cpu_pct
        assert a.disk_trans_per_sec == b.disk_trans_per_sec

    def test_all_write_paths_repeatable(self):
        for write_path in ("standard", "gather", "siva"):
            config = TestbedConfig(netspec=ETHERNET, write_path=write_path, nbiods=4)
            a = run_filecopy(config, file_mb=0.5)
            b = run_filecopy(config, file_mb=0.5)
            assert a.elapsed_seconds == b.elapsed_seconds, write_path

    def test_presto_and_stripes_repeatable(self):
        config = TestbedConfig(
            netspec=FDDI, write_path="gather", nbiods=7, presto_bytes=1 << 20, stripes=3
        )
        a = run_filecopy(config, file_mb=1)
        b = run_filecopy(config, file_mb=1)
        assert a.elapsed_seconds == b.elapsed_seconds

    def test_table_cells_repeatable(self):
        a = run_table(1, file_mb=0.25)
        b = run_table(1, file_mb=0.25)
        assert a.series("gather", "speed") == b.series("gather", "speed")
        assert a.series("std", "disk_tps") == b.series("std", "disk_tps")


class TestSeedsMatter:
    def test_loss_seed_changes_outcome(self):
        from repro.experiments import Testbed
        from repro.workload import write_file

        def run(seed):
            config = TestbedConfig(netspec=ETHERNET, write_path="gather", nbiods=7, seed=seed)
            testbed = Testbed(config)
            testbed.segment.loss_rate = 0.05
            client = testbed.add_client()
            env = testbed.env
            proc = env.process(write_file(env, client, "f", 128 * 1024))
            env.run(until=proc)
            return proc.value

        assert run(1) != run(2)
        assert run(1) == run(1)
