"""Server-overload behaviour: socket-buffer drops, client backoff, and the
many-writers scaling claim of §6.1.

§4.2: "If the queue fills ... some incoming requests may be lost and client
backoff/retransmission comes into play.  The server depends upon its
clients to attenuate their request loads as it becomes heavily loaded."
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import ETHERNET, FDDI
from repro.rpc import CLASS_HEAVY
from repro.workload import write_file

KB = 1024


class TestSocketBufferOverload:
    def overloaded_run(self, buffer_bytes):
        config = TestbedConfig(netspec=FDDI, write_path="standard", nbiods=15)
        testbed = Testbed(config)
        # Shrink the server's socket buffer after construction.
        testbed.server.endpoint.inbox.capacity_bytes = buffer_bytes
        clients = [testbed.add_client() for _ in range(4)]
        env = testbed.env
        procs = [
            env.process(write_file(env, client, f"f{i}", 128 * KB))
            for i, client in enumerate(clients)
        ]

        def waiter(env):
            for proc in procs:
                yield proc

        env.run(until=env.process(waiter(env)))
        return testbed, clients

    def test_small_buffer_drops_and_retransmits(self):
        testbed, clients = self.overloaded_run(buffer_bytes=20 * KB)
        assert testbed.segment.dropped.value > 0
        total_retrans = sum(c.rpc.retransmissions.value for c in clients)
        assert total_retrans > 0
        # Every file still completes intact (exactly-once effects).
        ufs = testbed.server.ufs
        for i in range(4):
            ino = ufs.root.entries[f"f{i}"]
            assert ufs.inodes[ino].size == 128 * KB

    def test_ample_buffer_no_drops(self):
        testbed, clients = self.overloaded_run(buffer_bytes=1 << 20)
        assert testbed.segment.dropped.value == 0

    def test_backoff_inflates_under_slow_writes(self):
        """Write latency is the heavyweight backoff indicator (§4.1): a
        client hammered by a slow server raises its heavyweight base
        timeout, attenuating its own retransmissions."""
        config = TestbedConfig(netspec=ETHERNET, write_path="standard", nbiods=0)
        testbed = Testbed(config)
        client = testbed.add_client()
        env = testbed.env
        base_before = client.rpc.policy.base(CLASS_HEAVY)
        env.run(until=env.process(write_file(env, client, "slow", 256 * KB)))
        # ~48 ms writes x 4 multiplier stays under the 1.1 s floor, so the
        # base holds at the floor here; now stress it with huge latencies.
        for _ in range(50):
            client.rpc.policy.observe(CLASS_HEAVY, 2.0)
        assert client.rpc.policy.base(CLASS_HEAVY) > 2 * base_before


class TestManyWritersScaling:
    """§6.1: the delayed-reply architecture 'should scale well for large
    servers with many active client writers'."""

    def aggregate_bandwidth(self, write_path, writers, stripes=3, nfsds=16):
        config = TestbedConfig(
            netspec=FDDI,
            write_path=write_path,
            nbiods=4,
            stripes=stripes,
            nfsds=nfsds,
            verify_stable=True,
        )
        testbed = Testbed(config)
        clients = [testbed.add_client() for _ in range(writers)]
        env = testbed.env
        procs = [
            env.process(write_file(env, client, f"w{i}", 256 * KB))
            for i, client in enumerate(clients)
        ]

        def waiter(env):
            for proc in procs:
                yield proc

        env.run(until=env.process(waiter(env)))
        assert testbed.server.stable_violations == []
        return writers * 256 * KB / env.now / 1024  # KB/s aggregate

    def test_gathering_scales_with_writer_count(self):
        one = self.aggregate_bandwidth("gather", 1)
        four = self.aggregate_bandwidth("gather", 4)
        assert four > 2.0 * one

    def test_gathering_beats_standard_with_many_writers(self):
        std = self.aggregate_bandwidth("standard", 4)
        gat = self.aggregate_bandwidth("gather", 4)
        assert gat > 1.5 * std

    def test_per_file_batches_stay_independent(self):
        """Writers to different files must not gather into each other's
        batches (descriptors are per-vnode)."""
        config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=4, nfsds=16)
        testbed = Testbed(config)
        clients = [testbed.add_client() for _ in range(3)]
        env = testbed.env
        procs = [
            env.process(write_file(env, client, f"x{i}", 64 * KB))
            for i, client in enumerate(clients)
        ]

        def waiter(env):
            for proc in procs:
                yield proc

        env.run(until=env.process(waiter(env)))
        stats = testbed.server.write_path.stats
        # 3 files x 8 writes; max possible batch for one file is 8.
        assert stats.batch_size.max <= 8
        assert testbed.server.write_path.queues.pending_total() == 0
