"""repro.faults: the controller's apply/revert discipline and the oracle.

Every fault must be a *window*: applied at its trigger, held for its
duration, then reverted so the testbed returns to nominal — and every
applied fault must leave an audit record (controller log, and a
``fault.inject`` span when tracing).  The oracle must actually be able to
fail: a fabricated ack that never hit the disk is a violation.
"""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.faults import (
    AtTime,
    DatagramDuplication,
    FaultController,
    FaultPlan,
    NetworkPartition,
    OnSpan,
    Oracle,
    PacketLossBurst,
    ServerCrash,
    SlowDisk,
    SockBufShrink,
    run_plan,
)
from repro.net import FDDI
from repro.obs import PHASE_FAULT, PHASE_PROCRASTINATE, collector_for
from repro.workload import patterned_chunk, write_file

KB = 1024


def build(write_path="gather", tracing=False):
    config = TestbedConfig(
        netspec=FDDI, write_path=write_path, verify_stable=True, tracing=tracing
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    oracle = Oracle(testbed)
    oracle.attach(client)
    return testbed, client, oracle


def run_copy(testbed, client, oracle, file_kb=64, probes=()):
    """One file copy under whatever faults are armed; ``probes`` are
    ``(at, callable)`` pairs sampled mid-run (to see a fault *while* it is
    applied, before the controller reverts it)."""
    env = testbed.env
    samples = {}

    def prober(env, at, probe):
        yield env.timeout(at)
        samples[at] = probe()

    for at, probe in probes:
        env.process(prober(env, at, probe), name=f"probe@{at}")
    proc = env.process(write_file(env, client, "f", file_kb * KB))
    env.run(until=proc)
    env.run()
    oracle.check("final")
    return samples


def assert_copy_converged(testbed, oracle, file_kb=64):
    assert oracle.clean, oracle.violations
    assert testbed.server.stable_violations == []
    ufs = testbed.server.ufs
    ino = ufs.root.entries["f"]
    expected = b"".join(patterned_chunk(i, 8 * KB) for i in range(file_kb // 8))
    assert ufs.durable_read(ino, 0, file_kb * KB) == expected


def test_loss_burst_applies_and_reverts():
    testbed, client, oracle = build()
    plan = FaultPlan(
        "loss", (PacketLossBurst(AtTime(0.02), loss_rate=0.25, duration=0.05),)
    )
    controller = FaultController(testbed, plan, oracle=oracle).start()
    samples = run_copy(
        testbed, client, oracle, probes=[(0.04, lambda: testbed.segment.loss_rate)]
    )
    assert samples[0.04] == 0.25  # applied inside the window
    assert testbed.segment.loss_rate == 0.0  # reverted after it
    assert controller.log and controller.log[0]["kind"] == "packet_loss"
    assert controller.log[0]["end"] == pytest.approx(0.07)
    assert_copy_converged(testbed, oracle)


def test_partition_blocks_traffic_then_heals():
    testbed, client, oracle = build()
    host = testbed.server.host
    plan = FaultPlan("part", (NetworkPartition(AtTime(0.02), duration=0.06),))
    FaultController(testbed, plan, oracle=oracle).start()
    samples = run_copy(
        testbed,
        client,
        oracle,
        probes=[(0.05, lambda: testbed.segment.is_partitioned(host))],
    )
    assert samples[0.05] is True
    assert not testbed.segment.is_partitioned(host)
    assert testbed.segment.partition_drops.value > 0  # traffic really died
    assert client.rpc.retransmissions.value > 0  # and the client retried
    assert_copy_converged(testbed, oracle)


def test_duplication_window_exercises_dup_cache():
    testbed, client, oracle = build()
    plan = FaultPlan(
        "dup", (DatagramDuplication(AtTime(0.005), rate=0.5, duration=0.4),)
    )
    FaultController(testbed, plan, oracle=oracle).start()
    run_copy(testbed, client, oracle, file_kb=128)
    assert testbed.segment.duplicate_rate == 0.0  # reverted
    assert testbed.segment.duplicated.value > 0
    dup_hits = (
        testbed.server.svc.duplicates_dropped.value
        + testbed.server.svc.duplicates_replayed.value
    )
    assert dup_hits > 0
    assert_copy_converged(testbed, oracle, file_kb=128)


def test_slow_disk_applies_and_reverts():
    testbed, client, oracle = build(write_path="standard")
    plan = FaultPlan("slow", (SlowDisk(AtTime(0.01), factor=6.0, duration=0.1),))
    FaultController(testbed, plan, oracle=oracle).start()
    samples = run_copy(
        testbed,
        client,
        oracle,
        probes=[(0.05, lambda: [disk.slowdown for disk in testbed.disks])],
    )
    assert all(factor == 6.0 for factor in samples[0.05])
    assert all(disk.slowdown == 1.0 for disk in testbed.disks)
    assert_copy_converged(testbed, oracle)


def test_sockbuf_shrink_clamps_and_restores():
    testbed, client, oracle = build()
    inbox = testbed.server.endpoint.inbox
    nominal = inbox.capacity_bytes
    plan = FaultPlan(
        "shrink", (SockBufShrink(AtTime(0.01), capacity_bytes=8192, duration=0.1),)
    )
    FaultController(testbed, plan, oracle=oracle).start()
    samples = run_copy(
        testbed, client, oracle, probes=[(0.05, lambda: inbox.capacity_bytes)]
    )
    assert samples[0.05] == 8192
    assert inbox.capacity_bytes == nominal
    assert_copy_converged(testbed, oracle)


def test_span_triggered_crash_fires_on_parked_write():
    """The §6.9 nightmare, on demand: crash exactly when the first
    procrastination nap closes — a write is sitting on the active write
    queue, unanswered.  The client must still converge."""
    testbed, client, oracle = build(tracing=True)
    plan = FaultPlan(
        "crash-on-park", (ServerCrash(OnSpan(PHASE_PROCRASTINATE, occurrence=1)),)
    )
    controller = FaultController(testbed, plan, oracle=oracle).start()
    run_copy(testbed, client, oracle, file_kb=128)
    assert controller.crashes == 1
    assert client.rpc.retransmissions.value > 0
    assert oracle.checks >= 2  # at the crash, and at end of run
    assert controller.log[0]["kind"] == "server_crash"
    # The fault is visible in the exported timeline.
    fault_spans = collector_for(testbed.env).by_name(PHASE_FAULT)
    assert len(fault_spans) == 1 and fault_spans[0].attrs["kind"] == "server_crash"
    assert_copy_converged(testbed, oracle, file_kb=128)


def test_span_plan_requires_tracing():
    testbed, _client, _oracle = build(tracing=False)
    plan = FaultPlan("needs-obs", (ServerCrash(OnSpan(PHASE_PROCRASTINATE)),))
    assert plan.needs_tracing()
    with pytest.raises(ValueError, match="tracing"):
        FaultController(testbed, plan).start()


def test_unfired_span_trigger_does_not_hang_the_run():
    """A predicate that never matches leaves its driver parked forever;
    the run must still drain and the fault must simply not apply."""
    testbed, client, oracle = build(tracing=True)
    plan = FaultPlan(
        "never", (ServerCrash(OnSpan("no.such.phase", occurrence=1)),)
    )
    controller = FaultController(testbed, plan, oracle=oracle).start()
    run_copy(testbed, client, oracle)
    assert controller.crashes == 0
    assert controller.log == []
    assert_copy_converged(testbed, oracle)


def test_oracle_catches_fabricated_ack():
    """The oracle is not vacuous: an ack the durable image cannot back is
    reported as a violation."""
    testbed, client, oracle = build()
    run_copy(testbed, client, oracle)
    assert oracle.clean
    oracle.record_ack((99, 0), 0, b"never happened")
    violations = oracle.check("planted")
    assert any("not durably readable" in violation for violation in violations)
    assert not oracle.clean


def test_run_plan_is_deterministic():
    """Same plan + same config twice -> bit-identical result dicts (the
    property the campaign's byte-stable JSON rests on)."""
    plan = FaultPlan(
        "repeat",
        (
            PacketLossBurst(AtTime(0.015), loss_rate=0.2, duration=0.04),
            ServerCrash(AtTime(0.07), reboot_delay=0.1),
        ),
    )
    config = TestbedConfig(
        netspec=FDDI,
        write_path="gather",
        verify_stable=True,
        tracing=True,
        seed=11,
    )
    first = run_plan(config, plan, file_kb=96)
    second = run_plan(config, plan, file_kb=96)
    assert first.to_dict() == second.to_dict()
    assert first.clean, first.violations
    assert first.crashes == 1
    assert first.acked_writes > 0
