"""Tests for the measurement helpers (Tally, Counter, TimeWeighted, meters)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, Environment, SimError, Tally, TimeWeighted, UtilizationMeter


def test_tally_basic_stats():
    tally = Tally()
    for value in [1.0, 2.0, 3.0, 4.0]:
        tally.observe(value)
    assert tally.count == 4
    assert tally.mean == pytest.approx(2.5)
    assert tally.min == 1.0
    assert tally.max == 4.0
    assert tally.total == 10.0
    assert tally.variance == pytest.approx(1.25)


def test_tally_empty_mean_is_zero():
    assert Tally().mean == 0.0


def test_tally_percentiles():
    tally = Tally(keep_samples=True)
    for value in range(1, 101):
        tally.observe(float(value))
    assert tally.percentile(0.5) == 50.0
    assert tally.percentile(0.99) == 99.0
    assert tally.percentile(1.0) == 100.0
    assert tally.percentile(0.0) == 1.0


def test_tally_percentile_requires_samples():
    tally = Tally()
    tally.observe(1.0)
    with pytest.raises(SimError):
        tally.percentile(0.5)


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_tally_mean_matches_naive(values):
    tally = Tally()
    for value in values:
        tally.observe(value)
    assert tally.mean == pytest.approx(sum(values) / len(values), abs=1e-6, rel=1e-9)


def test_counter_rate():
    env = Environment()
    counter = Counter(env)

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)
            counter.add(5)

    env.process(proc(env))
    env.run()
    assert counter.value == 50
    assert counter.rate() == pytest.approx(5.0)


def test_counter_reset():
    env = Environment()
    counter = Counter(env)
    counter.add(10)

    def proc(env):
        yield env.timeout(2)
        counter.reset()
        yield env.timeout(4)
        counter.add(8)

    env.process(proc(env))
    env.run()
    assert counter.rate() == pytest.approx(2.0)


def test_counter_rejects_negative():
    env = Environment()
    with pytest.raises(SimError):
        Counter(env).add(-1)


def test_time_weighted_mean():
    env = Environment()
    level = TimeWeighted(env, initial=0)

    def proc(env):
        yield env.timeout(10)  # 0 for 10s
        level.set(4)
        yield env.timeout(10)  # 4 for 10s

    env.process(proc(env))
    env.run()
    assert level.mean() == pytest.approx(2.0)


def test_time_weighted_adjust():
    env = Environment()
    level = TimeWeighted(env, initial=1)
    level.adjust(2)
    assert level.value == 3


def test_utilization_meter_simple():
    env = Environment()
    meter = UtilizationMeter(env)

    def proc(env):
        meter.begin()
        yield env.timeout(3)
        meter.end()
        yield env.timeout(7)

    env.process(proc(env))
    env.run()
    assert env.now == 10
    assert meter.utilization() == pytest.approx(0.3)


def test_utilization_meter_overlapping_intervals():
    """Two overlapping busy intervals count wall-clock busy time once."""
    env = Environment()
    meter = UtilizationMeter(env)

    def user(env, start, duration):
        yield env.timeout(start)
        meter.begin()
        yield env.timeout(duration)
        meter.end()

    env.process(user(env, 0, 6))
    env.process(user(env, 4, 6))  # overlaps [4, 6]

    def tail(env):
        yield env.timeout(20)

    env.process(tail(env))
    env.run()
    assert meter.busy_time == pytest.approx(10.0)  # [0,10]
    assert meter.utilization() == pytest.approx(0.5)
    assert meter.mean_concurrency() == pytest.approx(12.0 / 20.0)


def test_utilization_meter_add_busy_and_reset():
    env = Environment()
    meter = UtilizationMeter(env)

    def proc(env):
        meter.add_busy(2.0)
        yield env.timeout(10)
        meter.reset()
        meter.add_busy(1.0)
        yield env.timeout(10)

    env.process(proc(env))
    env.run()
    assert meter.utilization() == pytest.approx(0.1)


def test_utilization_meter_end_without_begin():
    env = Environment()
    meter = UtilizationMeter(env)
    with pytest.raises(SimError):
        meter.end()


def test_utilization_open_interval_counts_to_now():
    env = Environment()
    meter = UtilizationMeter(env)

    def proc(env):
        yield env.timeout(5)
        meter.begin()
        yield env.timeout(5)
        # never ends

    env.process(proc(env))
    env.run()
    assert meter.utilization() == pytest.approx(0.5)
