"""repro.integrity: checksums, media faults, scrub/repair, the contract.

The end-to-end promise under test: no acked READ ever returns bytes
differing from the acked write image.  Corruption the media fakes past
the device layer is *detected* (checksum mismatch, latent-overlap check,
quarantine) and then either *healed* (K>=1, from a replica peer) or
*surfaced* (K=0, EIO + quarantine record) — never served silently.
"""

import random

import pytest

from repro.experiments import ExperimentSpec, Testbed, TestbedConfig
from repro.faults import (
    AtTime,
    BitRot,
    FaultController,
    FaultPlan,
    LatentSectorError,
    NetworkPartition,
    OnSpan,
    Oracle,
    ServerCrash,
    SlowDisk,
)
from repro.fs.buffer_cache import DurableImage
from repro.fs.fsck import fsck
from repro.fs.ufs import FsError
from repro.integrity import CorruptBlockError, block_digest
from repro.integrity.experiment import ScrubConfig, run_scrub, run_scrub_arm
from repro.net import FDDI
from repro.workload import write_file

KB = 1024


def build(write_path="gather", presto=False, tracing=False):
    config = TestbedConfig(
        netspec=FDDI,
        write_path=write_path,
        presto_bytes=(1 << 20) if presto else None,
        verify_stable=True,
        tracing=tracing,
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    oracle = Oracle(testbed)
    oracle.attach(client)
    return testbed, client, oracle


def run_copy(testbed, client, file_kb=64):
    env = testbed.env
    proc = env.process(write_file(env, client, "f", file_kb * KB))
    env.run(until=proc)
    env.run()


def acked_addrs(testbed):
    """Durable block addresses referenced by committed inodes."""
    durable = testbed.server.ufs.cache.durable
    addrs = []
    for ino, snapshot in durable.inodes.items():
        for fblock, addr in enumerate(snapshot.direct):
            if addr is not None and fblock * testbed.server.ufs.block_size < snapshot.size:
                addrs.append(addr)
        for addr in durable.indirects.get(ino, {}).values():
            addrs.append(addr)
    return sorted(addrs)


# -- the digest and the durable image ---------------------------------------


def test_block_digest_deterministic_and_sensitive():
    data = bytes(range(256)) * 32
    assert block_digest(data) == block_digest(bytes(data))
    flipped = data[:100] + bytes((data[100] ^ 0x01,)) + data[101:]
    assert block_digest(flipped) != block_digest(data)


def test_durable_image_verify_detects_rot():
    image = DurableImage()
    payload = b"x" * 8192
    image.commit_block(0, payload)
    image.verify_block(0)  # pristine: no error
    assert image.rot_block(0, random.Random(7))
    with pytest.raises(CorruptBlockError) as excinfo:
        image.verify_block(0)
    assert excinfo.value.reason == "checksum"
    assert excinfo.value.addr == 0
    # Recommitting good bytes heals the mismatch.
    image.commit_block(0, payload)
    image.verify_block(0)


def test_durable_image_lost_content_is_detectable():
    image = DurableImage()
    image.commit_block(8192, b"y" * 8192)
    image.lose_block(8192)
    with pytest.raises(CorruptBlockError) as excinfo:
        image.verify_block(8192)
    assert excinfo.value.reason == "missing"
    # The digest survived the loss — that is what makes it detectable.
    assert 8192 in image.checksums


def test_durable_image_lose_range_hits_overlapping_blocks_only():
    image = DurableImage()
    for addr in (0, 8192, 16384, 24576):
        image.commit_block(addr, bytes([addr % 251]) * 8192)
    afflicted = image.lose_range(8192, 20000, 8192)
    assert afflicted == [8192, 16384]
    assert 0 in image.blocks and 24576 in image.blocks
    assert all(addr in image.checksums for addr in afflicted)


def test_quarantine_surfaces_and_commit_clears_it():
    image = DurableImage()
    image.commit_block(0, b"z" * 8192)
    image.quarantine(0, "latent")
    with pytest.raises(CorruptBlockError) as excinfo:
        image.verify_block(0)
    assert excinfo.value.reason == "quarantined"
    image.commit_block(0, b"z" * 8192)  # a repair rewrites the block
    image.verify_block(0)
    assert 0 not in image.quarantined


def test_never_committed_block_verifies_trivially():
    DurableImage().verify_block(12345)  # a fresh hole carries no digest


def test_torn_commit_keeps_intended_digest_over_mangled_bytes():
    image = DurableImage()
    intended = b"a" * 8192
    mangled = intended[:-1] + b"\x00"
    image.commit_block_torn(0, intended, mangled)
    assert image.blocks[0] == mangled
    assert image.checksums[0] == block_digest(intended)
    with pytest.raises(CorruptBlockError):
        image.verify_block(0)


# -- the device-level fault hooks -------------------------------------------


def test_disk_latent_inject_overlap_and_heal():
    testbed, client, _oracle = build()
    disk = testbed.disks[0]
    disk.inject_latent(8192, 8192)
    assert disk.latent_overlap(8192, 8192)
    assert disk.latent_overlap(12288, 100)  # partial overlap counts
    assert not disk.latent_overlap(0, 8192)
    disk.heal_latent(8192, 8192)
    assert not disk.latent_overlap(8192, 8192)
    with pytest.raises(ValueError):
        disk.inject_latent(0, 0)


def test_disk_write_over_latent_sector_heals_it():
    testbed, client, _oracle = build()
    disk = testbed.disks[0]
    disk.inject_latent(0, 8192)
    done = disk.submit(0, 8192, is_write=True)
    testbed.env.run(until=done)
    assert not disk.latent_overlap(0, 8192)


def test_slowdown_tokens_compose_and_revert_in_any_order():
    testbed, _client, _oracle = build()
    disk = testbed.disks[0]
    assert disk.slowdown == 1.0
    first = disk.push_slowdown(2.0)
    second = disk.push_slowdown(3.0)
    assert disk.slowdown == pytest.approx(6.0)
    # Revert in *push* order — the second fault's factor must survive the
    # first fault's revert untouched.
    disk.pop_slowdown(first)
    assert disk.slowdown == pytest.approx(3.0)
    disk.pop_slowdown(second)
    assert disk.slowdown == pytest.approx(1.0)
    # Tokens compose with the base factor, and unknown pops are no-ops.
    disk.set_slowdown(2.0)
    token = disk.push_slowdown(4.0)
    assert disk.slowdown == pytest.approx(8.0)
    disk.pop_slowdown(999)
    assert disk.slowdown == pytest.approx(8.0)
    disk.pop_slowdown(token)
    disk.pop_slowdown(token)  # double-pop is a no-op too
    assert disk.slowdown == pytest.approx(2.0)


def test_overlapping_slow_disk_windows_revert_cleanly():
    """Satellite check: two overlapping SlowDisk faults each revert only
    their own contribution; after both windows close the spindle is back
    to exactly 1.0 (the old set_slowdown(1/factor) scheme divided out a
    *stale* product here)."""
    testbed, client, _oracle = build()
    plan = FaultPlan(
        name="overlap-slow",
        events=(
            SlowDisk(trigger=AtTime(0.01), factor=4.0, duration=0.1),
            SlowDisk(trigger=AtTime(0.05), factor=2.0, duration=0.2),
        ),
    )
    controller = FaultController(testbed, plan)
    controller.start()
    env = testbed.env
    samples = {}

    def probe(at):
        yield env.timeout(at)
        samples[at] = testbed.disks[0].slowdown

    for at in (0.06, 0.15, 0.30):
        env.process(probe(at), name=f"probe@{at}")
    run_copy(testbed, client, file_kb=64)
    assert samples[0.06] == pytest.approx(8.0)  # both windows open: 4 * 2
    assert samples[0.15] == pytest.approx(2.0)  # first reverted, second holds
    assert samples[0.30] == pytest.approx(1.0)  # both reverted: fully healthy
    assert len(controller.log) == 2


# -- NVRAM battery degrade ---------------------------------------------------


def test_presto_degrade_unarmed_loses_nothing():
    testbed, client, _oracle = build(presto=True)
    run_copy(testbed, client, file_kb=32)
    assert testbed.storage.take_degraded() == []


def test_presto_degrade_fraction_validated():
    testbed, _client, _oracle = build(presto=True)
    with pytest.raises(ValueError):
        testbed.storage.arm_degrade(1.5)
    with pytest.raises(ValueError):
        testbed.storage.arm_degrade(-0.1)


def test_presto_degrade_consumed_once_and_drops_dirty_extents():
    testbed, client, _oracle = build(presto=True)
    env = testbed.env
    proc = env.process(write_file(env, client, "f", 64 * KB))
    env.run(until=proc)
    storage = testbed.storage
    if not storage.dirty_extents:
        pytest.skip("workload drained NVRAM before the fault could bite")
    before = list(storage.dirty_extents)
    storage.arm_degrade(1.0, seed=3)
    lost = storage.take_degraded()
    assert lost == before  # fraction 1.0: every dirty extent lost
    assert storage.dirty_extents == []
    assert storage.take_degraded() == []  # armed fault consumed by one crash
    env.run()


# -- FaultPlan validation (satellite) ---------------------------------------


def test_fault_plan_rejects_negative_trigger_time():
    with pytest.raises(ValueError, match="negative trigger time"):
        FaultPlan("bad", events=(ServerCrash(trigger=AtTime(-0.1)),))


def test_fault_plan_rejects_negative_span_delay():
    with pytest.raises(ValueError, match="negative trigger delay"):
        FaultPlan(
            "bad",
            events=(ServerCrash(trigger=OnSpan("disk.io", delay=-1.0)),),
        )


def test_fault_plan_rejects_negative_duration():
    with pytest.raises(ValueError, match="negative duration"):
        FaultPlan(
            "bad",
            events=(NetworkPartition(trigger=AtTime(0.1), duration=-0.2),),
        )


def test_fault_plan_rejects_overlapping_partitions_same_hosts():
    with pytest.raises(ValueError, match="overlap in time"):
        FaultPlan(
            "bad",
            events=(
                NetworkPartition(trigger=AtTime(0.1), duration=0.3),
                NetworkPartition(trigger=AtTime(0.2), duration=0.3),
            ),
        )
    with pytest.raises(ValueError, match="overlap in time"):
        FaultPlan(
            "bad",
            events=(
                NetworkPartition(trigger=AtTime(0.1), hosts=("a", "b"), duration=0.3),
                NetworkPartition(trigger=AtTime(0.2), hosts=("b",), duration=0.3),
            ),
        )


def test_fault_plan_allows_disjoint_partitions():
    FaultPlan(
        "ok",
        events=(
            NetworkPartition(trigger=AtTime(0.1), duration=0.1),
            NetworkPartition(trigger=AtTime(0.3), duration=0.1),
        ),
    )
    FaultPlan(
        "ok-hosts",
        events=(
            NetworkPartition(trigger=AtTime(0.1), hosts=("a",), duration=0.3),
            NetworkPartition(trigger=AtTime(0.2), hosts=("b",), duration=0.3),
        ),
    )


# -- read paths never serve rotted bytes ------------------------------------


def test_bit_rot_surfaces_as_eio_not_garbage():
    testbed, client, oracle = build()
    run_copy(testbed, client, file_kb=64)
    addrs = acked_addrs(testbed)
    assert addrs
    durable = testbed.server.ufs.cache.durable
    assert durable.rot_block(addrs[0], random.Random(11))
    testbed.server.ufs.cache.drop_clean()  # force the read to re-fault

    from repro.nfs.protocol import NfsError

    env = testbed.env

    def read_all():
        open_file = yield from client.open("f")
        try:
            yield from client.read(open_file, 0, 64 * KB)
        except NfsError as exc:
            return exc
        return None

    proc = env.process(read_all(), name="readback")
    env.run(until=proc)
    env.run()
    assert isinstance(proc.value, NfsError)
    assert proc.value.code == "EIO"
    assert durable.quarantined.get(addrs[0]) == "checksum"
    assert oracle.read_violations == []  # surfaced, never served silently


def test_latent_sector_read_quarantines_and_fsck_warns():
    testbed, client, _oracle = build()
    run_copy(testbed, client, file_kb=64)
    addrs = acked_addrs(testbed)
    testbed.storage.inject_latent(addrs[0], testbed.server.ufs.block_size)
    testbed.server.ufs.cache.drop_clean()

    from repro.nfs.protocol import NfsError

    env = testbed.env

    def read_all():
        open_file = yield from client.open("f")
        try:
            yield from client.read(open_file, 0, 64 * KB)
        except NfsError as exc:
            return exc
        return None

    proc = env.process(read_all(), name="readback")
    env.run(until=proc)
    env.run()
    assert isinstance(proc.value, NfsError) and proc.value.code == "EIO"
    durable = testbed.server.ufs.cache.durable
    assert durable.quarantined.get(addrs[0]) == "latent"
    report = fsck(testbed.server.ufs, strict=False)
    assert not report.errors
    assert any("quarantined" in warning for warning in report.warnings)


def test_fsck_flags_silent_checksum_mismatch_as_error():
    testbed, client, _oracle = build()
    run_copy(testbed, client, file_kb=64)
    addrs = acked_addrs(testbed)
    durable = testbed.server.ufs.cache.durable
    assert durable.rot_block(addrs[0], random.Random(5))
    report = fsck(testbed.server.ufs, strict=False)
    assert any("checksum mismatch" in error for error in report.errors)


def test_oracle_violation_messages_carry_fault_context():
    """Satellite check: violation messages name the shard, role, and the
    most recently applied fault."""
    testbed, client, oracle = build()
    oracle.set_context(shard="s0", role="primary", plan_seed=42)
    plan = FaultPlan(
        "rot-then-crash",
        events=(
            BitRot(trigger=AtTime(0.25), count=64, seed=1),
            ServerCrash(trigger=AtTime(0.30)),
        ),
    )
    FaultController(testbed, plan, oracle=oracle).start()
    run_copy(testbed, client, file_kb=128)
    assert oracle.violations  # rot on acked blocks must be caught
    for message in oracle.violations:
        assert "shard=s0" in message
        assert "role=primary" in message
        assert "plan_seed=42" in message
        assert "last_fault=" in message


# -- the scrub experiment: detection, repair, surfacing ----------------------


@pytest.fixture(scope="module")
def scrub_arms():
    """One small sweep shared by the contract tests: K=0 and K=1 arms
    under the full four-fault storm."""
    config = ScrubConfig(
        seed=3,
        clients=2,
        files_per_client=2,
        file_kb=32,
        corruption_rates=(0.25,),
        scrub_bandwidths=(4 << 20,),
        replica_counts=(0, 1),
    )
    result = run_scrub(config)
    return {arm.replicas: arm for arm in result.arms}, result


def test_scrub_standalone_surfaces_every_defect(scrub_arms):
    arms, _result = scrub_arms
    arm = arms[0]
    assert arm.injected_defects > 0
    assert arm.detections > 0
    # K=0: nothing to heal from — every detected defect is quarantined
    # and read-backs of afflicted blocks fail loudly.
    assert arm.repairs == 0
    assert arm.quarantines == arm.detections
    assert arm.eio_reads > 0
    assert arm.silent_read_corruptions == 0
    assert arm.converged
    assert arm.clean


def test_scrub_replicated_heals_every_defect(scrub_arms):
    arms, _result = scrub_arms
    arm = arms[1]
    assert arm.injected_defects > 0
    assert arm.detections > 0
    # K=1: every defect healed from the backup; no quarantine, no EIO,
    # nothing silent, and the final audit is spotless.
    assert arm.repairs >= arm.detections
    assert arm.quarantines == 0
    assert arm.eio_reads == 0
    assert arm.silent_read_corruptions == 0
    assert arm.durability_violations == 0
    assert arm.converged
    assert arm.repair_bytes > 0
    assert arm.mean_time_to_repair_ms is not None
    assert arm.clean


def test_scrub_contract_holds_across_sweep(scrub_arms):
    _arms, result = scrub_arms
    assert result.clean
    payload = result.to_dict()
    assert payload["schema"] == "repro.scrub/1"
    assert payload["clean"] is True


def test_scrub_json_byte_identical_across_reruns():
    config = ScrubConfig(
        seed=9,
        clients=2,
        files_per_client=1,
        file_kb=32,
        corruption_rates=(0.3,),
        scrub_bandwidths=(4 << 20,),
        replica_counts=(1,),
    )
    first = run_scrub(config).to_json()
    second = run_scrub(config).to_json()
    assert first == second


def test_scrub_config_validation():
    with pytest.raises(ValueError):
        ScrubConfig(corruption_rates=(1.5,))
    with pytest.raises(ValueError):
        ScrubConfig(scrub_bandwidths=(0,))
    with pytest.raises(ValueError):
        ScrubConfig(replica_counts=(-1,))


def test_scrub_experiment_kind_dispatches():
    spec = ExperimentSpec(kind="scrub")
    assert spec.kind == "scrub"  # registered; the sweep itself is tested above


def test_scrub_detection_latency_reported(scrub_arms):
    arms, _result = scrub_arms
    for arm in arms.values():
        if arm.detections:
            assert arm.mean_detection_latency_ms is not None
            assert arm.mean_detection_latency_ms >= 0.0
