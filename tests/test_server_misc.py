"""Coverage for server internals: dispatch edges, CPU model, config."""

import pytest

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.rpc import RpcCall
from repro.server import Cpu, ServerConfig
from repro.sim import Environment
from repro.workload import write_file

KB = 1024


class TestDispatchEdges:
    def test_unknown_procedure_rejected(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        client_ep = testbed.segment.attach("raw-client")
        env = testbed.env
        replies = []

        def driver(env):
            call = RpcCall(xid=1, proc="frobnicate", args=None, size=160, client="raw-client")
            client_ep.send("server", call, call.size)
            datagram = yield client_ep.recv()
            replies.append(datagram.payload)

        env.run(until=env.process(driver(env)))
        assert replies[0].status == "EPROCUNAVAIL"

    def test_estale_for_unknown_fhandle(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        client_ep = testbed.segment.attach("raw-client")
        env = testbed.env
        replies = []

        def driver(env):
            call = RpcCall(
                xid=2, proc="getattr", args=(999, 0), size=160, client="raw-client"
            )
            client_ep.send("server", call, call.size)
            datagram = yield client_ep.recv()
            replies.append(datagram.payload)

        env.run(until=env.process(driver(env)))
        assert replies[0].status == "ESTALE"

    def test_op_latency_recorded_per_proc(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        client = testbed.add_client()
        env = testbed.env
        env.run(until=env.process(write_file(env, client, "f", 32 * KB)))
        assert testbed.server.ops_completed["write"].value == 4
        assert testbed.server.ops_completed["create"].value == 1
        assert testbed.server.write_latency.count == 4
        assert testbed.server.op_latency.count >= 5


class TestCpuModel:
    def test_single_core_serializes(self):
        env = Environment()
        cpu = Cpu(env)
        done = []

        def worker(env, name):
            yield from cpu.consume(0.01)
            done.append((name, env.now))

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert done[0][1] == pytest.approx(0.01)
        assert done[1][1] == pytest.approx(0.02)
        assert cpu.utilization() == pytest.approx(1.0)

    def test_two_cores_overlap(self):
        env = Environment()
        cpu = Cpu(env, cores=2)

        def worker(env):
            yield from cpu.consume(0.01)

        env.process(worker(env))
        env.process(worker(env))
        env.run()
        assert env.now == pytest.approx(0.01)
        assert cpu.utilization() == pytest.approx(1.0)

    def test_zero_cost_is_free(self):
        env = Environment()
        cpu = Cpu(env)

        def worker(env):
            yield from cpu.consume(0)
            return env.now

        proc = env.process(worker(env))
        env.run()
        assert proc.value == 0

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Cpu(Environment(), cores=0)

    def test_cpu_scale_halves_utilization(self):
        from repro.experiments import run_filecopy

        base = run_filecopy(
            TestbedConfig(netspec=FDDI, write_path="standard", nbiods=7), file_mb=1
        )
        fast = run_filecopy(
            TestbedConfig(
                netspec=FDDI, write_path="standard", nbiods=7, cpu_scale=0.5
            ),
            file_mb=1,
        )
        assert fast.server_cpu_pct < 0.8 * base.server_cpu_pct


class TestServerConfig:
    def test_defaults_match_paper(self):
        config = ServerConfig()
        assert config.nfsds == 8
        assert config.socket_buffer_bytes == 256 * 1024
        assert config.write_path == "standard"

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(nfsds=0)
        with pytest.raises(ValueError):
            ServerConfig(write_path="magic")

    def test_reset_measurements(self):
        testbed = Testbed(TestbedConfig(netspec=FDDI))
        client = testbed.add_client()
        env = testbed.env
        env.run(until=env.process(write_file(env, client, "f", 32 * KB)))
        testbed.server.reset_measurements()
        assert testbed.server.ops_completed["write"].value == 0
        assert testbed.server.cpu.utilization() == 0.0
