"""Ablation: the [JUSZ89] duplicate request cache's correctness value.

Without the cache (the pre-1989 server), a retransmitted REMOVE is
re-executed and the client receives a spurious ENOENT for a remove that
actually succeeded — the classic non-idempotency failure the cache exists
to prevent.
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.rpc import RpcCall
from repro.nfs import RemoveArgs
from repro.workload import write_file


def drive_duplicate_remove(dup_cache_enabled):
    config = TestbedConfig(netspec=FDDI, write_path="standard")
    testbed = Testbed(config)
    testbed.server.svc.dup_cache.enabled = dup_cache_enabled
    setup_client = testbed.add_client()
    client_ep = testbed.segment.attach("raw")
    env = testbed.env
    statuses = []

    def driver(env):
        yield from write_file(env, setup_client, "victim", 8192)
        args = RemoveArgs((2, 0), "victim")
        call = RpcCall(xid=7, proc="remove", args=args, size=200, client="raw")
        client_ep.send("server", call, call.size)
        first = yield client_ep.recv()
        statuses.append(first.payload.status)
        # The client "didn't hear" the reply and retransmits.
        retransmit = RpcCall(
            xid=7, proc="remove", args=args, size=200, client="raw", attempt=2
        )
        client_ep.send("server", retransmit, retransmit.size)
        second = yield client_ep.recv()
        statuses.append(second.payload.status)

    env.run(until=env.process(driver(env)))
    return statuses


def test_with_cache_duplicate_remove_replays_success():
    statuses = drive_duplicate_remove(dup_cache_enabled=True)
    assert statuses == ["ok", "ok"]


def test_without_cache_duplicate_remove_errs():
    """The failure mode the cache prevents: the retransmission re-executes
    and the client sees ENOENT for its own successful remove."""
    statuses = drive_duplicate_remove(dup_cache_enabled=False)
    assert statuses == ["ok", "ENOENT"]


def test_config_knob_wires_through():
    testbed = Testbed(TestbedConfig(netspec=FDDI))
    assert testbed.server.svc.dup_cache.enabled
    from repro.server import ServerConfig

    config = ServerConfig(dup_cache=False)
    testbed2 = Testbed(TestbedConfig(netspec=FDDI))
    testbed2.server.svc.dup_cache.enabled = False  # runtime toggle works too
    assert not testbed2.server.svc.dup_cache.enabled
    assert not config.dup_cache
