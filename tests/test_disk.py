"""Tests for the disk model, device, and stripe set — including calibration
checks against the paper's RZ26 throughput anchors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import RZ26, DiskDevice, DiskModel, IoRequest, StripeSet
from repro.sim import Environment

KB = 1024


def run_back_to_back(env, device, offsets_lengths):
    """Submit requests one at a time (synchronously) and return total time."""

    def driver(env):
        for offset, nbytes in offsets_lengths:
            yield device.submit(offset, nbytes)

    proc = env.process(driver(env))
    env.run(until=proc)
    return env.now


class TestDiskModel:
    def test_seek_time_monotonic_in_distance(self):
        model = DiskModel(RZ26)
        d1 = model.seek_time(1 * KB)
        d2 = model.seek_time(100_000 * KB)
        d3 = model.seek_time(RZ26.capacity_bytes)
        assert 0 < d1 < d2 < d3 <= RZ26.seek_max + 1e-9

    def test_zero_distance_no_seek(self):
        model = DiskModel(RZ26)
        assert model.seek_time(0) == 0.0

    def test_contiguous_request_costs_one_revolution(self):
        model = DiskModel(RZ26)
        model.service_time(0, 8 * KB)
        t = model.service_time(8 * KB, 8 * KB)
        expected = RZ26.overhead + RZ26.revolution_time + 8 * KB / RZ26.media_rate
        assert t == pytest.approx(expected)

    def test_seeking_request_costs_seek_plus_half_rev(self):
        model = DiskModel(RZ26)
        model.service_time(0, 8 * KB)
        far = RZ26.capacity_bytes // 2
        t = model.service_time(far, 8 * KB)
        assert t > RZ26.overhead + RZ26.rotational_latency
        assert t < RZ26.overhead + RZ26.seek_max + RZ26.rotational_latency + 0.01

    def test_invalid_requests_rejected(self):
        model = DiskModel(RZ26)
        with pytest.raises(ValueError):
            model.service_time(0, 0)
        with pytest.raises(ValueError):
            model.service_time(-1, 8 * KB)

    def test_reset_forgets_head(self):
        model = DiskModel(RZ26)
        model.service_time(0, 8 * KB)
        model.reset()
        assert model._head is None

    def test_calibration_sequential_64k_near_paper_raw_rate(self):
        """Paper: RZ26 raw device write bandwidth limit ~1.9 MB/s at 64K."""
        model = DiskModel(RZ26)
        total = 0.0
        offset = 0
        for _ in range(100):
            total += model.service_time(offset, 64 * KB)
            offset += 64 * KB
        rate_kbs = (100 * 64 * KB / total) / KB
        assert 1600 <= rate_kbs <= 2100

    def test_calibration_8k_with_seeks_near_paper_small_write_rate(self):
        """Paper Table 1: ~60-75 transactions/s for 8K data+inode traffic."""
        model = DiskModel(RZ26)
        # FFS keeps a file's inode in the same cylinder group as its data,
        # so the inode<->data seek is short (tens of MB), not full-stroke.
        inode_area = 1 * KB * KB
        data_area = 17 * KB * KB
        total = 0.0
        count = 0
        for i in range(100):
            total += model.service_time(data_area + i * 8 * KB, 8 * KB)
            total += model.service_time(inode_area, 8 * KB)
            count += 2
        tps = count / total
        assert 58 <= tps <= 85


class TestDiskDevice:
    def test_serves_fifo_one_at_a_time(self):
        env = Environment()
        device = DiskDevice(env, RZ26)
        done_order = []

        def submit_all(env):
            events = [device.submit(i * 8 * KB, 8 * KB) for i in range(3)]
            for i, event in enumerate(events):
                event.callbacks.append(lambda _ev, i=i: done_order.append(i))
            yield env.timeout(0)

        env.process(submit_all(env))
        env.run()
        assert done_order == [0, 1, 2]

    def test_stats_accumulate(self):
        env = Environment()
        device = DiskDevice(env, RZ26)
        run_back_to_back(env, device, [(0, 8 * KB), (8 * KB, 8 * KB)])
        assert device.stats.transactions.value == 2
        assert device.stats.bytes.value == 16 * KB
        assert device.stats.writes.value == 2
        assert device.stats.busy.utilization() > 0.9  # back-to-back

    def test_queue_depth_tracks_outstanding(self):
        env = Environment()
        device = DiskDevice(env, RZ26)
        depths = []

        def submit_all(env):
            for i in range(4):
                device.submit(i * 8 * KB, 8 * KB)
            depths.append(device.queue_depth())
            yield env.timeout(0)

        env.process(submit_all(env))
        env.run()
        assert depths == [4]
        assert device.queue_depth() == 0

    def test_kind_accounting(self):
        env = Environment()
        device = DiskDevice(env, RZ26)

        def driver(env):
            yield device.submit(0, 8 * KB, kind="data")
            yield device.submit(99 * KB, 8 * KB, kind="inode")
            yield device.submit(0, 8 * KB, is_write=False, kind="data")

        env.run(until=env.process(driver(env)))
        assert device.stats.by_kind == {"data": 2.0, "inode": 1.0}
        assert device.stats.reads.value == 1

    def test_io_request_validation(self):
        with pytest.raises(ValueError):
            IoRequest(offset=0, nbytes=0)
        with pytest.raises(ValueError):
            IoRequest(offset=-5, nbytes=8)


class TestStripeSet:
    def make(self, env, ndisks=3, unit=8 * KB):
        members = [DiskDevice(env, RZ26, name=f"rz26-{i}") for i in range(ndisks)]
        return StripeSet(env, members, stripe_unit=unit), members

    def test_requires_members(self):
        env = Environment()
        with pytest.raises(ValueError):
            StripeSet(env, [])

    def test_single_unit_maps_round_robin(self):
        env = Environment()
        stripe, _members = self.make(env)
        assert stripe.map_extent(0, 8 * KB) == [(0, 0, 8 * KB)]
        assert stripe.map_extent(8 * KB, 8 * KB) == [(1, 0, 8 * KB)]
        assert stripe.map_extent(16 * KB, 8 * KB) == [(2, 0, 8 * KB)]
        assert stripe.map_extent(24 * KB, 8 * KB) == [(0, 8 * KB, 8 * KB)]

    def test_large_extent_coalesces_per_member(self):
        env = Environment()
        stripe, _members = self.make(env)
        extents = stripe.map_extent(0, 64 * KB)  # 8 units over 3 disks
        # units 0,3,6 -> member 0; 1,4,7 -> member 1; 2,5 -> member 2
        assert extents == [
            (0, 0, 24 * KB),
            (1, 0, 24 * KB),
            (2, 0, 16 * KB),
        ]
        assert sum(e[2] for e in extents) == 64 * KB

    def test_unaligned_extent(self):
        env = Environment()
        stripe, _members = self.make(env)
        extents = stripe.map_extent(4 * KB, 8 * KB)  # spans units 0 and 1
        assert extents == [(0, 4 * KB, 4 * KB), (1, 0, 4 * KB)]

    def test_parallel_submit_faster_than_serial(self):
        env = Environment()
        stripe, members = self.make(env)

        def driver(env):
            yield stripe.submit(0, 64 * KB)

        env.run(until=env.process(driver(env)))
        striped_time = env.now

        env2 = Environment()
        single = DiskDevice(env2, RZ26)

        def driver2(env2):
            yield single.submit(0, 64 * KB)

        env2.run(until=env2.process(driver2(env2)))
        assert striped_time < env2.now

    def test_aggregate_stats_sum_members(self):
        env = Environment()
        stripe, members = self.make(env)

        def driver(env):
            yield stripe.submit(0, 64 * KB)

        env.run(until=env.process(driver(env)))
        agg = stripe.aggregate_stats
        assert agg.transactions.value == 3
        assert agg.bytes.value >= 64 * KB

    def test_reset_stats_clears_members(self):
        env = Environment()
        stripe, members = self.make(env)

        def driver(env):
            yield stripe.submit(0, 64 * KB)

        env.run(until=env.process(driver(env)))
        stripe.reset_stats()
        assert stripe.aggregate_stats.transactions.value == 0


@given(
    offset=st.integers(0, 10_000_000),
    nbytes=st.integers(1, 1_000_000),
    ndisks=st.integers(1, 5),
    unit=st.sampled_from([4 * KB, 8 * KB, 64 * KB]),
)
@settings(max_examples=200, deadline=None)
def test_property_stripe_mapping_covers_request(offset, nbytes, ndisks, unit):
    """Every mapped byte range is within members and covers >= the request."""
    env = Environment()
    members = [DiskDevice(env, RZ26, name=f"d{i}") for i in range(ndisks)]
    stripe = StripeSet(env, members, stripe_unit=unit)
    extents = stripe.map_extent(offset, nbytes)
    assert all(0 <= member < ndisks for member, _o, _l in extents)
    assert all(length > 0 for _m, _o, length in extents)
    total = sum(length for _m, _o, length in extents)
    assert total >= nbytes
    members_seen = [member for member, _o, _l in extents]
    assert members_seen == sorted(set(members_seen))  # one extent per member


@given(
    lengths=st.lists(st.integers(1, 16), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_property_device_time_positive_and_additive(lengths):
    """Serial submissions take the sum of their service times (no overlap)."""
    env = Environment()
    device = DiskDevice(env, RZ26)
    pairs = []
    offset = 0
    for length in lengths:
        pairs.append((offset, length * KB))
        offset += length * KB
    total = run_back_to_back(env, device, pairs)
    assert total > 0
    assert device.stats.transactions.value == len(lengths)
    assert device.stats.busy.busy_time == pytest.approx(total, rel=1e-9)
