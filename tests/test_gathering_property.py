"""Property-based end-to-end tests: random traffic against the gathering
server, checking the §6.8/§6.9 invariants under every generated schedule.

Hypothesis generates write schedules (files, offsets, biod counts, loss),
and for each one we assert the full contract:

* every request eventually gets exactly one effective reply;
* the stable-storage invariant holds at each reply;
* no descriptor is ever left parked (no orphans);
* the final durable state equals a last-writer-wins reference model.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import Testbed, TestbedConfig
from repro.fs import fsck
from repro.net import FDDI
from repro.workload import patterned_chunk

KB = 1024
BLOCK = 8 * KB

schedule_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),  # file index
        st.integers(0, 15),  # block index
        st.integers(0, 4),  # inter-write gap in ms
    ),
    min_size=1,
    max_size=30,
)


@given(
    schedule=schedule_strategy,
    nbiods=st.integers(0, 8),
    presto=st.booleans(),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_gathering_contract_under_random_traffic(schedule, nbiods, presto):
    config = TestbedConfig(
        netspec=FDDI,
        write_path="gather",
        nbiods=nbiods,
        presto_bytes=(1 << 20) if presto else None,
        verify_stable=True,
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    reference = {}  # (file, block) -> payload

    def driver(env):
        handles = []
        for index in range(3):
            handle = yield from client.create(f"p{index}")
            handles.append(handle)
        for seq, (file_index, block, gap_ms) in enumerate(schedule):
            if gap_ms:
                yield env.timeout(gap_ms / 1000.0)
            payload = patterned_chunk(seq, BLOCK)
            reference[(file_index, block)] = payload
            yield from client.write_at(handles[file_index], block * BLOCK, payload)
        for handle in handles:
            yield from client.close(handle)

    proc = env.process(driver(env))
    env.run(until=proc)
    env.run()  # drain trailing flushes/watchdogs

    server = testbed.server
    assert server.stable_violations == []
    assert server.write_path.queues.pending_total() == 0
    assert server.svc.replies_sent.value == server.svc.requests_received.value
    assert server.svc.handles.in_use == 0

    # Final durable content equals the last-writer-wins reference.  Close
    # guarantees replies, not durability of mtime-only rewrites; force
    # everything down before comparing.
    flush = env.process(_sync_all(server))
    env.run(until=flush)
    for (file_index, block), payload in reference.items():
        ino = server.ufs.root.entries[f"p{file_index}"]
        durable = server.ufs.durable_read(ino, block * BLOCK, BLOCK)
        assert durable == payload, (file_index, block)

    report = fsck(server.ufs, strict=True)
    assert report.clean, report.errors


def _sync_all(server):
    yield from server.ufs.sync_all()
