#!/usr/bin/env python
"""Quickstart: the paper's headline experiment in a dozen lines.

Writes a 10 MB file over a simulated FDDI network to an NFS server backed
by one RZ26 disk, with 7 client biods — once against the reference-port
(standard) write path and once with write gathering — and prints the four
numbers the paper's tables report.

Run:  python examples/quickstart.py
"""

from repro.experiments import TestbedConfig, run_filecopy
from repro.net import FDDI


def main() -> None:
    for write_path in ("standard", "gather"):
        config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7)
        metrics = run_filecopy(config, file_mb=10)
        print(f"--- {write_path} server ---")
        for name, value in metrics.row().items():
            print(f"  {name:<32} {value}")
        if metrics.mean_batch_size is not None:
            print(f"  {'mean gathered batch size':<32} {metrics.mean_batch_size:.1f}")
            print(f"  {'gather success rate':<32} {metrics.gather_success_rate:.0%}")
        print()
    print(
        "The paper's Table 3 at 7 biods: 207 KB/s without gathering, "
        "846 KB/s with it."
    )


if __name__ == "__main__":
    main()
