#!/usr/bin/env python
"""The dumb-PC worst case (§6.10) and the learned-clients fix (§8).

A single-threaded client with no biods gives the gathering server nothing
to gather: every write eats a procrastination delay for no gain (~15% loss
for a quick client).  The paper's future-work idea — a per-client database
of learned behaviour, suggested by Jeff Mogul — erases the penalty: after a
short learning window the server stops procrastinating for that client.

Run:  python examples/dumb_pc.py
"""

from repro.core import GatherPolicy
from repro.experiments import TestbedConfig, run_filecopy
from repro.net import ETHERNET
from repro.workload import DUMB_PC_THINK_TIME, FAST_CLIENT_THINK_TIME


def measure(write_path: str, think_time: float, policy: GatherPolicy | None = None) -> float:
    config = TestbedConfig(
        netspec=ETHERNET,
        write_path=write_path,
        nbiods=0,
        gather_policy=policy or GatherPolicy(),
    )
    return run_filecopy(config, file_mb=2, think_time=think_time).client_kb_per_sec


def main() -> None:
    print("Quick single-threaded client (the paper's ~15% loss case):")
    std = measure("standard", FAST_CLIENT_THINK_TIME)
    gat = measure("gather", FAST_CLIENT_THINK_TIME)
    learned = measure(
        "gather", FAST_CLIENT_THINK_TIME, GatherPolicy(learned_clients=True)
    )
    print(f"  standard server      : {std:7.0f} KB/s")
    print(f"  gathering server     : {gat:7.0f} KB/s  ({gat / std - 1:+.0%})")
    print(f"  gathering + learned  : {learned:7.0f} KB/s  ({learned / std - 1:+.0%})")
    print()
    print("Truly slow PC (20 ms per 8K): the loss fades into insignificance:")
    std_slow = measure("standard", DUMB_PC_THINK_TIME)
    gat_slow = measure("gather", DUMB_PC_THINK_TIME)
    print(f"  standard server      : {std_slow:7.0f} KB/s")
    print(f"  gathering server     : {gat_slow:7.0f} KB/s  ({gat_slow / std_slow - 1:+.0%})")


if __name__ == "__main__":
    main()
