#!/usr/bin/env python
"""NFSv3 reliable asynchronous writes, and what a server crash does (§8).

The paper closes by noting that NFS version 3 adds reliable asynchronous
writes, and wonders how gathering fits "in a mixed environment of V2
clients ... and V3 clients using reliable asynchronous writes".  This
example runs that future: a v3 client writes with stable=false, COMMITs at
close, survives a simulated server crash via write-verifier replay — and a
v2 client shares the same gathering server throughout.

Run:  python examples/nfs_v3_crash.py
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsClient
from repro.rpc import RpcClient
from repro.workload import patterned_chunk, write_file

KB = 1024


def main() -> None:
    config = TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7, verify_stable=True)
    testbed = Testbed(config)
    v2 = testbed.add_client()
    endpoint = testbed.segment.attach("v3-host")
    rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
    v3 = NfsClient(testbed.env, rpc, nbiods=7, nfs_version=3)
    env = testbed.env

    def scenario(env):
        # Both protocol generations write concurrently.
        v2_proc = env.process(write_file(env, v2, "v2file", 512 * KB))
        started = env.now
        open_file = yield from v3.create("v3file")
        for index in range(16):
            yield from v3.write_stream(open_file, patterned_chunk(index))
        unstable_done = env.now - started
        print(f"v3: 128K written unstably in {unstable_done * 1000:6.1f} ms "
              f"({len(open_file.uncommitted)} ranges held client-side)")

        # Disaster strikes before COMMIT.
        yield env.timeout(0.05)
        testbed.server.simulate_crash()
        print("server crashed and rebooted: write verifier changed, "
              "cached data gone")

        yield from v3.close(open_file)  # COMMIT -> mismatch -> replay -> COMMIT
        print(f"v3: close completed at {(env.now - started) * 1000:6.1f} ms "
              f"(replayed and committed)")
        yield v2_proc

    env.run(until=env.process(scenario(env)))

    ufs = testbed.server.ufs
    for name, blocks in (("v3file", 16), ("v2file", 64)):
        ino = ufs.root.entries[name]
        expected = b"".join(patterned_chunk(i) for i in range(blocks))
        durable = ufs.durable_read(ino, 0, blocks * 8 * KB)
        status = "INTACT" if durable == expected else "CORRUPT"
        print(f"{name}: durable content {status}")
    print(f"stable-storage violations: {len(testbed.server.stable_violations)}")


if __name__ == "__main__":
    main()
