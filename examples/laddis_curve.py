#!/usr/bin/env python
"""A Figure-2-style SPEC SFS 1.0 (LADDIS) curve, printed as text.

Five client hosts x four load processes offer an increasing aggregate NFS
operation rate (the SFS mix: 34% lookup, 22% read, 15% write, ...) against
a DEC-3800-class server with 32 nfsds and a 20-spindle farm.  The curve
ends where average response time exceeds the SFS 50 ms reporting bound.

Run:  python examples/laddis_curve.py          (takes ~30-60 s)
"""

from repro.experiments import run_curve
from repro.workload import SFS_LATENCY_BOUND_MS

LOADS = (150.0, 300.0, 450.0, 550.0, 650.0)


def main() -> None:
    curves = {
        "standard": run_curve("standard", loads=LOADS, duration=3.0),
        "gathering": run_curve("gather", loads=LOADS, duration=3.0),
    }
    print(f"{'offered':>8} | {'standard':^22} | {'gathering':^22}")
    print(f"{'ops/s':>8} | {'ops/s':>9} {'ms':>8}    | {'ops/s':>9} {'ms':>8}")
    for index in range(len(LOADS)):
        s = curves["standard"].points[index]
        g = curves["gathering"].points[index]
        print(
            f"{s.offered:8.0f} | {s.achieved:9.0f} {s.latency_ms:8.1f}    "
            f"| {g.achieved:9.0f} {g.latency_ms:8.1f}"
        )
    std_cap = curves["standard"].capacity()
    gat_cap = curves["gathering"].capacity()
    print()
    print(f"SFS capacity (avg latency <= {SFS_LATENCY_BOUND_MS:.0f} ms):")
    print(f"  standard : {std_cap:6.0f} ops/s")
    print(f"  gathering: {gat_cap:6.0f} ops/s ({gat_cap / std_cap - 1:+.0%}; paper measured +13%)")


if __name__ == "__main__":
    main()
