#!/usr/bin/env python
"""Figure 1 as text: watch the wire and the disk during a file write.

Reproduces the paper's tcpdump-style comparison for a 4-biod client more
than 100K into a sequential file: the standard server's write/reply
lockstep with a data+metadata disk pair per request, versus the gathering
server's request train, clustered disk transactions, and reply burst.

Run:  python examples/trace_timeline.py
"""

from repro.experiments import figure1


def main() -> None:
    sides = figure1(file_kb=256)
    for name in ("standard", "gathering"):
        side = sides[name]
        print(f"=== {name} server — 150 ms window from {side['window_start_ms']:.1f} ms ===")
        print(side["rendered"])
        print(
            f"--> {side['writes']} writes, {side['disk_transactions']} disk "
            f"transactions, {side['replies']} replies in the window"
        )
        print()


if __name__ == "__main__":
    main()
