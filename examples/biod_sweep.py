#!/usr/bin/env python
"""Sweep client biods on Ethernet and FDDI — regenerating the left half of
Tables 1 and 3 as simple text charts.

The interesting dynamics: the standard server is pinned at disk speed no
matter how many biods the client runs, while the gathering server converts
each extra biod into a longer request train and a bigger gathered batch.

Run:  python examples/biod_sweep.py
"""

from repro.experiments import TestbedConfig, run_filecopy
from repro.net import ETHERNET, FDDI

BIODS = (0, 3, 7, 11, 15)


def bar(value: float, scale: float = 12.0) -> str:
    return "#" * max(1, int(value / scale))


def sweep(netspec) -> None:
    print(f"=== {netspec.name} ===")
    print(f"{'biods':>5}  {'standard':>9}  {'gathering':>9}   (KB/s, 10MB copy)")
    for nbiods in BIODS:
        row = {}
        for write_path in ("standard", "gather"):
            config = TestbedConfig(netspec=netspec, write_path=write_path, nbiods=nbiods)
            row[write_path] = run_filecopy(config, file_mb=10).client_kb_per_sec
        print(
            f"{nbiods:>5}  {row['standard']:>9.0f}  {row['gather']:>9.0f}   "
            f"std {bar(row['standard'])} | gat {bar(row['gather'])}"
        )
    print()


def main() -> None:
    sweep(ETHERNET)
    sweep(FDDI)


if __name__ == "__main__":
    main()
