#!/usr/bin/env python
"""Random-access writes gather too (§6.11).

"The write gathering algorithm does not assume an ordering on the delivery
of writes.  A grouping of random access writes will accrue the same
benefits of metadata amortization as a grouping of sequential access
writes.  The clustering of data blocks ... is an underlying filesystem
issue."

This example rewrites random 8K records of a preallocated 2 MB file and
splits the disk traffic into data vs metadata transactions, showing that
gathering amortizes the metadata identically for random and sequential
patterns while the data clustering advantage exists only sequentially.

Run:  python examples/random_access.py
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.workload import write_file, write_random

MB = 1 << 20


def run(write_path: str, pattern: str):
    config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7)
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    if pattern == "sequential":
        proc = env.process(write_file(env, client, "seq", 2 * MB))
    else:
        proc = env.process(write_random(env, client, "rnd", 2 * MB, writes=256, seed=11))
    env.run(until=proc)
    data = meta = 0.0
    for disk in testbed.disks:
        for kind, count in disk.stats.by_kind.items():
            if kind == "data":
                data += count
            else:
                meta += count
    return proc.value, data, meta


def main() -> None:
    print(f"{'pattern':<12} {'server':<10} {'elapsed s':>10} {'data txs':>9} {'meta txs':>9}")
    for pattern in ("sequential", "random"):
        for write_path in ("standard", "gather"):
            elapsed, data, meta = run(write_path, pattern)
            print(
                f"{pattern:<12} {write_path:<10} {elapsed:>10.2f} "
                f"{data:>9.0f} {meta:>9.0f}"
            )
    print()
    print("Gathering collapses the metadata column for BOTH patterns; only")
    print("the sequential case also shrinks the data column (clustering is")
    print("an underlying-filesystem issue, exactly as §6.11 says).")


if __name__ == "__main__":
    main()
