"""NVRAM substrate: the Prestoserve-style write accelerator."""

from repro.nvram.presto import PrestoCache

__all__ = ["PrestoCache"]
