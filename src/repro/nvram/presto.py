"""Prestoserve-style NVRAM write accelerator (§4.3, §6.3 of the paper).

:class:`PrestoCache` sits in front of a :class:`~repro.disk.device.Storage`
(a disk or stripe set) and is itself a ``Storage``:

* A write of at most :attr:`accept_limit` bytes (typically 8K) completes as
  soon as the bytes are copied into NVRAM — NVRAM *is* stable storage under
  the SPEC baseline rules, so the caller's stable-storage promise is kept
  at copy time, in tens to hundreds of microseconds instead of tens of
  milliseconds.
* A larger write is *declined* and passed straight through to the backing
  device ("resulting in performance that degrades to underlying disk
  speed") — this is why a gathering server must not cluster in UFS when the
  filesystem is accelerated.
* A background drain clusters adjacent dirty extents into large transactions
  ("Presto does its own clustering") and writes them to the backing device
  asynchronously and in parallel with request processing.
* The NVRAM is small (the paper: "typically one or more MB"); when full,
  accepted writes block until the drain frees space.

After a simulated crash, :meth:`crash_recover` reports the extents that must
be flushed before service resumes, modeling the "recovered and flushed to
disk after server failure" clause of the SPEC baseline requirement.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.disk.device import Storage
from repro.obs import PHASE_NVRAM_COPY, collector_for
from repro.sim import Container, Environment, Event

__all__ = ["PrestoCache"]


class PrestoCache(Storage):
    """NVRAM write-back cache in front of a backing storage device."""

    #: Marks this storage as accelerated; the server write layer queries
    #: this to pick its §6.3 policy (data-only sync vs delayed data).
    is_accelerated = True

    def __init__(
        self,
        env: Environment,
        backing: Storage,
        capacity: int = 1 << 20,
        accept_limit: int = 8192,
        copy_rate: float = 40e6,
        copy_overhead: float = 0.0001,
        max_flush: int = 128 * 1024,
        drain_high: float = 0.5,
        drain_low: float = 0.125,
        drain_max_age: float = 0.25,
        name: str = "presto",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"NVRAM capacity must be positive, got {capacity}")
        if accept_limit <= 0 or accept_limit > capacity:
            raise ValueError(
                f"accept limit {accept_limit} outside (0, capacity={capacity}]"
            )
        if max_flush <= 0:
            raise ValueError(f"max_flush must be positive, got {max_flush}")
        if not 0 <= drain_low < drain_high <= 1:
            raise ValueError(
                f"need 0 <= drain_low < drain_high <= 1, got {drain_low}/{drain_high}"
            )
        if drain_max_age <= 0:
            raise ValueError(f"drain_max_age must be positive, got {drain_max_age}")
        super().__init__(env, name)
        self.obs = collector_for(env)
        self.backing = backing
        self.capacity = capacity
        self.accept_limit = accept_limit
        self.copy_rate = copy_rate
        self.copy_overhead = copy_overhead
        self.max_flush = max_flush
        self.drain_high = drain_high
        self.drain_low = drain_low
        self.drain_max_age = drain_max_age
        #: Free NVRAM bytes; writers reserve, the drain releases.
        self._free = Container(env, capacity=capacity, init=capacity)
        #: Sorted, non-overlapping dirty extents as (offset, end) pairs.
        self._dirty: List[Tuple[int, int]] = []
        #: Extent currently being written to the backing device; still in
        #: NVRAM (and recoverable) until that write completes.
        self._draining: Tuple[int, int] | None = None
        self._dirty_signal = env.event()
        self._declined = 0
        #: Armed battery fault as (fraction, seed); None = battery healthy.
        self._degrade: Optional[Tuple[float, int]] = None
        #: When the oldest currently-cached byte arrived (age trigger).
        self._oldest_insert: float = 0.0
        #: Elevator cursor: the drain sweeps extents in address order so a
        #: hot small extent (the inode block, rewritten by every NFS write)
        #: cannot starve the large contiguous data extent.
        self._drain_cursor: int = 0
        env.process(self._drain(), name=f"{name}:drain")

    # -- public Storage interface -------------------------------------------

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        if nbytes <= 0:
            raise ValueError(f"request length must be positive, got {nbytes}")
        if not is_write:
            # Reads pass through (server read traffic goes to the spindle).
            return self.backing.submit(offset, nbytes, is_write=False, kind=kind)
        if nbytes > self.accept_limit:
            # Presto declines oversized requests; underlying disk speed.
            self._declined += 1
            return self.backing.submit(offset, nbytes, is_write=True, kind=kind)
        done = self.env.event()
        if self._free.try_get(nbytes):
            # Space available now: reserve synchronously and finish the
            # NVRAM copy with a timeout callback instead of a process —
            # one heap event per accepted write instead of a process
            # lifecycle.  try_get also keeps FIFO fairness: it declines
            # whenever an earlier writer is already queued for space.
            accepted_at = self.env.now
            timer = self.env.timeout(self.copy_overhead + nbytes / self.copy_rate)
            timer.callbacks.append(
                lambda _ev: self._finish_accept(done, offset, nbytes, kind, accepted_at)
            )
        else:
            self.env.process(self._accept(done, offset, nbytes, kind))
        return done

    def queue_depth(self) -> int:
        return self.backing.queue_depth()

    @property
    def declined_count(self) -> int:
        """How many writes were too large for the NVRAM and bypassed it."""
        return self._declined

    @property
    def dirty_bytes(self) -> int:
        """Bytes currently held in NVRAM awaiting (or under) drain."""
        return sum(end - start for start, end in self.dirty_extents)

    @property
    def dirty_extents(self) -> List[Tuple[int, int]]:
        """NVRAM-resident (offset, end) extents: sorted, non-overlapping.

        Includes the extent currently being drained (its bytes stay in NVRAM
        until the backing write completes), merged with any re-dirtied
        overlap so the view is a clean union.
        """
        extents = list(self._dirty)
        if self._draining is not None:
            extents.append(self._draining)
        extents.sort()
        merged: List[Tuple[int, int]] = []
        for start, end in extents:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def crash_recover(self) -> List[Tuple[int, int]]:
        """Extents that survived a crash in NVRAM and must be flushed."""
        return self.dirty_extents

    def reset_stats(self) -> None:
        super().reset_stats()
        self.backing.reset_stats()

    # -- media-fault hooks ---------------------------------------------------

    def inject_latent(self, offset: int, nbytes: int) -> None:
        self.backing.inject_latent(offset, nbytes)

    def heal_latent(self, offset: int, nbytes: int) -> None:
        self.backing.heal_latent(offset, nbytes)

    def latent_overlap(self, offset: int, nbytes: int) -> bool:
        return self.backing.latent_overlap(offset, nbytes)

    def arm_degrade(self, fraction: float, seed: int = 0) -> None:
        """Arm a battery fault: at the next crash, a seeded Bernoulli coin
        per dirty extent loses roughly ``fraction`` of the unflushed NVRAM
        contents (see :meth:`take_degraded`)."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"degrade fraction must be in [0, 1], got {fraction}")
        self._degrade = (fraction, seed)

    def take_degraded(self) -> List[Tuple[int, int]]:
        """Consume an armed battery fault at crash time.

        Returns the (offset, end) extents whose NVRAM copies did *not*
        survive the crash; they are dropped from the dirty set (their
        space returns to the pool) so recovery cannot flush them.  Unarmed
        caches return ``[]`` — the battery held, everything survived.
        """
        if self._degrade is None:
            return []
        fraction, seed = self._degrade
        self._degrade = None
        rng = random.Random(f"nvram-degrade/{seed}")
        lost: List[Tuple[int, int]] = []
        kept: List[Tuple[int, int]] = []
        for start, end in self._dirty:
            if rng.random() < fraction:
                lost.append((start, end))
            else:
                kept.append((start, end))
        self._dirty = kept
        freed = sum(end - start for start, end in lost)
        if freed:
            self._free.put(freed)
        return lost

    # -- internals ----------------------------------------------------------

    def _accept(self, done: Event, offset: int, nbytes: int, kind: str):
        """Slow path: wait for the drain to free NVRAM space first."""
        accepted_at = self.env.now
        yield self._free.get(nbytes)
        yield self.env.timeout(self.copy_overhead + nbytes / self.copy_rate)
        self._finish_accept(done, offset, nbytes, kind, accepted_at)

    def _finish_accept(
        self, done: Event, offset: int, nbytes: int, kind: str, accepted_at: float
    ) -> None:
        """Complete an accepted write once its NVRAM copy time has elapsed."""
        if self.obs.enabled:
            self.obs.emit(
                PHASE_NVRAM_COPY,
                self.name,
                accepted_at,
                self.env.now,
                kind=kind,
                bytes=nbytes,
                offset=offset,
            )
        # Space accounting is backed by the pending (_dirty) set only: the
        # extent under drain frees its own reservation when the flush ends,
        # so a rewrite overlapping it genuinely occupies new space.
        before = sum(end - start for start, end in self._dirty)
        self._insert_extent(offset, offset + nbytes)
        grown = sum(end - start for start, end in self._dirty) - before
        surplus = nbytes - grown
        if surplus > 0:
            # Overwrote bytes that were already dirty: give the space back.
            # This always fits (the bytes came out of our own reservation),
            # so the put completes synchronously.
            self._free.put(surplus)
        self.stats.busy.add_busy(self.copy_overhead + nbytes / self.copy_rate)
        self.stats.record(nbytes, True, kind)
        self._wake_drain()
        done.succeed()

    def _insert_extent(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        placed = False
        for extent_start, extent_end in self._dirty:
            if extent_end < start or extent_start > end:
                if not placed and extent_start > end:
                    merged.append((start, end))
                    placed = True
                merged.append((extent_start, extent_end))
            else:
                start = min(start, extent_start)
                end = max(end, extent_end)
        if not placed:
            merged.append((start, end))
        merged.sort()
        self._dirty = merged

    def _wake_drain(self) -> None:
        if not self._dirty_signal.triggered:
            self._dirty_signal.succeed()

    def _drain(self):
        """Lazy write-back: drain only past the high watermark or once the
        cached data ages out.

        Draining eagerly would put an 8K-request stream on the spindle —
        exactly the pattern §6.6 says is "sub-optimal in both drive
        throughput and CPU utilization".  Waiting lets adjacent extents
        coalesce so the disk sees few, large, contiguous transfers.
        """
        while True:
            if not self._dirty:
                self._dirty_signal = self.env.event()
                yield self._dirty_signal
                self._oldest_insert = self.env.now
                continue
            pending = sum(end - start for start, end in self._dirty)
            over_watermark = pending >= self.drain_high * self.capacity
            aged = self.env.now - self._oldest_insert >= self.drain_max_age
            if not over_watermark and not aged:
                # Poll at a fraction of the age limit; cheap in event count.
                yield self.env.timeout(self.drain_max_age / 4.0)
                continue
            # Drain down to the low watermark (or empty, if age-triggered),
            # sweeping extents elevator-style by address.  The burst is
            # bounded by the bytes present when it started: data arriving
            # *during* the burst waits for the next trigger, so it can
            # coalesce into large extents instead of being chased to the
            # spindle 8K at a time.
            target = self.drain_low * self.capacity if over_watermark else 0.0
            budget = pending - target
            drained = 0.0
            while self._dirty and drained < budget:
                index = next(
                    (
                        i
                        for i, (start, _end) in enumerate(self._dirty)
                        if start >= self._drain_cursor
                    ),
                    0,  # wrap the sweep
                )
                start, end = self._dirty[index]
                take = min(end - start, self.max_flush)
                chunk_end = start + take
                if chunk_end == end:
                    self._dirty.pop(index)
                else:
                    self._dirty[index] = (chunk_end, end)
                self._drain_cursor = chunk_end
                self._draining = (start, chunk_end)
                yield self.backing.submit(start, take, is_write=True, kind="presto-flush")
                self._draining = None
                yield self._free.put(take)
                drained += take
            self._oldest_insert = self.env.now
