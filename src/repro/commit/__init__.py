"""repro.commit — the async WRITE + COMMIT write path (NFSv3 §8 style).

The third answer to the paper's sync-write problem: instead of making
WRITEs stable before the reply (standard), amortizing the commit across
a gathered batch (gather), or absorbing it in NVRAM (Presto), the server
acks unstable WRITEs from volatile memory immediately and shifts the
crash-replay responsibility to the client via a boot verifier and an
explicit COMMIT procedure.

* :class:`~repro.commit.path.AsyncCommitWritePath` — the server half:
  volatile unstable-write log, verifier-stamped replies, COMMIT flushes,
  opportunistic flushing under memory pressure.
* :class:`~repro.commit.tracker.UncommittedTracker` — the client half:
  per-file dirty ranges tagged with the verifier they were written
  under, COMMIT on close and window pressure, full resend on mismatch.
* :func:`~repro.commit.experiment.run` (via ``ExperimentSpec(
  kind="commit")``) — the seeded three-way write-path comparison.
"""

from repro.commit.path import AsyncCommitWritePath, UnstableLog
from repro.commit.tracker import UncommittedTracker

__all__ = ["AsyncCommitWritePath", "UnstableLog", "UncommittedTracker"]
