"""The async-commit write path: unstable WRITEs acked from volatile
memory, an explicit COMMIT that makes ranges stable, and opportunistic
flushing under memory pressure.

The contract (NFSv3 §8, the move the 1994 paper could not yet make):

* an unstable WRITE lands in the buffer cache (``IO_DELAYDATA``) and is
  answered immediately — the reply carries the server's **boot
  verifier**, which changes on every crash/reboot and on replica
  promotion, so clients can detect that volatile data may be gone;
* COMMIT(fhandle, offset, count) flushes the covered range (data, then
  metadata) to stable storage and returns the current verifier; the
  client holds its copy of every unstable range until a COMMIT under the
  same verifier succeeds;
* once the volatile unstable log exceeds ``ServerConfig.
  unstable_limit_bytes``, a background process flushes the heaviest
  files until pressure clears — COMMITs for already-flushed ranges then
  cost only a clean syncdata.

Stable (NFSv2) WRITEs from mixed-version clients take the standard
stable-before-reply path unchanged.  With a replica group, flushed
ranges ship to the backups as a ``stability="commit"`` batch and the
COMMIT reply waits for quorum — an acked COMMIT is a hard guarantee
even across promotion.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.fs.ufs import FsError
from repro.fs.vfs import FWRITE, FWRITE_METADATA, IO_DELAYDATA
from repro.nfs.protocol import Fattr
from repro.obs import (
    PHASE_COMMIT,
    PHASE_REPLICATE,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
    registry_for,
)
from repro.rpc.messages import RPC_HEADER_BYTES
from repro.rpc.server import REPLY_DONE, TransportHandle
from repro.server.standard import StandardWritePath

__all__ = ["AsyncCommitWritePath", "UnstableLog"]


class _Entry:
    """One file's un-COMMITted pieces in the volatile log."""

    __slots__ = ("vnode", "pieces", "low", "high", "nbytes")

    def __init__(self, vnode) -> None:
        self.vnode = vnode
        self.pieces: List[Tuple[int, object]] = []
        self.low = 0
        self.high = 0
        self.nbytes = 0


class UnstableLog:
    """The server's volatile record of unstable-write pieces, per inode.

    Everything here dies in a crash (:meth:`clear`); the durable image
    only ever learns about these bytes through a flush.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _Entry] = {}
        self.buffered_bytes = 0

    def record(self, vnode, offset: int, data) -> None:
        entry = self._entries.get(vnode.ino)
        if entry is None:
            entry = self._entries[vnode.ino] = _Entry(vnode)
            entry.low = offset
            entry.high = offset + len(data)
        entry.pieces.append((offset, data))
        entry.low = min(entry.low, offset)
        entry.high = max(entry.high, offset + len(data))
        entry.nbytes += len(data)
        self.buffered_bytes += len(data)

    def take(self, ino: int, start: int, end: int):
        """Remove and return the pieces intersecting [start, end).

        Returns ``(pieces, low, high)`` where [low, high) covers every
        taken piece — a flush must sync whole pieces, so a COMMIT range
        that splits one widens to include it.
        """
        entry = self._entries.get(ino)
        if entry is None:
            return [], start, end
        taken, kept = [], []
        for offset, data in entry.pieces:
            if offset < end and offset + len(data) > start:
                taken.append((offset, data))
            else:
                kept.append((offset, data))
        if not taken:
            return [], start, end
        low = min(offset for offset, _data in taken)
        high = max(offset + len(data) for offset, data in taken)
        nbytes = sum(len(data) for _offset, data in taken)
        self.buffered_bytes -= nbytes
        if kept:
            entry.pieces = kept
            entry.low = min(offset for offset, _data in kept)
            entry.high = max(offset + len(data) for offset, data in kept)
            entry.nbytes -= nbytes
        else:
            del self._entries[ino]
        return taken, low, high

    def heaviest(self) -> Optional[_Entry]:
        """The entry holding the most buffered bytes (flush this first)."""
        if not self._entries:
            return None
        return max(self._entries.values(), key=lambda entry: entry.nbytes)

    def clear(self) -> None:
        self._entries.clear()
        self.buffered_bytes = 0


class AsyncCommitWritePath:
    """rfs_write/rfs_commit for ``WritePath.ASYNC_COMMIT`` servers."""

    def __init__(self, server) -> None:
        self.server = server
        self.env = server.env
        self.limit = server.config.unstable_limit_bytes
        self.log = UnstableLog()
        #: Stable (NFSv2) writes from mixed-version clients keep the
        #: reference port's stable-before-reply semantics.
        self._stable = StandardWritePath(server)
        self._flushing = False
        metrics = registry_for(server.env)
        prefix = f"{server.host}.commit"
        self.unstable_writes = metrics.counter(f"{prefix}.unstable_writes")
        self.commits = metrics.counter(f"{prefix}.commits")
        self.pressure_flushes = metrics.counter(f"{prefix}.pressure_flushes")
        self.flushed_bytes = metrics.counter(f"{prefix}.flushed_bytes")

    # -- the WRITE side --------------------------------------------------------

    def handle(self, nfsd_id: int, handle: TransportHandle) -> Generator:
        """A stable WRITE: delegate to the standard path."""
        return (yield from self._stable.handle(nfsd_id, handle))

    def handle_unstable(self, handle: TransportHandle) -> Generator:
        """An unstable WRITE: cache the data, log it, reply with the
        verifier — then flush in the background if memory pressure says so."""
        args = handle.call.args
        try:
            vnode = self.server.vnodes.by_fhandle(args.fhandle)
        except FsError as exc:
            yield from self.server.reply(handle, exc.code, None)
            return REPLY_DONE
        self.unstable_writes.add(1)
        trace = self.server.trace_of(handle)
        lock_requested = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            self.server.emit_span(
                trace, PHASE_VNODE_WAIT, lock_requested, ino=vnode.ino
            )
            try:
                yield from vnode.vop_write(args.offset, args.data, IO_DELAYDATA)
            except FsError as exc:
                yield from self.server.reply(handle, exc.code, None)
                return REPLY_DONE
            fattr = Fattr.from_inode(vnode.inode)
            self.log.record(vnode, args.offset, args.data)
        cached_at = self.env.now
        yield from self.server.reply(
            handle, "ok", (fattr, self.server.boot_verifier)
        )
        self.server.emit_span(trace, PHASE_REPLY, cached_at, unstable=True)
        if self.log.buffered_bytes > self.limit and not self._flushing:
            self._flushing = True
            self.env.process(
                self._pressure_flush(), name=f"commit-flush@{self.server.host}"
            )
        return REPLY_DONE

    # -- the COMMIT side -------------------------------------------------------

    def commit(self, args) -> Generator:
        """COMMIT action routine: make [offset, offset+count) stable and
        return the boot verifier the client must compare against."""
        vnode = self.server.vnodes.by_fhandle(args.fhandle)
        yield from self._flush(vnode, args.offset, args.offset + args.count)
        self.commits.add(1)
        return self.server.boot_verifier, RPC_HEADER_BYTES

    def _flush(self, vnode, start: int, end: int) -> Generator:
        """Flush the logged pieces intersecting [start, end): data blocks,
        then metadata, under the vnode lock — and, in a replica group,
        ship them to the backups before the caller may reply."""
        server = self.server
        entered = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            pieces, low, high = self.log.take(vnode.ino, start, end)
            low, high = min(low, start), max(high, end)
            flush_started = self.env.now
            yield from vnode.vop_syncdata(low, high)
            yield from vnode.vop_fsync(FWRITE | FWRITE_METADATA)
            if self.server.obs.enabled:
                self.server.obs.emit(
                    PHASE_COMMIT,
                    server.host,
                    flush_started,
                    self.env.now,
                    ino=vnode.ino,
                    bytes=sum(len(data) for _offset, data in pieces),
                )
            # Check inside the lock; requests flushed across a crash
            # belong to the dead incarnation and are exempt (their clients
            # replay them under the new verifier).
            if pieces and entered > getattr(server, "last_crash_time", -1.0):
                for offset, data in pieces:
                    server.check_stable(vnode, offset, data, require_content=False)
            replicator = getattr(server, "replicator", None)
            if pieces and replicator is not None and replicator.active:
                fattr = Fattr.from_inode(vnode.inode)
                replicate_started = self.env.now
                yield from replicator.commit_wait(
                    [
                        replicator.write_op(vnode, offset, data, None, fattr)
                        for offset, data in pieces
                    ],
                    stability="commit",
                )
                if self.server.obs.enabled:
                    self.server.obs.emit(
                        PHASE_REPLICATE,
                        server.host,
                        replicate_started,
                        self.env.now,
                        ino=vnode.ino,
                    )
        for _offset, data in pieces:
            self.flushed_bytes.add(len(data))

    def _pressure_flush(self) -> Generator:
        """Background flusher: drain the heaviest files until the volatile
        log is back under the memory-pressure limit."""
        try:
            while self.log.buffered_bytes > self.limit:
                entry = self.log.heaviest()
                if entry is None:
                    break
                self.pressure_flushes.add(1)
                yield from self._flush(entry.vnode, entry.low, entry.high)
        finally:
            self._flushing = False

    # -- crash surface ---------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash path: the unstable log is RAM and dies with the box."""
        self.log.clear()
