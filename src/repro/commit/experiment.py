"""The ``repro commit`` experiment: is the async WRITE + COMMIT path a
win, and does its replay contract hold?

Four sections, one report:

* **Bench** — the seeded sequential copy per write path (standard /
  gather / async_commit) × Presto off/on: client throughput, p50/p99
  write latency, disk writes per MB.  The headline verdict
  (``async_beats_standard``) reads the plain cells: async must beat the
  standard path on both p50 write latency and throughput.
* **Pressure** — a multi-client fleet against a deliberately small
  ``unstable_limit_bytes``, proving both pressure valves open: the
  server's background flusher (``pressure_flushes``) and the client's
  window-pressure COMMITs (``pressure_commits``), with the crash oracle
  attached throughout.
* **Replica** — the K=1 crash-and-promote storm (repro.replica) run on
  the standard and async_commit paths: promotion bumps the verifier, so
  async clients must replay into the promoted backup, and the group
  oracle asserts no COMMIT-acked write is ever lost.
* **Chaos** — three named probes of the verifier lifecycle: a crash in
  the middle of the unstable write window, a crash parked between the
  last WRITE and the COMMIT, and a promotion landing mid-COMMIT-train.

Everything is seeded; ``--json`` output is byte-identical across reruns
(no wall-clock-derived field is emitted).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.bench import PRESTO_BYTES, run_bench_cell
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.faults.controller import FaultController
from repro.faults.events import FaultPlan, OnSpan, ServerCrash
from repro.faults.oracle import Oracle
from repro.net.spec import FDDI
from repro.obs import PHASE_REPLY
from repro.payload import PAYLOAD_FLYWEIGHT, PAYLOAD_FULL
from repro.sim import AllOf
from repro.workload.sequential import patterned_chunk, write_file

__all__ = ["CommitConfig", "CommitReport", "run_commit"]

COMMIT_SCHEMA = "repro.commit/1"

#: The three-way comparison the experiment exists for.
BENCH_PATHS = ("standard", "gather", "async_commit")


@dataclass
class CommitConfig:
    """One commit experiment: the bench grid, the valves, the probes."""

    #: Write paths for the bench grid (async_commit must be present for
    #: the verdict; standard must be present as its baseline).
    write_paths: Sequence[str] = BENCH_PATHS
    presto_modes: Sequence[bool] = (False, True)
    file_mb: float = 1.0
    biods: int = 7
    netspec: object = FDDI
    seed: int = 0
    #: Pressure section: fleet size and per-file size (KB).  With the
    #: shrunken ceiling below, both pressure valves must open.
    pressure_clients: int = 3
    pressure_file_kb: int = 96
    #: Deliberately small volatile ceiling (bytes) for the pressure
    #: section — about one client's file, so the background flusher runs.
    pressure_limit_bytes: int = 64 * 1024
    #: Replica section: shard count and storm size for the K=1 arms.
    replica_servers: int = 2
    replica_clients: int = 3
    replica_file_kb: int = 32
    replica_crashes: int = 2
    #: Run the chaos probes (crash mid-window, crash before COMMIT,
    #: promotion mid-COMMIT).
    chaos: bool = True

    def __post_init__(self) -> None:
        if "async_commit" not in self.write_paths:
            raise ValueError("the commit experiment needs the async_commit arm")
        if "standard" not in self.write_paths:
            raise ValueError("the verdict needs the standard baseline arm")
        if self.file_mb <= 0:
            raise ValueError(f"file_mb must be positive, got {self.file_mb}")
        if self.pressure_limit_bytes < 1:
            raise ValueError(
                f"pressure_limit_bytes must be >= 1, got {self.pressure_limit_bytes}"
            )
        if self.replica_servers < 1 or self.replica_clients < 1:
            raise ValueError("replica section needs at least one server and client")


# -- the bench grid -------------------------------------------------------------


def _bench_cells(config: CommitConfig, progress=None) -> List[dict]:
    cells = []
    for write_path in config.write_paths:
        for presto in config.presto_modes:
            testbed_config = TestbedConfig(
                netspec=config.netspec,
                write_path=write_path,
                nbiods=config.biods,
                presto_bytes=PRESTO_BYTES if presto else None,
                seed=config.seed,
            )
            cell = run_bench_cell(
                testbed_config, config.file_mb, payload=PAYLOAD_FLYWEIGHT
            )
            # The one wall-clock-derived field; everything else in the
            # cell is simulated and byte-stable under the seed.
            cell.pop("sim_ops_per_sec", None)
            cells.append(cell)
            if progress is not None:
                progress(
                    f"bench {cell['write_path']}/"
                    f"{'presto' if presto else 'plain'}: "
                    f"{cell['client_kb_per_sec']:g} KB/s, "
                    f"p50 {cell['write_latency_ms']['p50']:g} ms"
                )
    return cells


# -- the pressure section -------------------------------------------------------


def _run_pressure(config: CommitConfig) -> dict:
    """A fleet against a tiny volatile ceiling: both valves must open."""
    from repro.overload.window import WriteWindow

    testbed = Testbed(
        TestbedConfig(
            netspec=config.netspec,
            write_path="async_commit",
            nbiods=2,
            seed=config.seed,
            unstable_limit_bytes=config.pressure_limit_bytes,
        )
    )
    env = testbed.env
    oracle = Oracle(testbed)
    writers = []
    nbytes = config.pressure_file_kb * 1024
    for index in range(config.pressure_clients):
        # Pin the window (a clean wire would ramp it past the file size):
        # with 2 slots the client COMMITs every 8 uncommitted ranges.
        client = testbed.add_client(
            write_window=WriteWindow(initial=2, maximum=2)
        )
        oracle.attach(client)
        for file_index in range(2):
            writers.append(
                env.process(
                    write_file(
                        env,
                        client,
                        f"pressure-{index}-{file_index}",
                        nbytes,
                        think_time=0.0005,
                    ),
                    name=f"pressure:{index}:{file_index}",
                )
            )
    env.run(until=AllOf(env, writers))
    env.run()  # drain flushers, destage, watchdogs
    oracle.check("final")
    path = testbed.server.write_path
    trackers = [c.tracker for c in testbed.clients if c.tracker is not None]
    return {
        "clients": config.pressure_clients,
        "file_kb": config.pressure_file_kb,
        "unstable_limit_bytes": config.pressure_limit_bytes,
        "unstable_writes": int(path.unstable_writes.value),
        "commits": int(path.commits.value),
        "pressure_flushes": int(path.pressure_flushes.value),
        "flushed_bytes": int(path.flushed_bytes.value),
        "client_commits": sum(int(t.commits_sent.value) for t in trackers),
        "client_pressure_commits": sum(
            int(t.pressure_commits.value) for t in trackers
        ),
        "residual_uncommitted_bytes": sum(
            t.uncommitted_bytes() for t in trackers
        ),
        "committed_acks": oracle.committed_acks,
        "violations": list(oracle.violations),
        "clean": oracle.clean,
    }


# -- the replica section --------------------------------------------------------


def _run_replica_arms(config: CommitConfig, progress=None) -> Dict[str, dict]:
    """The K=1 promote storm on the standard and async_commit paths."""
    from repro.cluster.fleet import ClusterConfig
    from repro.replica.experiment import replica_storm, run_replica_arm

    arms: Dict[str, dict] = {}
    for write_path in ("standard", "async_commit"):
        arm = run_replica_arm(
            ClusterConfig(
                servers=config.replica_servers,
                write_path=write_path,
                replicas=1,
                seed=config.seed,
            ),
            clients=config.replica_clients,
            files_per_client=2,
            file_kb=config.replica_file_kb,
            crashes=replica_storm(
                config.replica_servers, config.replica_crashes, promote=True
            ),
            payload=PAYLOAD_FULL,
        )
        arms[write_path] = arm.to_dict()
        if progress is not None:
            progress(
                f"replica {write_path}: {arm.crashes} crashes, "
                f"{arm.promotions} promotions, "
                f"{'clean' if arm.clean else 'VIOLATIONS'}"
            )
    return arms


# -- the chaos probes -----------------------------------------------------------


def _async_testbed(config: CommitConfig, tracing: bool = False) -> Testbed:
    return Testbed(
        TestbedConfig(
            netspec=config.netspec,
            write_path="async_commit",
            nbiods=4,
            seed=config.seed,
            tracing=tracing,
        )
    )


def _probe_record(name: str, oracle, client, extra: dict) -> dict:
    tracker = client.tracker
    record = {
        "name": name,
        "unstable_acks": oracle.unstable_acks,
        "committed_acks": oracle.committed_acks,
        "commits_sent": int(tracker.commits_sent.value),
        "ranges_replayed": int(tracker.ranges_replayed.value),
        "violations": list(oracle.violations),
    }
    record.update(extra)
    record["clean"] = not record["violations"]
    return record


def _probe_crash_mid_window(config: CommitConfig) -> dict:
    """The server dies the instant an unstable WRITE is acked — data is
    sitting in the volatile log mid-stream.  The close-time COMMIT sees
    the new verifier and replays everything."""
    testbed = _async_testbed(config, tracing=True)
    client = testbed.add_client()
    oracle = Oracle(testbed)
    oracle.attach(client)
    plan = FaultPlan(
        name="crash-mid-window",
        events=(ServerCrash(OnSpan(PHASE_REPLY, occurrence=3), reboot_delay=0.0),),
    )
    controller = FaultController(testbed, plan, oracle=oracle).start()
    env = testbed.env
    proc = env.process(
        write_file(env, client, "midwindow", 64 * 1024, think_time=0.0005),
        name="probe-midwindow",
    )
    env.run(until=proc)
    env.run()
    oracle.check("final")
    return _probe_record(
        "crash_mid_unstable_window",
        oracle,
        client,
        {"crashes": controller.crashes},
    )


def _probe_crash_before_commit(config: CommitConfig) -> dict:
    """Every WRITE acked, nothing COMMITted, then the crash: the widest
    possible window of client-held volatile data.  The close must land
    the entire file under the new verifier."""
    testbed = _async_testbed(config)
    client = testbed.add_client()
    oracle = Oracle(testbed)
    oracle.attach(client)
    env = testbed.env
    state = {"crashes": 0}

    def driver(env):
        open_file = yield from client.create("parked")
        for index in range(8):
            yield from client.write_stream(open_file, patterned_chunk(index))
        yield env.timeout(0.1)  # every unstable WRITE answered, none committed
        testbed.server.simulate_crash()
        state["crashes"] += 1
        oracle.check("crash")  # legal: pending ranges carry no promise yet
        yield from client.close(open_file)  # COMMIT -> mismatch -> replay

    env.run(until=env.process(driver(env), name="probe-parked"))
    env.run()
    oracle.check("final")
    return _probe_record(
        "crash_between_write_and_commit", oracle, client, {"crashes": state["crashes"]}
    )


def _probe_promotion_mid_commit(config: CommitConfig) -> dict:
    """A replicated shard's primary dies mid-workload and its backup is
    promoted; the promotion bumps the verifier, so every in-flight
    COMMIT train mismatches and replays into the promoted backup."""
    from repro.cluster.failover import FailoverController, ShardCrash
    from repro.cluster.fleet import Cluster, ClusterConfig
    from repro.cluster.oracle import ClusterOracle

    cluster = Cluster(
        ClusterConfig(
            servers=config.replica_servers,
            write_path="async_commit",
            replicas=1,
            seed=config.seed,
        )
    )
    oracle = ClusterOracle(cluster)
    env = cluster.env
    writers = []
    for index in range(config.replica_clients):
        client = cluster.add_client()
        oracle.attach(client)
        writers.append(
            env.process(
                write_file(
                    env,
                    client,
                    f"promoted-{index}",
                    # 4x the replica-arm size so the write trains are
                    # still in flight when the promotion lands and the
                    # verifier bump forces a mid-train replay.
                    config.replica_file_kb * 4 * 1024,
                    think_time=0.0005,
                ),
                name=f"probe-promote:{index}",
            )
        )
    # The workload runs ~0.6s and every client holds its full file
    # uncommitted between t=0.2 and t=0.3; firing the promotion inside
    # that window guarantees in-flight ranges tagged with the dead
    # primary's verifier.
    crashes = [ShardCrash(at=0.25, shard=0, promote=True)]
    controller = FailoverController(cluster, crashes, oracle=oracle).start()
    env.run(until=AllOf(env, writers))
    env.run()
    oracle.check("final")
    oracle.check_divergence("quiesce")
    trackers = [c.tracker for c in cluster.clients if c.tracker is not None]
    record = {
        "name": "promotion_mid_commit",
        "crashes": controller.crashes,
        "promotions": controller.promotions,
        "unstable_acks": sum(
            oracle.shard(s.host).unstable_acks for s in cluster.servers
        ),
        "committed_acks": sum(
            oracle.shard(s.host).committed_acks for s in cluster.servers
        ),
        "commits_sent": sum(int(t.commits_sent.value) for t in trackers),
        "ranges_replayed": sum(int(t.ranges_replayed.value) for t in trackers),
        "violations": list(oracle.violations),
    }
    record["clean"] = not record["violations"]
    return record


# -- the report -----------------------------------------------------------------


@dataclass
class CommitReport:
    """Aggregated commit-experiment outcome, canonically serializable."""

    config: CommitConfig
    bench: List[dict] = field(default_factory=list)
    pressure: Optional[dict] = None
    replica: Dict[str, dict] = field(default_factory=dict)
    probes: List[dict] = field(default_factory=list)

    def _plain_cell(self, write_path: str) -> Optional[dict]:
        for cell in self.bench:
            if cell["write_path"] == write_path and not cell["presto"]:
                return cell
        return None

    @property
    def comparison(self) -> Optional[dict]:
        """The plain async_commit cell against the plain standard cell."""
        standard = self._plain_cell("standard")
        async_cell = self._plain_cell("async_commit")
        if standard is None or async_cell is None:
            return None
        base_p50 = standard["write_latency_ms"]["p50"]
        base_throughput = standard["client_kb_per_sec"]
        return {
            "p50_vs_standard": (
                round(async_cell["write_latency_ms"]["p50"] / base_p50, 4)
                if base_p50
                else None
            ),
            "throughput_vs_standard": (
                round(async_cell["client_kb_per_sec"] / base_throughput, 4)
                if base_throughput
                else None
            ),
        }

    @property
    def async_beats_standard(self) -> bool:
        comparison = self.comparison
        return (
            comparison is not None
            and comparison["p50_vs_standard"] is not None
            and comparison["p50_vs_standard"] < 1.0
            and comparison["throughput_vs_standard"] is not None
            and comparison["throughput_vs_standard"] > 1.0
        )

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        if self.pressure is not None:
            out.extend(f"pressure: {v}" for v in self.pressure["violations"])
        for write_path, arm in sorted(self.replica.items()):
            out.extend(f"replica/{write_path}: {v}" for v in arm["violations"])
            if arm["stable_violations"]:
                out.append(
                    f"replica/{write_path}: {arm['stable_violations']} "
                    "stable-before-reply violations"
                )
        for probe in self.probes:
            out.extend(f"chaos/{probe['name']}: {v}" for v in probe["violations"])
        return out

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def ok(self) -> bool:
        """The exit-status verdict: contract held *and* the path wins."""
        return self.clean and self.async_beats_standard

    def to_dict(self) -> dict:
        config = self.config
        return {
            "schema": COMMIT_SCHEMA,
            "seed": config.seed,
            "file_mb": config.file_mb,
            "biods": config.biods,
            "write_paths": list(config.write_paths),
            "bench": self.bench,
            "comparison": self.comparison,
            "async_beats_standard": self.async_beats_standard,
            "pressure": self.pressure,
            "replica": self.replica,
            "chaos": self.probes,
            "clean": self.clean,
            "ok": self.ok,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _run_commit(config: Optional[CommitConfig] = None, progress=None) -> CommitReport:
    """Run the whole comparison; ``progress`` (if given) is called with a
    line of text after every completed section."""
    config = config or CommitConfig()
    report = CommitReport(config=config)
    report.bench = _bench_cells(config, progress=progress)
    report.pressure = _run_pressure(config)
    if progress is not None:
        valves = (
            f"{report.pressure['pressure_flushes']} server flushes, "
            f"{report.pressure['client_pressure_commits']} client pressure COMMITs"
        )
        progress(f"pressure: {valves}")
    report.replica = _run_replica_arms(config, progress=progress)
    if config.chaos:
        for probe in (
            _probe_crash_mid_window,
            _probe_crash_before_commit,
            _probe_promotion_mid_commit,
        ):
            record = probe(config)
            report.probes.append(record)
            if progress is not None:
                status = "clean" if record["clean"] else "VIOLATED"
                progress(
                    f"chaos {record['name']}: {status} "
                    f"({record['ranges_replayed']} ranges replayed)"
                )
    return report


def run_commit(config: Optional[CommitConfig] = None, progress=None) -> CommitReport:
    """Public entry point (the runner facade calls :func:`_run_commit`)."""
    return _run_commit(config, progress=progress)
