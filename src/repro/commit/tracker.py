"""Client-side COMMIT bookkeeping for unstable (NFSv3-style) writes.

The client half of the async WRITE + COMMIT contract: every range sent
with ``stable=False`` is held here, tagged with the **write verifier**
the server's reply carried, until a COMMIT returning the *same* verifier
succeeds.  A different verifier in any reply means the server crashed,
rebooted, or a backup was promoted — the volatile data may be gone, so
the client resends every uncommitted range before proceeding.

COMMITs are issued

* at ``close(2)`` (sync-on-close, like the flush of outstanding writes),
* under **window pressure** — once a file's uncommitted ranges exceed a
  multiple of the AIMD :class:`~repro.overload.window.WriteWindow` slot
  budget (or the biod pool without a window), the writer COMMITs inline
  before pushing more, bounding the replay the client must be ready to
  perform, and
* on lease recalls (:meth:`~repro.nfs.cache.CacheStack.handle_recall`),
  where flushed-but-uncommitted data must be made stable before the
  recall ack hands the file to another client.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.nfs.protocol import PROC_COMMIT, CommitArgs, NfsError
from repro.obs import registry_for
from repro.sim import Event

__all__ = ["UncommittedTracker"]

#: A COMMIT train that still mismatches after this many resend rounds
#: gives up (EIO) — the server is crash-looping faster than we replay.
MAX_COMMIT_ATTEMPTS = 3

#: Window-pressure threshold: COMMIT once a file holds this many
#: uncommitted ranges per write-window slot (or per biod without a
#: window).  4 deep keeps the COMMIT amortized over a full train.
RANGES_PER_SLOT = 4


class UncommittedTracker:
    """Per-file uncommitted write ranges, tagged with their verifier."""

    def __init__(self, client) -> None:
        self.client = client
        self.env = client.env
        #: fhandle -> list of [offset, data, verifier] (mutable rows so a
        #: discharge can drop exactly the rows a COMMIT snapshot covered).
        self._ranges: Dict[object, List[list]] = {}
        #: fhandle -> Event: a COMMIT train is running for the file;
        #: concurrent committers wait on it instead of doubling up.
        self._inflight: Dict[object, Event] = {}
        metrics = registry_for(client.env)
        prefix = f"nfs.{client.rpc.endpoint.host}"
        self.commits_sent = metrics.counter(f"{prefix}.commits")
        self.ranges_replayed = metrics.counter(f"{prefix}.replayed_ranges")
        self.pressure_commits = metrics.counter(f"{prefix}.pressure_commits")

    # -- bookkeeping -----------------------------------------------------------

    def record(self, fhandle, offset: int, data, verifier: int) -> None:
        """An unstable WRITE was acked under ``verifier``: hold the range."""
        self._ranges.setdefault(fhandle, []).append([offset, data, verifier])

    def ranges(self, fhandle) -> List[tuple]:
        """The file's uncommitted ``(offset, data)`` pairs (test surface)."""
        return [(offset, data) for offset, data, _v in self._ranges.get(fhandle, [])]

    def has_ranges(self, fhandle) -> bool:
        return bool(self._ranges.get(fhandle))

    def uncommitted_bytes(self) -> int:
        return sum(
            len(data)
            for rows in self._ranges.values()
            for _offset, data, _v in rows
        )

    def stale_files(self, verifier: int) -> List[object]:
        """Files holding ranges written under a different verifier."""
        return [
            fhandle
            for fhandle, rows in self._ranges.items()
            if any(v != verifier for _offset, _data, v in rows)
        ]

    def _pressure_limit(self) -> int:
        window = self.client.write_window
        if window is not None:
            slots = window.slots
        else:
            slots = max(1, self.client.nbiods)
        return max(2, slots) * RANGES_PER_SLOT

    def over_pressure(self, fhandle) -> bool:
        """Should the writer COMMIT inline before pushing more?"""
        if fhandle in self._inflight:
            return False  # a train is already draining the file
        return len(self._ranges.get(fhandle, ())) >= self._pressure_limit()

    # -- the COMMIT train ------------------------------------------------------

    def commit(self, fhandle) -> Generator:
        """COMMIT the file's uncommitted ranges.

        On a verifier mismatch (any tracked range written under a
        different incarnation than the COMMIT reply's) the volatile data
        may be gone: resend every range — they re-record under the new
        verifier — and COMMIT again.  Gives up with EIO after
        :data:`MAX_COMMIT_ATTEMPTS` rounds.
        """
        while fhandle in self._inflight:
            yield self._inflight[fhandle]
        if not self._ranges.get(fhandle):
            return
        gate = self._inflight[fhandle] = Event(self.env)
        try:
            for _attempt in range(MAX_COMMIT_ATTEMPTS):
                snapshot = list(self._ranges.get(fhandle, ()))
                if not snapshot:
                    return
                lo = min(offset for offset, _data, _v in snapshot)
                hi = max(offset + len(data) for offset, data, _v in snapshot)
                commit_verf = yield from self.client._call(
                    PROC_COMMIT, CommitArgs(fhandle, lo, hi - lo)
                )
                self.commits_sent.add(1)
                if all(v == commit_verf for _offset, _data, v in snapshot):
                    self._discharge(fhandle, snapshot)
                    return
                # The server lost an incarnation under us; replay.
                self.ranges_replayed.add(len(snapshot))
                ids = {id(row) for row in snapshot}
                kept = [
                    row
                    for row in self._ranges.get(fhandle, [])
                    if id(row) not in ids
                ]
                self._ranges[fhandle] = kept
                for offset, data, _v in snapshot:
                    yield from self.client._replay_write(fhandle, offset, data)
            raise NfsError("EIO")
        finally:
            del self._inflight[fhandle]
            gate.succeed()

    def _discharge(self, fhandle, snapshot: List[list]) -> None:
        """A COMMIT under the right verifier succeeded: the covered
        ranges are durable — release them and tell the oracle hook."""
        ids = {id(row) for row in snapshot}
        kept = [row for row in self._ranges.get(fhandle, []) if id(row) not in ids]
        if kept:
            self._ranges[fhandle] = kept
        else:
            self._ranges.pop(fhandle, None)
        hook = self.client.on_commit_acked
        if hook is not None:
            for offset, data, _v in snapshot:
                hook(fhandle, offset, data)

    def commit_all(self) -> Generator:
        """COMMIT every file with uncommitted ranges (quiesce helper)."""
        for fhandle in list(self._ranges):
            yield from self.commit(fhandle)

    def replay_stale(self, verifier: int) -> Generator:
        """A reply carried ``verifier``; every file holding ranges tagged
        with a different one resends (via its COMMIT train's mismatch
        round) before the caller proceeds."""
        for fhandle in self.stale_files(verifier):
            yield from self.commit(fhandle)
