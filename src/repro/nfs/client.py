"""NFS client with biod write-behind and sync-on-close semantics (§4.1).

The behaviours write gathering exploits all live here:

* application writes accumulate in an 8K client cache block; when the block
  fills ("needs to go to the wire"), it becomes an NFS WRITE request;
* the request is handed to an idle biod, letting the application continue —
  this is what makes several writes for the same file arrive at the server
  at about the same time;
* if no biod is free, the application itself blocks performing the RPC
  (client/server flow control);
* ``close(2)`` blocks until every outstanding write has been answered,
  mostly to surface an ENOSPC from an earlier asynchronous write.

Setting ``nbiods=0`` yields the "dumb PC" single-threaded client of §6.10.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.fs.vfs import FileHandle
from repro.nfs.protocol import (
    NFS_MAX_DATA,
    PROC_CREATE,
    PROC_GETATTR,
    PROC_LOOKUP,
    PROC_READ,
    PROC_READDIR,
    PROC_REMOVE,
    PROC_READLINK,
    PROC_RENAME,
    PROC_SETATTR,
    PROC_STATFS,
    PROC_SYMLINK,
    PROC_WRITE,
    WEIGHT_OF,
    CreateArgs,
    LookupArgs,
    NfsError,
    ReadArgs,
    RemoveArgs,
    RenameArgs,
    SetattrArgs,
    SymlinkArgs,
    WriteArgs,
    call_size,
    reply_size,
)
from repro.obs import registry_for
from repro.payload import Extent, ExtentChain, is_bytes_payload
from repro.rpc.client import RpcClient, RpcTimeoutError
from repro.sim import AllOf, Environment, Event

__all__ = ["NfsClient", "OpenFile"]


class OpenFile:
    """Client-side state for one open file."""

    def __init__(self, fhandle: FileHandle, name: str) -> None:
        self.fhandle = fhandle
        self.name = name
        #: Write cursor for sequential writes via write_stream().
        self.cursor = 0
        #: Partial client cache block not yet "gone to the wire".
        self.pending = bytearray()
        self.pending_offset = 0
        #: Completion events of writes handed off to biods.
        self.outstanding: List[Event] = []
        #: First asynchronous error, reported at close (sync-on-close).
        self.error: Optional[str] = None
        #: Read-ahead state: where a sequential reader's next read would
        #: start, and prefetches in flight (offset -> completion event).
        self.read_cursor = 0
        self.prefetched: dict = {}
        #: File size as last reported by the server (bounds read-ahead).
        self.known_size: Optional[int] = None


class NfsClient:
    """One client host's NFS layer."""

    def __init__(
        self,
        env: Environment,
        rpc: RpcClient,
        nbiods: int = 4,
        write_cpu: float = 0.0003,
        nfs_version: int = 2,
        read_ahead: bool = False,
        write_window=None,
    ) -> None:
        if nbiods < 0:
            raise ValueError(f"nbiods must be >= 0, got {nbiods}")
        if nfs_version not in (2, 3):
            raise ValueError(f"nfs_version must be 2 or 3, got {nfs_version}")
        self.env = env
        self.rpc = rpc
        self.nbiods = nbiods
        #: 2 = stable-before-reply writes; 3 = unstable writes + COMMIT
        #: ("reliable asynchronous writes", the paper's §8).
        self.nfs_version = nfs_version
        #: Biods also "perform client read-ahead" (§4.1); off by default so
        #: read traffic is explicit unless a workload opts in.
        self.read_ahead = read_ahead
        #: Per-write client-side kernel work before the request hits the wire.
        self.write_cpu = write_cpu
        #: Optional AIMD :class:`~repro.overload.window.WriteWindow`: caps
        #: outstanding write-behind at ``min(nbiods, window.slots)`` and is
        #: wired into the RPC layer as its congestion listener.
        self.write_window = write_window
        if write_window is not None:
            rpc.congestion = write_window
        self._busy_biods = 0
        metrics = registry_for(env)
        prefix = f"nfs.{rpc.endpoint.host}"
        self.bytes_written = metrics.counter(f"{prefix}.bytes_written")
        self.write_latency = metrics.tally(f"{prefix}.write_latency")
        self.biod_handoffs = metrics.counter(f"{prefix}.biod_handoffs")
        self.blocked_writes = metrics.counter(f"{prefix}.blocked_writes")
        self.readahead_hits = metrics.counter(f"{prefix}.readahead_hits")
        #: User-level operations (the syscall view: open/read/write/close...),
        #: the denominator of rpcs_per_op.  The numerator is the transport's
        #: completed-call counter — for a cluster client every rack transport
        #: shares the same host name and therefore the same counter.
        self.user_ops = metrics.counter(f"{prefix}.user_ops")
        self.rpcs_per_op = metrics.ratio(
            f"{prefix}.rpcs_per_op",
            metrics.counter(f"rpc.{rpc.endpoint.host}.completed"),
            self.user_ops,
        )
        #: Optional :class:`~repro.nfs.cache.CacheStack` (repro.lease);
        #: installed by its constructor, None = uncached pre-lease client.
        self.cache = None
        self.root_fhandle: FileHandle = (2, 0)
        #: Crash-consistency hook (repro.faults.Oracle): called as
        #: ``(fhandle, offset, data)`` the instant a *stable* WRITE's ok
        #: reply lands — the moment the server's durability promise binds.
        self.on_write_acked = None
        #: Async-commit hooks (repro.faults.Oracle): an unstable WRITE was
        #: acked (no durability promise yet) / a COMMIT under the matching
        #: verifier succeeded (the promise binds now).
        self.on_unstable_acked = None
        self.on_commit_acked = None
        #: Integrity hook (repro.faults.Oracle): called as
        #: ``(fhandle, offset, data)`` when a READ's ok reply lands — the
        #: end-to-end contract that acked reads match acked writes.
        self.on_read_acked = None
        #: NFSv3: uncommitted ranges tagged with their write verifier,
        #: COMMITted on close / window pressure, resent on mismatch.
        self.tracker = None
        if nfs_version == 3:
            from repro.commit.tracker import UncommittedTracker

            self.tracker = UncommittedTracker(self)

    # -- generic RPC wrapper ---------------------------------------------------

    def _call(self, proc: str, args) -> Generator:
        try:
            reply = yield from self.rpc.call(
                proc,
                args,
                size=call_size(proc, args),
                reply_size=reply_size(proc, args),
                weight=WEIGHT_OF[proc],
            )
        except RpcTimeoutError:
            # Soft mount: an exhausted retry budget surfaces as ETIMEDOUT.
            raise NfsError("ETIMEDOUT") from None
        if self.cache is not None and reply.lease:
            # Grants ride even on error replies (an ENOENT lookup still
            # grants the dir lease), so learn them before raising.
            self.cache.learn_grants(reply.lease)
        if not reply.ok:
            raise NfsError(reply.status)
        return reply.result

    # -- namespace operations ----------------------------------------------------

    def mount(self, path: str = "/export") -> Generator:
        """MOUNT protocol: fetch the export's root file handle.

        Optional — clients default to the well-known root handle so the
        write-gathering experiments stay minimal — but real clients mount
        first, and tests exercise the EACCES path for unexported trees.
        """
        from repro.nfs.protocol import PROC_MOUNT

        self.user_ops.add(1)
        fhandle, _fattr = yield from self._call(PROC_MOUNT, path)
        self.root_fhandle = fhandle
        return fhandle

    def umount(self, path: str = "/export") -> Generator:
        from repro.nfs.protocol import PROC_UMOUNT

        self.user_ops.add(1)
        return (yield from self._call(PROC_UMOUNT, path))

    def lookup(self, name: str, dir_fhandle: Optional[FileHandle] = None) -> Generator:
        """LOOKUP: returns (fhandle, fattr).

        With a cache stack, positive *and* negative dirent entries are
        served locally while the directory's lease is valid.
        """
        self.user_ops.add(1)
        dir_fh = dir_fhandle or self.root_fhandle
        if self.cache is not None:
            from repro.nfs.cache import NEGATIVE

            hit = self.cache.dirent_hit(dir_fh, name)
            if hit is NEGATIVE:
                raise NfsError("ENOENT")
            if hit is not None:
                return hit
        args = LookupArgs(dir_fh, name)
        try:
            result = yield from self._call(PROC_LOOKUP, args)
        except NfsError as exc:
            if self.cache is not None and exc.code == "ENOENT":
                self.cache.store_negative(dir_fh, name)
            raise
        if self.cache is not None:
            self.cache.store_dirent(dir_fh, name, result)
        return result

    def create(self, name: str, dir_fhandle: Optional[FileHandle] = None) -> Generator:
        """CREATE: returns an :class:`OpenFile` for the new file."""
        self.user_ops.add(1)
        dir_fh = dir_fhandle or self.root_fhandle
        args = CreateArgs(dir_fh, name)
        result = yield from self._call(PROC_CREATE, args)
        if self.cache is not None:
            self.cache.note_local_create(dir_fh, name, result)
        fhandle, _fattr = result
        return OpenFile(fhandle, name)

    def open(self, name: str, dir_fhandle: Optional[FileHandle] = None) -> Generator:
        """LOOKUP and wrap in an :class:`OpenFile`.

        Close-to-open consistency: unless the file's lease still covers our
        cached attributes, open revalidates them with a GETATTR.
        """
        fhandle, fattr = yield from self.lookup(name, dir_fhandle)
        if self.cache is not None and not self.cache.lease_valid(fhandle):
            fattr = yield from self._call(PROC_GETATTR, fhandle)
            self.cache.store_attr(fhandle, fattr)
        open_file = OpenFile(fhandle, name)
        open_file.known_size = fattr.size  # bounds read-ahead
        return open_file

    def remove(self, name: str, dir_fhandle: Optional[FileHandle] = None) -> Generator:
        self.user_ops.add(1)
        dir_fh = dir_fhandle or self.root_fhandle
        args = RemoveArgs(dir_fh, name)
        result = yield from self._call(PROC_REMOVE, args)
        if self.cache is not None:
            self.cache.note_local_remove(dir_fh, name)
        return result

    def getattr(self, fhandle: FileHandle) -> Generator:
        self.user_ops.add(1)
        if self.cache is not None:
            fattr = self.cache.attr_hit(fhandle)
            if fattr is not None:
                return fattr
        fattr = yield from self._call(PROC_GETATTR, fhandle)
        if self.cache is not None:
            self.cache.store_attr(fhandle, fattr)
        return fattr

    def setattr(self, fhandle: FileHandle, **changes) -> Generator:
        self.user_ops.add(1)
        fattr = yield from self._call(PROC_SETATTR, SetattrArgs(fhandle, **changes))
        if self.cache is not None:
            self.cache.store_attr(fhandle, fattr)
        return fattr

    def readdir(self, dir_fhandle: Optional[FileHandle] = None) -> Generator:
        self.user_ops.add(1)
        return (yield from self._call(PROC_READDIR, dir_fhandle or self.root_fhandle))

    def statfs(self) -> Generator:
        self.user_ops.add(1)
        return (yield from self._call(PROC_STATFS, self.root_fhandle))

    def symlink(
        self, name: str, target: str, dir_fhandle: Optional[FileHandle] = None
    ) -> Generator:
        """SYMLINK: returns the new link's (fhandle, fattr)."""
        self.user_ops.add(1)
        dir_fh = dir_fhandle or self.root_fhandle
        args = SymlinkArgs(dir_fh, name, target)
        result = yield from self._call(PROC_SYMLINK, args)
        if self.cache is not None:
            self.cache.note_local_create(dir_fh, name, result)
        return result

    def readlink(self, fhandle: FileHandle) -> Generator:
        """READLINK: returns the link target string."""
        self.user_ops.add(1)
        return (yield from self._call(PROC_READLINK, fhandle))

    def rename(
        self,
        src_name: str,
        dst_name: str,
        src_dir: Optional[FileHandle] = None,
        dst_dir: Optional[FileHandle] = None,
    ) -> Generator:
        self.user_ops.add(1)
        src = src_dir or self.root_fhandle
        dst = dst_dir or self.root_fhandle
        args = RenameArgs(src, src_name, dst, dst_name)
        result = yield from self._call(PROC_RENAME, args)
        if self.cache is not None:
            self.cache.note_local_rename(src, src_name, dst, dst_name)
        return result

    def read(self, open_file: OpenFile, offset: int, count: int) -> Generator:
        """READ, returning ``(fattr, data)``.

        With ``read_ahead=True``, a detected sequential pattern hands a
        prefetch of the following range to a free biod, so the next read is
        served from the client cache while the wire stays busy (§4.1).
        """
        self.user_ops.add(1)
        if self.cache is not None:
            fattr = self.cache.attr_hit(open_file.fhandle)
            if fattr is not None:
                data = self.cache.read_hit(open_file.fhandle, offset, count)
                if data is not None:
                    open_file.known_size = fattr.size
                    open_file.read_cursor = offset + count
                    return fattr, data
        sequential = offset == open_file.read_cursor
        open_file.read_cursor = offset + count
        if self.read_ahead and sequential:
            # Pipeline as deep as the idle biods allow *before* blocking on
            # the current range, so the wire and disk stay busy while the
            # application consumes this block.
            for step in range(1, self.nbiods + 1):
                self._maybe_prefetch(open_file, offset + step * count, count)
        prefetch = open_file.prefetched.pop(offset, None)
        if prefetch is not None:
            fattr_and_data = yield prefetch
            self.readahead_hits.add(1)
        else:
            args = ReadArgs(open_file.fhandle, offset, count)
            fattr_and_data = yield from self._call(PROC_READ, args)
        fattr, data = fattr_and_data
        open_file.known_size = fattr.size
        if self.on_read_acked is not None:
            self.on_read_acked(open_file.fhandle, offset, data)
        if self.cache is not None:
            self.cache.store_attr(open_file.fhandle, fattr)
            self.cache.store_block(open_file.fhandle, offset, data)
        return fattr_and_data

    def _maybe_prefetch(self, open_file: OpenFile, offset: int, count: int) -> None:
        """Hand a read-ahead of [offset, offset+count) to an idle biod."""
        if self._busy_biods >= self.nbiods:
            return
        if open_file.known_size is not None and offset >= open_file.known_size:
            return  # nothing past EOF
        if offset in open_file.prefetched:
            return
        self._busy_biods += 1
        done = self.env.event()
        open_file.prefetched[offset] = done
        self.env.process(
            self._biod_read(open_file, offset, count, done), name="biod-ra"
        )

    def _biod_read(self, open_file: OpenFile, offset: int, count: int, done: Event):
        try:
            args = ReadArgs(open_file.fhandle, offset, count)
            result = yield from self._call(PROC_READ, args)
            done.succeed(result)
        except NfsError as exc:
            done.fail(exc)
            done.defused = True  # reader may never come back for it
        finally:
            self._busy_biods -= 1

    # -- the write path -----------------------------------------------------------

    def write_stream(self, open_file: OpenFile, data: bytes) -> Generator:
        """Application-level sequential write: fills 8K client cache blocks
        and pushes each full block to the wire via write-behind.

        ``data`` is either real bytes or a flyweight
        :class:`~repro.payload.Extent`; the two may not be mixed within
        one partially filled cache block.
        """
        self.user_ops.add(1)
        if not is_bytes_payload(data):
            yield from self._write_stream_flyweight(open_file, data)
            return
        view = memoryview(bytes(data))
        while view.nbytes > 0:
            if not open_file.pending:
                open_file.pending_offset = open_file.cursor
            elif isinstance(open_file.pending, ExtentChain):
                raise TypeError(
                    "cannot mix byte and flyweight payloads in one cache block"
                )
            room = NFS_MAX_DATA - len(open_file.pending)
            take = min(room, view.nbytes)
            open_file.pending.extend(view[:take])
            open_file.cursor += take
            view = view[take:]
            if len(open_file.pending) == NFS_MAX_DATA:
                yield from self._push_block(open_file)

    def _write_stream_flyweight(self, open_file: OpenFile, extent: Extent) -> Generator:
        """write_stream for flyweight payloads: identical block-fill logic,
        accumulating (offset, length, seed) extents instead of bytes."""
        pos = 0
        total = len(extent)
        while pos < total:
            pending = open_file.pending
            if not pending:
                open_file.pending_offset = open_file.cursor
                if not isinstance(pending, ExtentChain):
                    pending = open_file.pending = ExtentChain()
            elif not isinstance(pending, ExtentChain):
                raise TypeError(
                    "cannot mix byte and flyweight payloads in one cache block"
                )
            room = NFS_MAX_DATA - len(pending)
            take = min(room, total - pos)
            pending.append(extent.slice(pos, pos + take))
            open_file.cursor += take
            pos += take
            if len(pending) == NFS_MAX_DATA:
                yield from self._push_block(open_file)

    def write_at(self, open_file: OpenFile, offset: int, data: bytes) -> Generator:
        """Random-access write: goes to the wire immediately (no coalescing),
        in at-most-8K pieces."""
        self.user_ops.add(1)
        if not is_bytes_payload(data):
            pos = 0
            total = len(data)
            while pos < total:
                take = min(NFS_MAX_DATA, total - pos)
                yield from self._write_behind(
                    open_file, offset + pos, data.slice(pos, pos + take)
                )
                pos += take
            return
        view = memoryview(bytes(data))
        pos = offset
        while view.nbytes > 0:
            take = min(NFS_MAX_DATA, view.nbytes)
            yield from self._write_behind(open_file, pos, bytes(view[:take]))
            pos += take
            view = view[take:]

    def close(self, open_file: OpenFile) -> Generator:
        """sync-on-close: flush the partial block, await all outstanding
        writes, and raise the first captured asynchronous error.

        An NFSv3 client additionally COMMITs its unstable writes here and,
        if the server's write verifier changed (it crashed and rebooted,
        losing cached data), resends everything and commits again.
        """
        self.user_ops.add(1)
        if open_file.pending:
            yield from self._push_block(open_file)
        if self.cache is not None:
            # Write-back: dirty blocks deferred under a write lease go to
            # the wire now, through the ordinary write-behind train.
            yield from self.cache.flush_file(open_file)
        if open_file.outstanding:
            yield AllOf(self.env, list(open_file.outstanding))
            open_file.outstanding.clear()
        if self.tracker is not None and self.tracker.has_ranges(open_file.fhandle):
            yield from self.tracker.commit(open_file.fhandle)
        if open_file.error is not None:
            error, open_file.error = open_file.error, None
            raise NfsError(error)

    def _push_block(self, open_file: OpenFile) -> Generator:
        pending = open_file.pending
        if isinstance(pending, ExtentChain):
            data = pending.payload()
        else:
            data = bytes(pending)
        offset = open_file.pending_offset
        open_file.pending = bytearray()
        if self.cache is not None and self.cache.defer_write(open_file, offset, data):
            return  # absorbed by the write-back cache (no RPC, no time)
        yield from self._write_behind(open_file, offset, data)

    def _write_behind(self, open_file: OpenFile, offset: int, data: bytes) -> Generator:
        """Hand a WRITE to a biod, or perform it inline if none is free.

        With a write window, the effective biod pool is the AIMD cwnd: a
        struggling server shrinks the burst each client presents instead
        of receiving nbiods-deep retransmit trains.
        """
        yield self.env.timeout(self.write_cpu)
        limit = self.nbiods
        if self.write_window is not None:
            limit = min(limit, self.write_window.slots)
        if self._busy_biods < limit:
            self._busy_biods += 1
            self.biod_handoffs.add(1)
            done = self.env.event()
            open_file.outstanding.append(done)
            self.env.process(
                self._biod_write(open_file, offset, data, done), name="biod"
            )
        else:
            # No biod free: the application blocks until *this* request has
            # received a response (§4.1).
            self.blocked_writes.add(1)
            yield from self._do_write(open_file, offset, data)

    def _biod_write(self, open_file: OpenFile, offset: int, data: bytes, done: Event):
        try:
            yield from self._do_write(open_file, offset, data)
        except NfsError as exc:
            if open_file.error is None:
                open_file.error = exc.code
        finally:
            self._busy_biods -= 1
            done.succeed()

    def _replay_write(self, fhandle: FileHandle, offset: int, data: bytes) -> Generator:
        """Resend one uncommitted range after a verifier mismatch.

        Driven by the tracker's COMMIT train, which may not have an
        :class:`OpenFile` in hand (lease recalls commit by fhandle), so
        the write rides a throwaway one.  ``replaying=True`` suppresses
        the pressure/stale checks — the train itself is handling them.
        """
        shim = OpenFile(fhandle, "(replay)")
        yield from self._do_write(shim, offset, data, replaying=True)

    def _do_write(
        self,
        open_file: OpenFile,
        offset: int,
        data: bytes,
        record: bool = True,
        replaying: bool = False,
    ) -> Generator:
        started = self.env.now
        stable = self.nfs_version == 2
        args = WriteArgs(open_file.fhandle, offset, data, stable=stable)
        try:
            reply = yield from self.rpc.call(
                PROC_WRITE,
                args,
                size=call_size(PROC_WRITE, args),
                reply_size=reply_size(PROC_WRITE, args),
                weight=WEIGHT_OF[PROC_WRITE],
            )
        except RpcTimeoutError:
            raise NfsError("ETIMEDOUT") from None
        if not reply.ok:
            raise NfsError(reply.status)
        self.bytes_written.add(len(data))
        self.write_latency.observe(self.env.now - started)
        if stable:
            if self.on_write_acked is not None:
                self.on_write_acked(open_file.fhandle, offset, data)
            if self.cache is not None:
                self.cache.store_attr(open_file.fhandle, reply.result)
            return reply.result  # Fattr
        fattr, verifier = reply.result
        if self.cache is not None:
            self.cache.store_attr(open_file.fhandle, fattr)
        if record and self.tracker is not None:
            self.tracker.record(open_file.fhandle, offset, data, verifier)
            if self.on_unstable_acked is not None:
                self.on_unstable_acked(open_file.fhandle, offset, data)
            if not replaying:
                if self.tracker.stale_files(verifier):
                    # The verifier moved under us: the server lost an
                    # incarnation and our unstable data with it.  Resend
                    # every uncommitted range before proceeding.
                    yield from self.tracker.replay_stale(verifier)
                elif self.tracker.over_pressure(open_file.fhandle):
                    self.tracker.pressure_commits.add(1)
                    yield from self.tracker.commit(open_file.fhandle)
        return fattr

    @property
    def busy_biods(self) -> int:
        return self._busy_biods
