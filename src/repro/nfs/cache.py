"""The client cache stack: attributes, dirents, and write-back data.

A :class:`CacheStack` sits beside one :class:`~repro.nfs.client.NfsClient`
and deletes RPCs instead of serving them faster:

* **AttrCache** — ``getattr`` answered locally while the file's read lease
  is valid;
* **DirCache** — ``lookup`` answered locally (positive *and* negative
  entries) while the directory's read lease is valid;
* **DataCache** — ``read`` answered from cached blocks, and — under a
  write lease — full client blocks *deferred* instead of written through:
  dirty blocks ride the existing biod/:class:`~repro.overload.window.WriteWindow`
  machinery at close, recall, or budget pressure, so all three server
  ``WritePath`` modes see an ordinary write-behind train.

Consistency is leases, not guesswork: every entry is served only under an
unexpired lease learned from reply piggybacks
(:class:`~repro.lease.manager.LeaseGrant`), the server recalls conflicting
holders before mutations execute (``CB_RECALL`` arrives via
``RpcClient.on_call`` and is answered only after dirty data is flushed),
and ``open`` revalidates attributes unless lease-covered (close-to-open).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lease.manager import LEASE_READ, LEASE_WRITE
from repro.nfs.protocol import PROC_LEASE_RENEW, RenewArgs
from repro.obs import registry_for
from repro.rpc.client import RpcTimeoutError
from repro.rpc.messages import CLASS_LIGHT, RPC_HEADER_BYTES
from repro.sim import AllOf

__all__ = ["CacheStack", "NEGATIVE"]


class _Negative:
    """Sentinel for a cached 'this name does not exist' dirent."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<negative dirent>"


NEGATIVE = _Negative()

#: Per-file dirty-block budget: past this the stack stops deferring and
#: writes through (bounding both client RAM and recall-flush latency).
MAX_DIRTY_BLOCKS = 64

#: Per-file clean-block budget (plain capacity bound, not consistency).
MAX_CLEAN_BLOCKS = 256


class CacheStack:
    """Lease-consistent client caches for one NFS client host."""

    def __init__(self, env, client, max_dirty_blocks: int = MAX_DIRTY_BLOCKS) -> None:
        self.env = env
        self.client = client
        self.host = client.rpc.endpoint.host
        self.max_dirty_blocks = max_dirty_blocks
        #: fhandle -> (mode, expires_at) — the client's view of its leases.
        self._leases: Dict[tuple, Tuple[str, float]] = {}
        #: fhandle -> when continuous lease coverage began.  An entry is
        #: served only if fetched inside the current coverage run: during
        #: a gap (expiry, recall, reroute) another client may mutate
        #: without recalling us, so entries fetched before the gap are
        #: stale even once a fresh lease arrives.
        self._valid_since: Dict[tuple, float] = {}
        #: fhandle -> (Fattr, fetched_at).
        self._attrs: Dict[tuple, tuple] = {}
        #: (dir_fhandle, name) -> ((fhandle, Fattr) | NEGATIVE, fetched_at).
        self._dirents: Dict[tuple, tuple] = {}
        #: dir_fhandle -> set of cached names (for whole-dir invalidation).
        self._dir_names: Dict[tuple, set] = {}
        #: fhandle -> {offset -> (payload, fetched_at)} clean read blocks.
        self._blocks: Dict[tuple, Dict[int, tuple]] = {}
        #: fhandle -> {offset -> payload} deferred (dirty) write blocks.
        self._dirty: Dict[tuple, Dict[int, object]] = {}
        #: fhandle -> OpenFile owning the dirty blocks (flush bookkeeping).
        self._dirty_files: Dict[tuple, object] = {}
        #: Staleness-oracle hook: ``(kind, fhandle, fetched_at, dirty)``
        #: per served hit; None when unchecked.
        self.on_cache_hit = None
        metrics = registry_for(env)
        prefix = f"cache.{self.host}"
        self.attr_hits = metrics.counter(f"{prefix}.attr_hits")
        self.dirent_hits = metrics.counter(f"{prefix}.dirent_hits")
        self.negative_hits = metrics.counter(f"{prefix}.negative_hits")
        self.data_hits = metrics.counter(f"{prefix}.data_hits")
        self.deferred_writes = metrics.counter(f"{prefix}.deferred_writes")
        self.flushed_blocks = metrics.counter(f"{prefix}.flushed_blocks")
        self.recalls_served = metrics.counter(f"{prefix}.recalls_served")
        self.reregistrations = metrics.counter(f"{prefix}.reregistrations")
        # Wire ourselves in: the client consults us per op, the transport
        # hands us server-initiated recalls, and a routed (cluster)
        # transport tells us when a shard repoints so we re-register.
        client.cache = self
        rpc = client.rpc
        if hasattr(rpc, "set_on_call"):
            rpc.set_on_call(self.handle_recall)
        else:
            rpc.on_call = self.handle_recall
        if hasattr(rpc, "on_reroute"):
            rpc.on_reroute = self.handle_reroute

    # -- lease bookkeeping --------------------------------------------------------

    def learn_grants(self, grants) -> None:
        """Fold reply-piggybacked grants into the lease table."""
        for grant in grants:
            if not self.lease_valid(grant.fhandle):
                # Fresh acquisition after a coverage gap: older cached
                # entries for this handle are no longer servable.
                self._valid_since[grant.fhandle] = self.env.now
            self._leases[grant.fhandle] = (grant.mode, grant.expires_at)

    def lease_valid(self, fhandle: tuple, mode: str = LEASE_READ) -> bool:
        lease = self._leases.get(fhandle)
        if lease is None:
            return False
        held_mode, expires_at = lease
        if expires_at <= self.env.now:
            del self._leases[fhandle]
            return False
        return mode == LEASE_READ or held_mode == LEASE_WRITE

    def _covered(self, fhandle: tuple, fetched_at: float) -> bool:
        """Was ``fetched_at`` inside the current lease-coverage run?"""
        return fetched_at >= self._valid_since.get(fhandle, 0.0)

    def held_leases(self) -> Dict[tuple, str]:
        """fhandle -> mode for every currently valid lease (diagnostics)."""
        now = self.env.now
        return {
            fh: mode
            for fh, (mode, expires_at) in self._leases.items()
            if expires_at > now
        }

    def _record_hit(self, kind: str, fhandle: tuple, fetched_at: float, dirty: bool) -> None:
        if self.on_cache_hit is not None:
            self.on_cache_hit(kind, fhandle, fetched_at, dirty)

    # -- attribute cache ----------------------------------------------------------

    def store_attr(self, fhandle: tuple, fattr) -> None:
        previous = self._attrs.get(fhandle)
        if previous is not None and previous[0].mtime != fattr.mtime:
            # The file changed since we last cached data under the old
            # attributes: close-to-open says drop the stale blocks.
            self._blocks.pop(fhandle, None)
        self._attrs[fhandle] = (fattr, self.env.now)

    def attr_hit(self, fhandle: tuple):
        """The cached Fattr, or None (miss / lease lapsed)."""
        if not self.lease_valid(fhandle):
            return None
        entry = self._attrs.get(fhandle)
        if entry is None:
            return None
        fattr, fetched_at = entry
        if not self._covered(fhandle, fetched_at):
            del self._attrs[fhandle]
            return None
        self.attr_hits.add(1)
        self._record_hit("attr", fhandle, fetched_at, False)
        return fattr

    # -- dirent cache -------------------------------------------------------------

    def store_dirent(self, dir_fhandle: tuple, name: str, result) -> None:
        """Cache a positive lookup result ((fhandle, fattr))."""
        if not self.lease_valid(dir_fhandle):
            return
        self._dirents[(dir_fhandle, name)] = (result, self.env.now)
        self._dir_names.setdefault(dir_fhandle, set()).add(name)
        fhandle, fattr = result
        self.store_attr(fhandle, fattr)

    def store_negative(self, dir_fhandle: tuple, name: str) -> None:
        if not self.lease_valid(dir_fhandle):
            return
        self._dirents[(dir_fhandle, name)] = (NEGATIVE, self.env.now)
        self._dir_names.setdefault(dir_fhandle, set()).add(name)

    def dirent_hit(self, dir_fhandle: tuple, name: str):
        """(fhandle, fattr), NEGATIVE, or None (miss / lease lapsed)."""
        if not self.lease_valid(dir_fhandle):
            return None
        entry = self._dirents.get((dir_fhandle, name))
        if entry is None:
            return None
        value, fetched_at = entry
        if not self._covered(dir_fhandle, fetched_at):
            del self._dirents[(dir_fhandle, name)]
            self._dir_names.get(dir_fhandle, set()).discard(name)
            return None
        if value is NEGATIVE:
            self.negative_hits.add(1)
            self._record_hit("negative", dir_fhandle, fetched_at, False)
            return NEGATIVE
        self.dirent_hits.add(1)
        self._record_hit("dirent", dir_fhandle, fetched_at, False)
        fhandle, fattr = value
        cached = self._attrs.get(fhandle)
        if cached is not None and self.lease_valid(fhandle):
            fattr = cached[0]  # the freshest attributes we may serve
        return fhandle, fattr

    def note_local_create(self, dir_fhandle: tuple, name: str, result) -> None:
        """Our own create: replace any cached negative entry immediately."""
        self.store_dirent(dir_fhandle, name, result)

    def note_local_remove(self, dir_fhandle: tuple, name: str) -> None:
        entry = self._dirents.pop((dir_fhandle, name), None)
        self._dir_names.get(dir_fhandle, set()).discard(name)
        if entry is not None and entry[0] is not NEGATIVE:
            fhandle, _fattr = entry[0]
            self._void_file(fhandle)
        if self.lease_valid(dir_fhandle):
            self._dirents[(dir_fhandle, name)] = (NEGATIVE, self.env.now)
            self._dir_names.setdefault(dir_fhandle, set()).add(name)

    def note_local_rename(self, src_dir: tuple, src_name: str, dst_dir: tuple, dst_name: str) -> None:
        self._dirents.pop((src_dir, src_name), None)
        self._dir_names.get(src_dir, set()).discard(src_name)
        self._dirents.pop((dst_dir, dst_name), None)
        self._dir_names.get(dst_dir, set()).discard(dst_name)

    # -- data cache ---------------------------------------------------------------

    def store_block(self, fhandle: tuple, offset: int, payload) -> None:
        if not self.lease_valid(fhandle):
            return
        blocks = self._blocks.setdefault(fhandle, {})
        if len(blocks) >= MAX_CLEAN_BLOCKS and offset not in blocks:
            return
        blocks[offset] = (payload, self.env.now)

    def read_hit(self, fhandle: tuple, offset: int, count: int):
        """The cached payload for an exact (offset, count) block, or None.

        Dirty blocks win over clean ones (read-your-writes)."""
        if not self.lease_valid(fhandle):
            return None
        dirty = self._dirty.get(fhandle)
        if dirty is not None:
            payload = dirty.get(offset)
            if payload is not None and len(payload) == count:
                self.data_hits.add(1)
                self._record_hit("data", fhandle, self.env.now, True)
                return payload
        entry = self._blocks.get(fhandle, {}).get(offset)
        if entry is None:
            return None
        payload, fetched_at = entry
        if not self._covered(fhandle, fetched_at):
            del self._blocks[fhandle][offset]
            return None
        if len(payload) != count:
            return None
        self.data_hits.add(1)
        self._record_hit("data", fhandle, fetched_at, False)
        return payload

    # -- write-back ---------------------------------------------------------------

    def defer_write(self, open_file, offset: int, payload) -> bool:
        """Absorb one full client block instead of writing through.

        Only under a valid *write* lease and within the dirty budget; the
        caller writes through on False.  Deferral costs no simulated time —
        that is the RPC the cache deleted.
        """
        fhandle = open_file.fhandle
        if not self.lease_valid(fhandle, LEASE_WRITE):
            return False
        dirty = self._dirty.setdefault(fhandle, {})
        if offset not in dirty and len(dirty) >= self.max_dirty_blocks:
            return False
        dirty[offset] = payload
        self._dirty_files[fhandle] = open_file
        self.deferred_writes.add(1)
        return True

    def flush_file(self, open_file):
        """Push the file's dirty blocks through ordinary write-behind
        (biods + write window + the server's configured WritePath)."""
        yield from self._flush_fhandle(open_file.fhandle, wait=False)

    def _flush_fhandle(self, fhandle: tuple, wait: bool = True):
        dirty = self._dirty.pop(fhandle, None)
        open_file = self._dirty_files.pop(fhandle, None)
        if not dirty or open_file is None:
            return
        for offset in sorted(dirty):
            self.flushed_blocks.add(1)
            yield from self.client._write_behind(open_file, offset, dirty[offset])
        if wait and open_file.outstanding:
            # Quiesce means the server *has* the data before we ack.
            yield AllOf(self.env, list(open_file.outstanding))
            open_file.outstanding.clear()

    def dirty_blocks(self, fhandle: tuple) -> int:
        return len(self._dirty.get(fhandle, ()))

    # -- invalidation (recall / reroute) ------------------------------------------

    def _void_file(self, fhandle: tuple) -> None:
        self._leases.pop(fhandle, None)
        self._attrs.pop(fhandle, None)
        self._blocks.pop(fhandle, None)
        names = self._dir_names.pop(fhandle, None)
        if names:
            for name in names:
                self._dirents.pop((fhandle, name), None)

    def handle_recall(self, call):
        """CB_RECALL handler (via ``RpcClient.on_call``): drop every cached
        copy under the recalled lease, flush dirty data, then ack.

        Idempotent by construction — a retransmitted callback finds the
        lease and dirty set already gone and acks immediately.
        """
        fhandle = call.args.fhandle
        self.recalls_served.add(1)
        self._void_file(fhandle)  # stop serving hits before the flush
        yield from self._flush_fhandle(fhandle)
        tracker = getattr(self.client, "tracker", None)
        if tracker is not None and tracker.has_ranges(fhandle):
            # Async-commit (v3) client: the flush above only got the data
            # into the server's volatile UnstableLog.  The recall ack hands
            # the lease to a conflicting holder, so our write-behind must
            # be *durable* first — COMMIT (and replay on a verifier
            # mismatch) before answering.
            yield from tracker.commit(fhandle)
        return True

    def handle_reroute(self, logical: str, physical: str) -> None:
        """ClusterRpc hook: ``logical`` now resolves to ``physical``.

        The new primary's lease table knows nothing about us: every lease
        on a handle pinned to that shard is void.  Drop them (and their
        cached state), then re-register via LEASE_RENEW in the background.
        """
        router = getattr(self.client.rpc, "router", None)
        if router is None:
            return
        affected = []
        for fhandle, (mode, expires_at) in list(self._leases.items()):
            try:
                owner = router.server_for_fhandle(fhandle)
            except KeyError:
                continue
            if owner == logical:
                affected.append((fhandle, mode))
        if not affected:
            return
        for fhandle, _mode in affected:
            self._void_file(fhandle)
        self.env.process(
            self._reregister(logical, tuple(affected)),
            name=f"lease-rereg:{self.host}",
        )

    def _reregister(self, logical: str, wants: tuple):
        """Re-register voided leases with the shard's new primary."""
        self.reregistrations.add(1)
        try:
            reply = yield from self.client.rpc.call(
                PROC_LEASE_RENEW,
                RenewArgs(wants),
                size=RPC_HEADER_BYTES,
                reply_size=RPC_HEADER_BYTES,
                weight=CLASS_LIGHT,
                server=logical,
            )
        except RpcTimeoutError:
            reply = None
        granted = set()
        if reply is not None and reply.ok:
            grants = reply.result
            self.learn_grants(grants)
            granted = {grant.fhandle for grant in grants}
        for fhandle, _mode in wants:
            if fhandle not in granted and self._dirty.get(fhandle):
                # The new primary would not re-grant: stop deferring and
                # get the dirty data onto the wire now.
                yield from self._flush_fhandle(fhandle)

    # -- explicit renewal ---------------------------------------------------------

    def renew(self, wants):
        """Explicit LEASE_RENEW (single-server path); returns the grants."""
        grants = yield from self.client._call(
            PROC_LEASE_RENEW, RenewArgs(tuple(wants))
        )
        self.learn_grants(grants)
        return grants
