"""NFS version 2 protocol definitions: procedures, attributes, sizes.

Only what the simulation needs: procedure names, argument records, wire
sizes, and the weight classes the client backoff algorithm keys on
(write = heavyweight, read = middleweight, lookup = lightweight, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fs.inode import Inode
from repro.fs.vfs import FileHandle
from repro.rpc.messages import CLASS_HEAVY, CLASS_LIGHT, CLASS_MEDIUM, RPC_HEADER_BYTES

__all__ = [
    "NFS_MAX_DATA",
    "PROC_COMMIT",
    "PROC_MOUNT",
    "PROC_UMOUNT",
    "PROC_READLINK",
    "PROC_SYMLINK",
    "PROC_RENAME",
    "PROC_GETATTR",
    "PROC_SETATTR",
    "PROC_LOOKUP",
    "PROC_READ",
    "PROC_WRITE",
    "PROC_CREATE",
    "PROC_REMOVE",
    "PROC_READDIR",
    "PROC_STATFS",
    "PROC_REPLICATE",
    "PROC_CB_RECALL",
    "PROC_LEASE_RENEW",
    "PROC_SCRUB_FETCH",
    "PROC_MIGRATE_BEGIN",
    "PROC_MIGRATE_READ",
    "PROC_MIGRATE_DELTA",
    "PROC_MIGRATE_PARK",
    "PROC_MIGRATE_ABORT",
    "PROC_MIGRATE_PREPARE",
    "PROC_MIGRATE_WRITE",
    "PROC_MIGRATE_PURGE",
    "WEIGHT_OF",
    "Fattr",
    "RecallArgs",
    "RenewArgs",
    "WriteArgs",
    "CommitArgs",
    "SymlinkArgs",
    "RenameArgs",
    "ReadArgs",
    "LookupArgs",
    "CreateArgs",
    "RemoveArgs",
    "SetattrArgs",
    "call_size",
    "reply_size",
    "NfsError",
]

#: Effective maximum NFS/UDP transfer size (§4.1): 8K.
NFS_MAX_DATA = 8192

PROC_GETATTR = "getattr"
PROC_SETATTR = "setattr"
PROC_LOOKUP = "lookup"
PROC_READ = "read"
PROC_WRITE = "write"
PROC_CREATE = "create"
PROC_REMOVE = "remove"
PROC_READDIR = "readdir"
PROC_STATFS = "statfs"
PROC_READLINK = "readlink"
PROC_SYMLINK = "symlink"
PROC_RENAME = "rename"
#: NFS version 3 (§8 future work): commit previously unstable writes.
PROC_COMMIT = "commit"
#: The separate MOUNT protocol (mountd): path -> root file handle.
PROC_MOUNT = "mount"
PROC_UMOUNT = "umount"
#: Internal replica-group procedure (repro.replica): a primary ships one
#: committed batch — writes and namespace ops — to a backup, which acks
#: only after the batch is on its own stable storage.  Never sent by NFS
#: clients; it shares the RPC transport and dup-cache machinery.
PROC_REPLICATE = "replicate"
#: Lease-layer procedures (repro.lease, Gray & Cheriton style).  CB_RECALL
#: travels the *reverse* direction — server to client — over a dedicated
#: ``{host}.cb`` endpoint: the holder must flush dirty data and drop its
#: cached copies before acking.  LEASE_RENEW lets a client refresh or
#: re-register held leases (e.g. against a promoted backup after failover).
PROC_CB_RECALL = "cb_recall"
PROC_LEASE_RENEW = "lease_renew"
#: Integrity-layer procedure (repro.integrity): a scrubber asks a replica
#: peer for one verified block to repair a corrupt/latent local copy.
#: Never sent by NFS clients; shares the replica RPC transport.
PROC_SCRUB_FETCH = "scrub_fetch"
#: Live-migration procedures (repro.tiering): the MigrationEngine moves
#: one file between shards with copy-then-cutover.  BEGIN starts source
#: dirty tracking, READ fetches a snapshot range, DELTA rotates one round
#: of dirtied ranges, PARK freezes the file (mutating replies abandoned
#: from this instant) and returns the final delta plus the file's recent
#: dup-cache entries, ABORT unparks.  PREPARE/WRITE build the copy on the
#: destination (same ino + generation, so client-held handles survive the
#: repoint); PURGE removes a shard's copy (destination abort cleanup, or
#: the source's post-cutover copy).  Never sent by NFS clients.
PROC_MIGRATE_BEGIN = "migrate_begin"
PROC_MIGRATE_READ = "migrate_read"
PROC_MIGRATE_DELTA = "migrate_delta"
PROC_MIGRATE_PARK = "migrate_park"
PROC_MIGRATE_ABORT = "migrate_abort"
PROC_MIGRATE_PREPARE = "migrate_prepare"
PROC_MIGRATE_WRITE = "migrate_write"
PROC_MIGRATE_PURGE = "migrate_purge"

#: Client backoff class per procedure (§4.1).
WEIGHT_OF = {
    PROC_WRITE: CLASS_HEAVY,
    PROC_COMMIT: CLASS_HEAVY,
    PROC_READ: CLASS_MEDIUM,
    PROC_READDIR: CLASS_MEDIUM,
    PROC_GETATTR: CLASS_LIGHT,
    PROC_SETATTR: CLASS_LIGHT,
    PROC_LOOKUP: CLASS_LIGHT,
    PROC_CREATE: CLASS_LIGHT,
    PROC_REMOVE: CLASS_LIGHT,
    PROC_STATFS: CLASS_LIGHT,
    PROC_READLINK: CLASS_LIGHT,
    PROC_SYMLINK: CLASS_LIGHT,
    PROC_RENAME: CLASS_LIGHT,
    PROC_MOUNT: CLASS_LIGHT,
    PROC_UMOUNT: CLASS_LIGHT,
    PROC_REPLICATE: CLASS_HEAVY,
    PROC_CB_RECALL: CLASS_LIGHT,
    PROC_LEASE_RENEW: CLASS_LIGHT,
    PROC_SCRUB_FETCH: CLASS_MEDIUM,
    PROC_MIGRATE_BEGIN: CLASS_LIGHT,
    PROC_MIGRATE_READ: CLASS_MEDIUM,
    PROC_MIGRATE_DELTA: CLASS_LIGHT,
    PROC_MIGRATE_PARK: CLASS_MEDIUM,
    PROC_MIGRATE_ABORT: CLASS_LIGHT,
    PROC_MIGRATE_PREPARE: CLASS_LIGHT,
    PROC_MIGRATE_WRITE: CLASS_HEAVY,
    PROC_MIGRATE_PURGE: CLASS_LIGHT,
}


class NfsError(Exception):
    """An NFS-level error status returned to the client."""

    def __init__(self, code: str) -> None:
        super().__init__(code)
        self.code = code


@dataclass(frozen=True)
class Fattr:
    """File attributes returned in replies (the paper's gathered replies all
    carry the *same* file modify time)."""

    ino: int
    ftype: str
    size: int
    mtime: float

    @classmethod
    def from_inode(cls, inode: Inode) -> "Fattr":
        return cls(ino=inode.ino, ftype=inode.ftype, size=inode.size, mtime=inode.mtime)


@dataclass
class WriteArgs:
    fhandle: FileHandle
    offset: int
    data: bytes
    #: NFSv2 semantics: True (stable before reply).  An NFSv3 client may
    #: send False; the server then replies from volatile cache and the
    #: client must COMMIT (and compare write verifiers) before discarding
    #: its copy of the data.
    stable: bool = True


@dataclass
class SymlinkArgs:
    dir_fhandle: FileHandle
    name: str
    target: str


@dataclass
class RenameArgs:
    src_dir_fhandle: FileHandle
    src_name: str
    dst_dir_fhandle: FileHandle
    dst_name: str


@dataclass
class CommitArgs:
    fhandle: FileHandle
    offset: int
    count: int


@dataclass
class ReadArgs:
    fhandle: FileHandle
    offset: int
    count: int


@dataclass
class LookupArgs:
    dir_fhandle: FileHandle
    name: str


@dataclass
class CreateArgs:
    dir_fhandle: FileHandle
    name: str


@dataclass
class RemoveArgs:
    dir_fhandle: FileHandle
    name: str


@dataclass
class SetattrArgs:
    fhandle: FileHandle
    size: Optional[int] = None
    mtime: Optional[float] = None


@dataclass
class RecallArgs:
    """Server -> client: give up the lease on ``fhandle``.

    The holder flushes any dirty cached data for the file (ordinary WRITE
    RPCs), drops its cached attributes/blocks/dirents, and acks.  Handling
    must be idempotent — the callback retransmits like any RPC.
    """

    fhandle: FileHandle


@dataclass
class RenewArgs:
    """Client -> server: refresh/re-register held leases.

    ``wants`` is a tuple of ``(fhandle, mode)`` pairs; the server re-grants
    whatever is currently conflict-free and the reply's grant list tells the
    client which survived.
    """

    wants: tuple


def call_size(proc: str, args) -> int:
    """Wire size of a call datagram."""
    if proc == PROC_WRITE:
        return RPC_HEADER_BYTES + len(args.data)
    if proc in (PROC_LOOKUP, PROC_CREATE, PROC_REMOVE, PROC_SYMLINK):
        return RPC_HEADER_BYTES + len(args.name)
    if proc == PROC_RENAME:
        return RPC_HEADER_BYTES + len(args.src_name) + len(args.dst_name)
    return RPC_HEADER_BYTES


def reply_size(proc: str, args) -> int:
    """Expected wire size of the matching reply datagram."""
    if proc == PROC_READ:
        return RPC_HEADER_BYTES + args.count
    if proc == PROC_READDIR:
        return RPC_HEADER_BYTES + 2048
    return RPC_HEADER_BYTES
