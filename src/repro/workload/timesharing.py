"""A multiprocessing (timesharing) client host (§4.1, §6.7).

"A client system can have multiple outstanding read and/or write requests.
A client process blocks whenever a read or write request cannot be
satisfied locally ...  When it blocks, another process can run; that
process may also generate a read or write request."

N application processes on *one* client host write different files while
sharing the host's biod pool — the case §6.7 cites for FIFO replies
("free up biods on the client for other work (by other processes)
sooner").  Returns per-process elapsed times so fairness is measurable.
"""

from __future__ import annotations

from typing import List

from repro.nfs.client import NfsClient
from repro.sim import Environment
from repro.workload.sequential import write_file

__all__ = ["run_timesharing"]


def run_timesharing(
    env: Environment,
    client: NfsClient,
    processes: int,
    bytes_per_process: int,
    think_time: float = 0.0005,
):
    """Run ``processes`` concurrent writers on one client.

    Generator (drive with ``env.process``); returns the list of per-process
    elapsed times.  Aggregate bandwidth is
    ``processes * bytes_per_process / max(elapsed)``.
    """
    if processes < 1:
        raise ValueError(f"need at least one process, got {processes}")
    procs = [
        env.process(
            write_file(
                env,
                client,
                f"ts.{index:02d}",
                bytes_per_process,
                think_time=think_time,
            ),
            name=f"ts-writer-{index}",
        )
        for index in range(processes)
    ]
    elapsed: List[float] = []
    for proc in procs:
        elapsed.append((yield proc))
    return elapsed
