"""The "dumb PC" single-threaded client (§6.10).

"Single threaded PCs (or clients with no biods, or clients that emit a
single write every once in a while) are the worst case for write gathering.
There is added processing and latency for no gain."  Easily simulated — as
the paper says — "by killing all biods": an NfsClient with ``nbiods=0``
whose every write blocks the application.  ``think_time`` distinguishes a
"reasonably quick" single-threaded client from a truly slow PC, for whom
the paper predicts the loss fades into insignificance.
"""

from __future__ import annotations

from repro.net.segment import Segment
from repro.nfs.client import NfsClient
from repro.rpc.client import RpcClient
from repro.sim import Environment

__all__ = ["make_dumb_pc", "DUMB_PC_THINK_TIME", "FAST_CLIENT_THINK_TIME"]

#: A quick single-threaded client (the paper's 15%-loss case).
FAST_CLIENT_THINK_TIME = 0.0005
#: A genuinely slow PC: per-8K production time dominates everything.
DUMB_PC_THINK_TIME = 0.020


def make_dumb_pc(
    env: Environment, segment: Segment, server_host: str, host: str = "pc"
) -> NfsClient:
    """Attach a biod-less client to ``segment``."""
    endpoint = segment.attach(host)
    rpc = RpcClient(env, endpoint, server_host)
    return NfsClient(env, rpc, nbiods=0)
