"""Random-access writer (§6.11).

"The write gathering algorithm does not assume an ordering on the delivery
of writes.  A grouping of random access writes will accrue the same
benefits of metadata amortization as a grouping of sequential access
writes."  This workload writes 8K records at seeded-random block offsets
within a preallocated file, so the benchmark can verify that claim: the
*metadata* transaction count drops just as it does for sequential writes,
while data clustering (an underlying-filesystem issue) degrades.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.nfs.client import NfsClient
from repro.sim import Environment
from repro.workload.sequential import patterned_chunk

__all__ = ["write_random"]


def write_random(
    env: Environment,
    client: NfsClient,
    name: str,
    file_bytes: int,
    writes: int,
    record_size: int = 8192,
    think_time: float = 0.0005,
    seed: int = 1,
) -> Generator:
    """Preallocate ``name`` to ``file_bytes``, then rewrite ``writes``
    random records.  Returns the elapsed time of the random phase only."""
    if file_bytes < record_size:
        raise ValueError("file must hold at least one record")
    open_file = yield from client.create(name)
    # Preallocate sequentially so the random phase rewrites existing blocks.
    written = 0
    index = 0
    while written < file_bytes:
        take = min(record_size, file_bytes - written)
        yield from client.write_stream(open_file, patterned_chunk(index, take))
        written += take
        index += 1
    yield from client.close(open_file)

    rng = random.Random(seed)
    nblocks = file_bytes // record_size
    started = env.now
    reopened = yield from client.open(name)
    for i in range(writes):
        block = rng.randrange(nblocks)
        if think_time > 0:
            yield env.timeout(think_time)
        yield from client.write_at(
            reopened, block * record_size, patterned_chunk(1000 + i, record_size)
        )
    yield from client.close(reopened)
    return env.now - started
