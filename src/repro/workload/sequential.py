"""The sequential file writer — the paper's primary workload (§5, §7.1).

"a 10MB file is written over private Ethernet and FDDI networks with and
without write gathering in effect and while varying the number of client
biods."  Client process C writes the file through the client cache in 8K
blocks; write-behind and blocking behaviour live in the NfsClient.
"""

from __future__ import annotations

from typing import Generator

from repro.nfs.client import NfsClient
from repro.payload import PAYLOAD_FULL, Extent, coerce_payload_mode
from repro.sim import Environment

__all__ = ["write_file", "patterned_chunk", "patterned_extent"]


def patterned_chunk(index: int, size: int = 8192) -> bytes:
    """Deterministic, index-dependent content so integrity checks bite."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    pattern = bytes((index * 7 + k) % 256 for k in range(8))
    repeats = size // len(pattern) + 1
    return (pattern * repeats)[:size]


def patterned_extent(index: int, size: int = 8192) -> Extent:
    """The flyweight twin of :func:`patterned_chunk`: same logical bytes
    (``extent.to_bytes() == patterned_chunk(index, size)``), no byte work."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return Extent(size, seed=index)


def write_file(
    env: Environment,
    client: NfsClient,
    name: str,
    nbytes: int,
    chunk_size: int = 8192,
    think_time: float = 0.0005,
    remove_first: bool = False,
    payload: str = PAYLOAD_FULL,
) -> Generator:
    """Create and sequentially write ``name`` (nbytes), then close.

    ``think_time`` models the application producing each chunk of data (a
    fast workstation process; raise it for a slow client).  ``payload``
    selects byte fidelity: ``"full"`` (default) writes real patterned
    bytes; ``"flyweight"`` writes :class:`~repro.payload.Extent` stand-ins
    of identical length — same simulated timings and acked accounting,
    none of the per-byte copies.  Returns the elapsed time from create to
    close-complete.
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    chunk_of = (
        patterned_chunk
        if coerce_payload_mode(payload) == PAYLOAD_FULL
        else patterned_extent
    )
    started = env.now
    if remove_first:
        try:
            yield from client.remove(name)
        except Exception:
            pass  # nothing to remove
    open_file = yield from client.create(name)
    written = 0
    index = 0
    while written < nbytes:
        take = min(chunk_size, nbytes - written)
        if think_time > 0:
            yield env.timeout(think_time)
        yield from client.write_stream(open_file, chunk_of(index, take))
        written += take
        index += 1
    yield from client.close(open_file)
    return env.now - started
