"""A SPEC SFS 1.0 / LADDIS-style mixed-operation load generator (§7.2).

Reproduces the *method* of [WITT93]/[SPEC93]: several client hosts, each
running several load-generating processes, offer a target aggregate NFS
operation rate drawn from the SFS operation mix (writes are 15% of
operations but dominate server cost).  For each offered load the generator
reports achieved throughput (ops/s) and average response time (ms) — one
point of the Figure 2/3 curves.  Server capacity is the highest achieved
throughput whose average latency stays within the SFS 50 ms bound.

Load processes are *paced*: each keeps an absolute schedule of operation
start times drawn from an exponential interarrival distribution.  A
saturated server makes processes fall behind schedule, so achieved ops/s
flattens while latency climbs — the classic LADDIS curve shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.net.segment import Segment
from repro.nfs.client import NfsClient, OpenFile
from repro.nfs.protocol import (
    PROC_CREATE,
    PROC_GETATTR,
    PROC_LOOKUP,
    PROC_READ,
    PROC_READDIR,
    PROC_READLINK,
    PROC_REMOVE,
    PROC_SETATTR,
    PROC_STATFS,
    PROC_WRITE,
    NfsError,
)
from repro.rpc.client import RpcClient
from repro.sim import Environment, Tally

__all__ = ["SFS_MIX", "LaddisResult", "LaddisGenerator"]

#: SPEC SFS 1.0 operation mix.
SFS_MIX = [
    (PROC_LOOKUP, 0.34),
    (PROC_READ, 0.22),
    (PROC_WRITE, 0.15),
    (PROC_GETATTR, 0.13),
    (PROC_READLINK, 0.08),
    (PROC_READDIR, 0.03),
    (PROC_CREATE, 0.02),
    (PROC_REMOVE, 0.01),
    (PROC_SETATTR, 0.01),
    (PROC_STATFS, 0.01),
]

#: SFS 1.0 reporting requires average response time under 50 ms.
SFS_LATENCY_BOUND_MS = 50.0

#: LADDIS write-op transfer sizes (blocks of 8K) and weights: SFS writes
#: move whole files drawn from a size distribution skewed small but with a
#: long tail — it is these multi-block transfers, pushed through the
#: client's biods, that give the server its gathering opportunities.
WRITE_SIZE_BLOCKS = [1, 2, 4, 8, 16]
WRITE_SIZE_WEIGHTS = [0.40, 0.28, 0.18, 0.10, 0.04]


@dataclass
class LaddisResult:
    """One point on a Figure 2/3 curve."""

    offered_ops: float
    achieved_ops: float
    avg_latency_ms: float
    per_op_latency_ms: Dict[str, float] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def within_sfs_bound(self) -> bool:
        return self.avg_latency_ms <= SFS_LATENCY_BOUND_MS


class LaddisGenerator:
    """Drives one server with the SFS mix from several client hosts."""

    def __init__(
        self,
        env: Environment,
        segment: Segment,
        server_host: str = "server",
        clients: int = 5,
        procs_per_client: int = 4,
        nbiods: int = 4,
        file_count: int = 48,
        file_blocks: int = 8,
        record_size: int = 8192,
        seed: int = 12345,
        mix=None,
    ) -> None:
        if clients < 1 or procs_per_client < 1:
            raise ValueError("need at least one client and one process")
        self.mix = list(mix) if mix is not None else list(SFS_MIX)
        total = sum(weight for _op, weight in self.mix)
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"operation mix must sum to 1, got {total}")
        self.env = env
        self.segment = segment
        self.server_host = server_host
        self.procs_per_client = procs_per_client
        self.file_count = file_count
        self.file_blocks = file_blocks
        self.record_size = record_size
        self.rng = random.Random(seed)
        self.clients: List[NfsClient] = []
        for index in range(clients):
            endpoint = segment.attach(f"laddis-client-{index}")
            rpc = RpcClient(env, endpoint, server_host)
            self.clients.append(NfsClient(env, rpc, nbiods=nbiods))
        self._files: List[str] = []
        self._handles: Dict[str, OpenFile] = {}
        self._symlinks: List[tuple] = []
        self._temp_counter = 0

    # -- working set ------------------------------------------------------------

    def setup(self) -> Generator:
        """Create and fill the working-set files (run before measuring)."""
        client = self.clients[0]
        for index in range(self.file_count):
            name = f"laddis.{index:04d}"
            open_file = yield from client.create(name)
            payload = bytes([index % 256]) * self.record_size
            for _block in range(self.file_blocks):
                yield from client.write_stream(open_file, payload)
            yield from client.close(open_file)
            self._files.append(name)
            self._handles[name] = open_file
        # Symlinks for the READLINK share of the mix (SFS: 8%).
        for index in range(max(4, self.file_count // 8)):
            target = self._files[index % len(self._files)]
            fhandle, _fattr = yield from client.symlink(f"link.{index:03d}", target)
            self._symlinks.append(fhandle)

    # -- one measurement point ----------------------------------------------------

    def run_point(
        self, offered_ops: float, duration: float = 10.0, warmup: float = 2.0
    ) -> Generator:
        """Offer ``offered_ops`` aggregate ops/s for ``duration`` seconds
        (after ``warmup``); returns a :class:`LaddisResult`."""
        if offered_ops <= 0:
            raise ValueError("offered load must be positive")
        if not self._files:
            raise RuntimeError("call setup() before run_point()")
        nprocs = len(self.clients) * self.procs_per_client
        per_proc_rate = offered_ops / nprocs
        latency = Tally("laddis.latency")
        per_op: Dict[str, Tally] = {}
        counts: Dict[str, int] = {}
        measure_start = self.env.now + warmup
        measure_end = measure_start + duration
        stop = self.env.event()
        finished: List = []

        max_outstanding = 8  # per load process

        def one_op(client: NfsClient, op: str, rng: random.Random, state: dict):
            started = self.env.now
            try:
                yield from self._execute(client, op, rng)
            except NfsError:
                pass  # errors still consume server work; keep offering
            finally:
                state["outstanding"] -= 1
            if measure_start <= started < measure_end:
                elapsed_ms = (self.env.now - started) * 1000.0
                latency.observe(elapsed_ms)
                per_op.setdefault(op, Tally(op)).observe(elapsed_ms)
                counts[op] = counts.get(op, 0) + 1

        def load_proc(client: NfsClient, proc_seed: int):
            # Open-loop pacing: ops start on schedule regardless of earlier
            # ops still in flight (up to a sanity cap), the way SFS load
            # generators hold a target offered rate.  A saturated server
            # pushes outstanding to the cap, flattening achieved ops/s.
            rng = random.Random(proc_seed)
            state = {"outstanding": 0}
            next_at = self.env.now + rng.expovariate(per_proc_rate)
            while True:
                if next_at > self.env.now:
                    yield self.env.timeout(next_at - self.env.now)
                if self.env.now >= measure_end:
                    break
                if state["outstanding"] < max_outstanding:
                    op = self._pick_op(rng)
                    state["outstanding"] += 1
                    self.env.process(one_op(client, op, rng, state))
                next_at += rng.expovariate(per_proc_rate)
            finished.append(True)
            if len(finished) == nprocs:
                stop.succeed()

        proc_index = 0
        for client in self.clients:
            for _p in range(self.procs_per_client):
                self.env.process(
                    load_proc(client, hash((proc_index, self.rng.random()))),
                    name=f"laddis-proc-{proc_index}",
                )
                proc_index += 1
        yield stop
        # Grace period: let in-flight ops that started inside the window
        # finish and record their latencies.
        yield self.env.timeout(0.5)
        achieved = latency.count / duration
        return LaddisResult(
            offered_ops=offered_ops,
            achieved_ops=achieved,
            avg_latency_ms=latency.mean,
            per_op_latency_ms={op: tally.mean for op, tally in per_op.items()},
            op_counts=counts,
        )

    # -- operation execution -----------------------------------------------------

    def _pick_op(self, rng: random.Random) -> str:
        roll = rng.random()
        accumulated = 0.0
        for op, fraction in self.mix:
            accumulated += fraction
            if roll < accumulated:
                return op
        return self.mix[-1][0]

    def _random_file(self, rng: random.Random) -> OpenFile:
        return self._handles[self._files[rng.randrange(len(self._files))]]

    def _execute(self, client: NfsClient, op: str, rng: random.Random) -> Generator:
        if op == PROC_LOOKUP:
            name = self._files[rng.randrange(len(self._files))]
            yield from client.lookup(name)
        elif op == PROC_GETATTR:
            yield from client.getattr(self._random_file(rng).fhandle)
        elif op == PROC_READ:
            handle = self._random_file(rng)
            offset = rng.randrange(self.file_blocks) * self.record_size
            yield from client.read(handle, offset, self.record_size)
        elif op == PROC_WRITE:
            # Half the write ops truncate and rewrite a whole file — every
            # 8K transfer then grows the file and dirties the inode, the
            # 3N-disk-op regime of §5 that gathering collapses toward N.
            # The rest overwrite allocated blocks in place (the cheap
            # mtime-only regime for both servers).
            handle = self._random_file(rng)
            nblocks = rng.choices(WRITE_SIZE_BLOCKS, WRITE_SIZE_WEIGHTS)[0]
            if rng.random() < 0.5:
                yield from client.setattr(handle.fhandle, size=0)
            payload = bytes([rng.randrange(256)]) * (nblocks * self.record_size)
            yield from client.write_at(handle, 0, payload)
            # Whole, closed operations: wait out write-behind so the
            # measured latency covers the stable commit.
            yield from client.close(handle)
        elif op == PROC_READLINK:
            fhandle = self._symlinks[rng.randrange(len(self._symlinks))]
            yield from client.readlink(fhandle)
        elif op == PROC_READDIR:
            yield from client.readdir()
        elif op == PROC_CREATE:
            self._temp_counter += 1
            name = f"laddis.tmp.{self._temp_counter:06d}"
            open_file = yield from client.create(name)
            self._handles[name] = open_file
            self._files.append(name)
        elif op == PROC_REMOVE:
            victim = next(
                (name for name in reversed(self._files) if ".tmp." in name), None
            )
            if victim is None:
                yield from client.statfs()
                return
            self._files.remove(victim)
            self._handles.pop(victim, None)
            yield from client.remove(victim)
        elif op == PROC_SETATTR:
            handle = self._random_file(rng)
            yield from client.setattr(handle.fhandle, mtime=self.env.now)
        elif op == PROC_STATFS:
            yield from client.statfs()
        else:
            raise ValueError(f"unknown op {op!r}")
