"""Workloads: sequential writer, dumb PC, random access, LADDIS mix,
Zipf multi-tenant hot spots."""

from repro.workload.dumbpc import (
    DUMB_PC_THINK_TIME,
    FAST_CLIENT_THINK_TIME,
    make_dumb_pc,
)
from repro.workload.laddis import (
    SFS_LATENCY_BOUND_MS,
    SFS_MIX,
    LaddisGenerator,
    LaddisResult,
)
from repro.workload.random_access import write_random
from repro.workload.sequential import patterned_chunk, write_file
from repro.workload.timesharing import run_timesharing
from repro.workload.zipf import tenant_file_name, zipf_tenant, zipf_weights

__all__ = [
    "write_file",
    "patterned_chunk",
    "write_random",
    "run_timesharing",
    "make_dumb_pc",
    "DUMB_PC_THINK_TIME",
    "FAST_CLIENT_THINK_TIME",
    "LaddisGenerator",
    "LaddisResult",
    "SFS_MIX",
    "SFS_LATENCY_BOUND_MS",
    "zipf_tenant",
    "zipf_weights",
    "tenant_file_name",
]
