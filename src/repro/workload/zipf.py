"""Zipf-skewed multi-tenant hot-spot workload.

Each tenant owns a private set of files and appends to them with a
Zipf-distributed popularity: rank-``k`` of a tenant's files receives
traffic proportional to ``1 / (k + 1) ** skew``.  At ``skew=0`` every
file is equally likely; at ``skew≈1.2`` the rank-0 file soaks up most
of the writes — the classic hot-spot shape that makes placement policy
and live migration matter on a heterogeneous fleet.

Two design points keep runs comparable across policies:

* **Determinism** — each tenant draws from its own
  ``random.Random(seed * 1000003 + tenant)``, so adding tenants or
  reordering their processes never perturbs another tenant's choices.
* **Rotation** — tenant ``t``'s rank-``k`` choice lands on file index
  ``(k + t) % files``, so different tenants hammer *different* files
  and the aggregate hot set spreads across shards instead of collapsing
  onto one name.
"""

from __future__ import annotations

import random
from typing import Generator, List

from repro.nfs.client import NfsClient
from repro.sim import Environment
from repro.workload.sequential import patterned_chunk

__all__ = ["zipf_weights", "tenant_file_name", "zipf_tenant"]


def zipf_weights(files: int, skew: float) -> List[float]:
    """Normalized Zipf popularity weights for ``files`` ranks."""
    if files <= 0:
        raise ValueError(f"files must be positive, got {files}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    raw = [1.0 / (k + 1) ** skew for k in range(files)]
    total = sum(raw)
    return [w / total for w in raw]


def tenant_file_name(tenant: int, index: int) -> str:
    """The canonical per-tenant file name (``t<tenant>-f<index>``)."""
    return f"t{tenant}-f{index}"


def zipf_tenant(
    env: Environment,
    client: NfsClient,
    tenant: int,
    files: int = 4,
    ops: int = 32,
    chunk_bytes: int = 4096,
    skew: float = 1.1,
    think_time: float = 0.002,
    seed: int = 0,
) -> Generator:
    """One tenant's hot-spot writer: create ``files`` files, then issue
    ``ops`` Zipf-distributed appends of ``chunk_bytes`` each.

    Files are created up front (one create per file, so a placement
    policy is consulted once per file), then appends go through the
    client cache via ``write_stream``.  Returns the number of bytes the
    tenant appended.
    """
    rng = random.Random(seed * 1000003 + tenant)
    weights = zipf_weights(files, skew)
    handles = []
    for index in range(files):
        open_file = yield from client.create(tenant_file_name(tenant, index))
        handles.append(open_file)
    appended = 0
    ranks = list(range(files))
    for op in range(ops):
        if think_time > 0:
            yield env.timeout(think_time)
        rank = rng.choices(ranks, weights=weights)[0]
        index = (rank + tenant) % files
        data = patterned_chunk(tenant * 131 + op, chunk_bytes)
        yield from client.write_stream(handles[index], data)
        appended += chunk_bytes
    for open_file in handles:
        yield from client.close(open_file)
    return appended
