"""The central metrics registry: named instruments, owned in one place.

Subsystems used to thread :class:`~repro.sim.monitor.Tally` /
:class:`~repro.sim.monitor.Counter` objects through constructors and stash
them on whatever object was handy.  The registry inverts that: each
environment owns one :class:`MetricsRegistry` (created lazily by
:func:`registry_for`) and subsystems *register* instruments by name::

    metrics = registry_for(env)
    self.delivered = metrics.counter("fddi.delivered")
    self.latency = metrics.tally("server.op_latency")

Registration is get-or-create: asking for an existing name returns the
same instrument (and raises if the kind does not match), so an aggregate
view — ``registry.snapshot()`` — can walk every live instrument in the
simulation without knowing who created it.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.sim.core import Environment
from repro.sim.errors import SimError
from repro.sim.monitor import Counter, Ratio, Tally, TimeWeighted, UtilizationMeter

__all__ = ["MetricsRegistry", "registry_for"]

Instrument = Union[Tally, Counter, Ratio, TimeWeighted, UtilizationMeter]


class MetricsRegistry:
    """Owns every named instrument of one simulation environment."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._instruments: Dict[str, Instrument] = {}

    # -- registration (get-or-create) --------------------------------------

    def _register(self, name: str, kind: type, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, kind):
                raise SimError(
                    f"instrument {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def tally(self, name: str, keep_samples: bool = False) -> Tally:
        """A streaming-statistics tally (latencies, sizes)."""
        return self._register(
            name, Tally, lambda: Tally(name, keep_samples=keep_samples)
        )

    def counter(self, name: str) -> Counter:
        """A monotonically increasing event/byte counter."""
        return self._register(name, Counter, lambda: Counter(self.env, name))

    def utilization(self, name: str) -> UtilizationMeter:
        """A busy-fraction meter."""
        return self._register(
            name, UtilizationMeter, lambda: UtilizationMeter(self.env, name)
        )

    def ratio(self, name: str, numerator: Counter, denominator: Counter) -> Ratio:
        """A derived quotient of two counters (e.g. RPCs per user op)."""
        return self._register(
            name, Ratio, lambda: Ratio(name, numerator, denominator)
        )

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeighted:
        """A piecewise-constant level (queue lengths)."""
        return self._register(
            name, TimeWeighted, lambda: TimeWeighted(self.env, initial)
        )

    # -- introspection ------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Instrument:
        """The instrument registered under ``name`` (KeyError if absent)."""
        return self._instruments[name]

    def names(self) -> List[str]:
        """Every registered name, sorted."""
        return sorted(self._instruments)

    def snapshot(self, prefix: str = "") -> Dict[str, dict]:
        """One summary dict per instrument, keyed by name.

        Deterministic (sorted by name); safe to JSON-serialize.  With a
        ``prefix``, only instruments whose name starts with it are included
        — how a cluster rolls up one shard's (or one host's) instruments
        out of the shared registry.
        """
        out: Dict[str, dict] = {}
        for name in self.names():
            if prefix and not name.startswith(prefix):
                continue
            instrument = self._instruments[name]
            if isinstance(instrument, Tally):
                out[name] = {
                    "kind": "tally",
                    "count": instrument.count,
                    "mean": instrument.mean,
                    "min": instrument.min,
                    "max": instrument.max,
                    "total": instrument.total,
                }
            elif isinstance(instrument, Counter):
                out[name] = {
                    "kind": "counter",
                    "value": instrument.value,
                    "rate": instrument.rate(),
                }
            elif isinstance(instrument, Ratio):
                out[name] = {
                    "kind": "ratio",
                    "value": instrument.value,
                    "numerator": instrument.numerator.value,
                    "denominator": instrument.denominator.value,
                }
            elif isinstance(instrument, UtilizationMeter):
                out[name] = {
                    "kind": "utilization",
                    "utilization": instrument.utilization(),
                    "busy_time": instrument.busy_time,
                }
            else:  # TimeWeighted
                out[name] = {
                    "kind": "time_weighted",
                    "value": instrument.value,
                    "mean": instrument.mean(),
                }
        return out


def registry_for(env: Environment) -> MetricsRegistry:
    """The environment's registry, created and attached on first use."""
    registry = getattr(env, "_obs_registry", None)
    if registry is None:
        registry = MetricsRegistry(env)
        env._obs_registry = registry
    return registry
