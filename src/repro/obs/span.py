"""Typed spans: the unit of the observability event stream.

A :class:`Span` is one closed interval of simulated time attributed to a
*phase* of an RPC's lifecycle (or to a device, for spans with no trace).
Spans are emitted by the subsystems a request crosses — the client RPC
layer, the shared medium, the socket buffer, nfsd dispatch, the vnode
lock, the gathering engine, stable storage, and the reply path — and a
:class:`Trace` ties together every span belonging to one RPC.

Phase names are dotted, coarse-to-fine, and stable: exporters, the Figure 1
renderer, and the percentile summaries all key on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Span",
    "Trace",
    "PHASE_RPC",
    "PHASE_WIRE",
    "PHASE_SOCKBUF",
    "PHASE_DISPATCH",
    "PHASE_VNODE_WAIT",
    "PHASE_PROCRASTINATE",
    "PHASE_COMMIT",
    "PHASE_PARKED",
    "PHASE_REPLY",
    "PHASE_DISK_IO",
    "PHASE_NVRAM_COPY",
    "PHASE_FAULT",
    "PHASE_SHED",
    "PHASE_REPLICATE",
    "PHASE_SCRUB",
    "PHASE_REPAIR",
    "RPC_PHASES",
]

#: Client-side round trip: request leaves the client until its reply lands.
PHASE_RPC = "rpc.call"
#: One frame's occupancy of the shared medium (Ethernet / FDDI ring).
PHASE_WIRE = "net.wire"
#: Residency in the server's NFS socket buffer (arrival to svc dequeue).
PHASE_SOCKBUF = "net.sockbuf"
#: nfsd decode/dispatch CPU (svc dequeue to action-routine entry).
PHASE_DISPATCH = "server.dispatch"
#: Wait for the vnode sleep lock (§6.2).
PHASE_VNODE_WAIT = "server.vnode_wait"
#: One procrastination nap (§6.8).
PHASE_PROCRASTINATE = "gather.procrastinate"
#: Submit-to-stable for this request's data+metadata promise.
PHASE_COMMIT = "storage.commit"
#: Parked-reply residency: descriptor enqueue until its reply is sent.
PHASE_PARKED = "reply.parked"
#: Stable-to-wire reply delay (includes parked-reply FIFO ordering + CPU).
PHASE_REPLY = "reply.delay"
#: One storage-device transaction, submit to completion (no trace).
PHASE_DISK_IO = "disk.io"
#: One NVRAM acceptance copy (no trace).
PHASE_NVRAM_COPY = "nvram.copy"
#: One injected fault's active window (no trace); ``attrs["kind"]`` names
#: the fault, so exported timelines show crashes and partitions inline
#: with the RPC lifecycle phases.
PHASE_FAULT = "fault.inject"
#: One admission-control shed decision (no trace — the request never got
#: far enough to carry one); ``attrs["action"]`` records what the shed
#: policy did (refused / evicted / early_reply / dup_dropped).
PHASE_SHED = "overload.shed"
#: One replicated-commit round trip (repro.replica): local data is stable,
#: the parked reply waits for ``quorum`` backups to ack stable storage.
PHASE_REPLICATE = "replica.commit"
#: One background scrub pass over a shard's referenced blocks
#: (repro.integrity); ``attrs`` carry blocks scanned and defects found.
PHASE_SCRUB = "scrub.pass"
#: One block repair (peer fetch + local rewrite); ``attrs`` carry the
#: block address and the peer that served the verified copy.
PHASE_REPAIR = "scrub.repair"

#: The per-request phases the percentile summary reports by default.
RPC_PHASES = (
    PHASE_SOCKBUF,
    PHASE_DISPATCH,
    PHASE_VNODE_WAIT,
    PHASE_PROCRASTINATE,
    PHASE_COMMIT,
    PHASE_PARKED,
    PHASE_REPLY,
)


@dataclass(slots=True)
class Trace:
    """Identity carried by one RPC through its whole lifecycle.

    Created client-side when tracing is on and attached to the
    :class:`~repro.rpc.messages.RpcCall`, so every layer the request
    crosses can stamp its spans with the same ``trace_id`` (the RPC xid —
    already globally unique and deterministic).
    """

    trace_id: int
    proc: str
    client: str
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class Span:
    """One closed interval of simulated time in a request's lifecycle."""

    name: str
    actor: str
    start: float
    end: float
    #: RPC xid this span belongs to; None for device-level spans.
    trace_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Emission index assigned by the collector: a deterministic total
    #: order even among spans closing at the same instant.
    seq: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the JSONL exporter)."""
        record = {
            "seq": self.seq,
            "name": self.name,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record
