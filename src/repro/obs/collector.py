"""Span collectors: where every instrumented layer sends its spans.

The collector is looked up once, at component construction time, via
:func:`collector_for` — no constructor threading.  By default every
environment carries the shared :data:`NULL_COLLECTOR`, whose ``emit`` is a
no-op, so an untraced simulation pays nothing but a predicate check on its
hot paths and produces bit-identical results with tracing on or off
(spans only *read* ``env.now``; they never schedule events).

:func:`install` attaches a real collector to an environment.  It must run
before the components under observation are built (the
:class:`~repro.experiments.testbed.Testbed` does this when its config asks
for tracing).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.obs.span import Span

__all__ = [
    "NullCollector",
    "RecordingCollector",
    "NULL_COLLECTOR",
    "install",
    "collector_for",
]


class NullCollector:
    """The zero-cost default: accepts spans and discards them."""

    #: Instrumented layers guard span bookkeeping on this flag.
    enabled = False

    def emit(
        self,
        name: str,
        actor: str,
        start: float,
        end: float,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Discard a span."""

    def subscribe(self, callback: Callable[[Span], None]) -> None:
        raise RuntimeError(
            "cannot subscribe to the null collector; install() a "
            "RecordingCollector before building the testbed"
        )


class RecordingCollector:
    """Collects every emitted span, in deterministic emission order.

    Exporters subscribe with :meth:`subscribe`; each closed span is pushed
    to every subscriber as it is emitted, and also kept in :attr:`spans`
    for after-the-fact analysis (the Figure 1 renderer, golden tests).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._subscribers: List[Callable[[Span], None]] = []
        self._seq = 0

    def emit(
        self,
        name: str,
        actor: str,
        start: float,
        end: float,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Close and record one span."""
        self._seq += 1
        span = Span(
            name=name,
            actor=actor,
            start=start,
            end=end,
            trace_id=trace_id,
            attrs=attrs,
            seq=self._seq,
        )
        self.spans.append(span)
        for subscriber in self._subscribers:
            subscriber(span)

    def subscribe(self, callback: Callable[[Span], None]) -> None:
        """Register ``callback`` to receive every span as it closes."""
        self._subscribers.append(callback)

    def by_name(self, name: str) -> List[Span]:
        """All recorded spans with phase ``name``, in emission order."""
        return [span for span in self.spans if span.name == name]

    def for_trace(self, trace_id: int) -> List[Span]:
        """All recorded spans belonging to one RPC, in emission order."""
        return [span for span in self.spans if span.trace_id == trace_id]


#: The shared do-nothing collector every untraced environment uses.
NULL_COLLECTOR = NullCollector()


def install(env, collector) -> Any:
    """Attach ``collector`` to ``env``; returns the collector.

    Components built afterwards (and looking themselves up via
    :func:`collector_for`) will emit into it.
    """
    env._obs_collector = collector
    return collector


def collector_for(env):
    """The environment's collector, or the shared null collector."""
    return getattr(env, "_obs_collector", NULL_COLLECTOR)
