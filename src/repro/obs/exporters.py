"""Exporters: pluggable consumers of the span stream.

Each exporter subscribes to a :class:`~repro.obs.collector.RecordingCollector`
and turns the deterministic span stream into a different artifact:

* :class:`JsonlExporter` — one JSON object per span, machine-readable;
* :class:`PercentileSummary` — per-phase latency distributions (p50/p95/p99),
  the numbers that distinguish stable-storage policies;
* :func:`render_span_timeline` — the human-readable two-column timeline the
  Figure 1 command prints.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.obs.span import RPC_PHASES, Span
from repro.sim.monitor import Tally

__all__ = ["JsonlExporter", "PercentileSummary", "render_span_timeline"]


class JsonlExporter:
    """Streams each span as one JSON line to ``stream``."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.count = 0

    def __call__(self, span: Span) -> None:
        self.stream.write(json.dumps(span.to_dict(), sort_keys=True))
        self.stream.write("\n")
        self.count += 1


class PercentileSummary:
    """Aggregates span durations into per-phase latency distributions.

    Subscribe it to a collector (``collector.subscribe(summary)``) or feed
    it a finished span list (``summary.consume(spans)``).  ``phases=None``
    aggregates every phase seen; a sequence restricts to those names.
    """

    def __init__(self, phases: Optional[Sequence[str]] = RPC_PHASES) -> None:
        self._phases = None if phases is None else set(phases)
        self._tallies: Dict[str, Tally] = {}

    def __call__(self, span: Span) -> None:
        if self._phases is not None and span.name not in self._phases:
            return
        tally = self._tallies.get(span.name)
        if tally is None:
            tally = self._tallies[span.name] = Tally(span.name, keep_samples=True)
        tally.observe(span.duration)

    def consume(self, spans: Iterable[Span]) -> "PercentileSummary":
        for span in spans:
            self(span)
        return self

    def table(self) -> Dict[str, Dict[str, float]]:
        """{phase: {count, mean, p50, p95, p99, max}} in seconds, sorted."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._tallies):
            tally = self._tallies[name]
            out[name] = {
                "count": tally.count,
                "mean": tally.mean,
                "p50": tally.percentile(0.50),
                "p95": tally.percentile(0.95),
                "p99": tally.percentile(0.99),
                "max": tally.max,
            }
        return out

    def render(self) -> str:
        """Human-readable per-phase table (latencies in milliseconds)."""
        lines = [
            f"{'phase':<22} {'count':>7} {'mean ms':>9} {'p50 ms':>9} "
            f"{'p95 ms':>9} {'p99 ms':>9}"
        ]
        for name, row in self.table().items():
            lines.append(
                f"{name:<22} {row['count']:>7.0f} {row['mean'] * 1e3:>9.3f} "
                f"{row['p50'] * 1e3:>9.3f} {row['p95'] * 1e3:>9.3f} "
                f"{row['p99'] * 1e3:>9.3f}"
            )
        return "\n".join(lines)


def render_span_timeline(
    spans: List[Span],
    left_actor: str = "client",
    right_actor: str = "disk",
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
) -> str:
    """Two-column plain-text timeline of span *starts* (client vs disk)."""
    lines = [f"{'time(ms)':>9}  {'client':<28}{'server disk':<28}"]
    for span in sorted(spans, key=lambda s: (s.start, s.seq)):
        time_ms = span.start * 1000.0
        if start_ms is not None and time_ms < start_ms:
            continue
        if end_ms is not None and time_ms > end_ms:
            continue
        label = span.attrs.get("label", span.name)
        left = label if span.actor.startswith(left_actor) else ""
        right = label if span.actor.startswith(right_actor) else ""
        lines.append(f"{time_ms:9.1f}  {left:<28}{right:<28}")
    return "\n".join(lines)
