"""repro.obs — span-based tracing and the central metrics registry.

The unified observability layer: every RPC can carry a
:class:`~repro.obs.span.Trace` through its lifecycle, with typed
:class:`~repro.obs.span.Span` records emitted at each layer boundary it
crosses (wire occupancy, socket-buffer residency, dispatch, vnode-lock
wait, procrastination, stable-storage commit, parked-reply delay, reply).
A per-environment :class:`~repro.obs.registry.MetricsRegistry` owns every
named Tally/Counter/UtilizationMeter so subsystems register instruments
instead of threading them through constructors, and pluggable exporters
(JSONL, percentile summary, timeline) subscribe to the span stream.

Tracing is off by default — the shared :data:`NULL_COLLECTOR` discards
spans without scheduling anything, so benchmark numbers are unaffected —
and the span stream is deterministic under a fixed seed.
"""

from repro.obs.collector import (
    NULL_COLLECTOR,
    NullCollector,
    RecordingCollector,
    collector_for,
    install,
)
from repro.obs.exporters import JsonlExporter, PercentileSummary, render_span_timeline
from repro.obs.registry import MetricsRegistry, registry_for
from repro.obs.span import (
    PHASE_COMMIT,
    PHASE_DISK_IO,
    PHASE_DISPATCH,
    PHASE_FAULT,
    PHASE_NVRAM_COPY,
    PHASE_PARKED,
    PHASE_PROCRASTINATE,
    PHASE_REPAIR,
    PHASE_REPLICATE,
    PHASE_REPLY,
    PHASE_RPC,
    PHASE_SCRUB,
    PHASE_SHED,
    PHASE_SOCKBUF,
    PHASE_VNODE_WAIT,
    PHASE_WIRE,
    RPC_PHASES,
    Span,
    Trace,
)

__all__ = [
    "Span",
    "Trace",
    "NullCollector",
    "RecordingCollector",
    "NULL_COLLECTOR",
    "install",
    "collector_for",
    "MetricsRegistry",
    "registry_for",
    "JsonlExporter",
    "PercentileSummary",
    "render_span_timeline",
    "PHASE_RPC",
    "PHASE_WIRE",
    "PHASE_SOCKBUF",
    "PHASE_DISPATCH",
    "PHASE_VNODE_WAIT",
    "PHASE_PROCRASTINATE",
    "PHASE_COMMIT",
    "PHASE_PARKED",
    "PHASE_REPLY",
    "PHASE_DISK_IO",
    "PHASE_NVRAM_COPY",
    "PHASE_FAULT",
    "PHASE_SHED",
    "PHASE_REPLICATE",
    "PHASE_SCRUB",
    "PHASE_REPAIR",
    "RPC_PHASES",
]
