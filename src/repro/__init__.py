"""repro — reproduction of Juszczak, "Improving the Write Performance of an
NFS Server" (USENIX Winter 1994).

The package is a deterministic discrete-event simulation of a complete NFS
client/server stack — network, RPC, filesystem, disk, NVRAM — with the
paper's *write gathering* technique as the core contribution, plus the
workloads and experiment drivers that regenerate every table and figure in
the paper's evaluation.

Quick start::

    from repro.experiments import TestbedConfig, run_filecopy
    from repro.net import FDDI

    metrics = run_filecopy(
        TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7),
        file_mb=10,
    )
    print(metrics.client_kb_per_sec)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core import GatheringWritePath, GatherPolicy
from repro.experiments import TestbedConfig, run_filecopy, run_table
from repro.server import NfsServer, ServerConfig

__version__ = "1.0.0"

__all__ = [
    "GatheringWritePath",
    "GatherPolicy",
    "NfsServer",
    "ServerConfig",
    "TestbedConfig",
    "run_filecopy",
    "run_table",
    "__version__",
]
