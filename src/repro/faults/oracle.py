"""The crash-consistency oracle: acked ⇒ durable, and no structural damage.

The oracle shadows every *stable* WRITE acknowledgement a client receives
(via :attr:`NfsClient.on_write_acked`) into a per-inode expected byte
image.  At every check point — the instant of each simulated crash, and
once at the end of the run — it asserts the paper's crash contract against
the server's durable image:

1. **Durability**: every acked byte range is durably readable
   (:meth:`Ufs.durable_read` returns actual bytes, not None);
2. **Content**: the durable bytes equal the last acked write's bytes;
3. **Structure**: ``fsck`` in post-crash mode reports zero structural
   errors (lost *unacked* tails are legitimate and stay warnings).

Any violation is recorded with the simulation time and byte range, so a
chaos campaign's report pinpoints exactly which promise broke and when.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fs.fsck import fsck

__all__ = ["Oracle"]


class Oracle:
    """Records client-acked writes; diffs them against the durable image.

    Built either from a testbed (the single-server form) or from an
    explicit ``(env, server)`` pair — a cluster runs one oracle per shard,
    each checking only the writes that shard acknowledged.
    """

    def __init__(self, testbed=None, *, env=None, server=None) -> None:
        if testbed is None and (env is None or server is None):
            raise ValueError("Oracle needs a testbed or both env= and server=")
        self.testbed = testbed
        self.env = env if env is not None else testbed.env
        self.server = server if server is not None else testbed.server
        #: Per-ino expected content, densely indexed from byte 0.
        self._images: Dict[int, bytearray] = {}
        #: Per-ino mask of which bytes have actually been acked (an image
        #: may have unwritten gaps that carry no promise).
        self._acked: Dict[int, bytearray] = {}
        self.acked_writes = 0
        self.checks = 0
        #: Human-readable violation strings, in detection order.
        self.violations: List[str] = []

    # -- recording --------------------------------------------------------------

    def attach(self, client) -> None:
        """Shadow ``client``'s stable write acknowledgements."""
        client.on_write_acked = self.record_ack

    def record_ack(self, fhandle, offset: int, data: bytes) -> None:
        """One stable WRITE was acked: remember the promise it binds."""
        ino = fhandle[0]
        end = offset + len(data)
        image = self._images.setdefault(ino, bytearray())
        mask = self._acked.setdefault(ino, bytearray())
        if len(image) < end:
            image.extend(b"\x00" * (end - len(image)))
            mask.extend(b"\x00" * (end - len(mask)))
        image[offset:end] = data
        mask[offset:end] = b"\x01" * len(data)
        self.acked_writes += 1

    def _acked_runs(self, ino: int) -> List[Tuple[int, int]]:
        """Maximal contiguous byte ranges of ``ino`` covered by acks."""
        mask = self._acked[ino]
        runs: List[Tuple[int, int]] = []
        start = None
        for position, flag in enumerate(mask):
            if flag and start is None:
                start = position
            elif not flag and start is not None:
                runs.append((start, position))
                start = None
        if start is not None:
            runs.append((start, len(mask)))
        return runs

    def acked_inos(self) -> List[int]:
        """Inodes with at least one acked write (sorted)."""
        return sorted(self._images)

    def acked_byte_total(self) -> int:
        """Total bytes currently covered by stable-write acknowledgements.

        The overload experiment's goodput numerator: work the server
        *promised* (acked stably), not merely work clients offered —
        retransmitted duplicates and timed-out attempts never count.
        """
        return sum(sum(1 for flag in mask if flag) for mask in self._acked.values())

    # -- checking ---------------------------------------------------------------

    def check(self, label: str = "final") -> List[str]:
        """Assert the crash contract now; returns (and records) violations."""
        found: List[str] = []
        now = self.env.now
        ufs = self.server.ufs
        for ino in sorted(self._images):
            image = self._images[ino]
            for start, end in self._acked_runs(ino):
                durable = ufs.durable_read(ino, start, end - start)
                if durable is None:
                    found.append(
                        f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                        "acked but not durably readable"
                    )
                elif durable != bytes(image[start:end]):
                    first_bad = next(
                        index
                        for index, (got, want) in enumerate(
                            zip(durable, image[start:end])
                        )
                        if got != want
                    )
                    found.append(
                        f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                        f"durable content differs from acked content "
                        f"(first mismatch at byte {start + first_bad})"
                    )
        report = fsck(ufs, strict=False)
        for error in report.errors:
            found.append(f"[{label} t={now:.6f}] fsck: {error}")
        self.checks += 1
        self.violations.extend(found)
        return found

    def check_group(self, members, label: str = "final") -> List[str]:
        """Assert the *replica-group* crash contract (repro.replica).

        ``members`` is the surviving replica set as ``(name, ufs)`` pairs.
        An acked byte range is satisfied when **any** surviving member
        holds it durably with the acked content — the group promises the
        write outlives the primary, not that every member is already
        caught up at the instant of a crash.  Structure is checked on
        every survivor: a quorum cannot excuse a corrupt backup.
        """
        found: List[str] = []
        now = self.env.now
        for ino in sorted(self._images):
            image = self._images[ino]
            for start, end in self._acked_runs(ino):
                want = bytes(image[start:end])
                if not any(
                    ufs.durable_read(ino, start, end - start) == want
                    for _name, ufs in members
                ):
                    found.append(
                        f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                        "acked but missing from every surviving replica"
                    )
        for name, ufs in members:
            report = fsck(ufs, strict=False)
            found.extend(
                f"[{label} t={now:.6f}] fsck({name}): {error}"
                for error in report.errors
            )
        self.checks += 1
        self.violations.extend(found)
        return found

    @property
    def clean(self) -> bool:
        return not self.violations
