"""The crash-consistency oracle: acked ⇒ durable, and no structural damage.

The oracle shadows every *stable* WRITE acknowledgement a client receives
(via :attr:`NfsClient.on_write_acked`) into a per-inode expected byte
image.  At every check point — the instant of each simulated crash, and
once at the end of the run — it asserts the paper's crash contract against
the server's durable image:

1. **Durability**: every acked byte range is durably readable
   (:meth:`Ufs.durable_read` returns actual bytes, not None);
2. **Content**: the durable bytes equal the last acked write's bytes;
3. **Structure**: ``fsck`` in post-crash mode reports zero structural
   errors (lost *unacked* tails are legitimate and stay warnings).

Any violation is recorded with the simulation time and byte range, so a
chaos campaign's report pinpoints exactly which promise broke and when.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.fsck import fsck

__all__ = ["Oracle"]


class Oracle:
    """Records client-acked writes; diffs them against the durable image.

    Built either from a testbed (the single-server form) or from an
    explicit ``(env, server)`` pair — a cluster runs one oracle per shard,
    each checking only the writes that shard acknowledged.
    """

    def __init__(self, testbed=None, *, env=None, server=None) -> None:
        if testbed is None and (env is None or server is None):
            raise ValueError("Oracle needs a testbed or both env= and server=")
        self.testbed = testbed
        self.env = env if env is not None else testbed.env
        self.server = server if server is not None else testbed.server
        #: Per-ino expected content, densely indexed from byte 0.
        self._images: Dict[int, bytearray] = {}
        #: Per-ino mask of which bytes have actually been acked (an image
        #: may have unwritten gaps that carry no promise).  Flag values:
        #: 0 = never acked, 1 = acked with known content (byte compare),
        #: 2 = acked via a flyweight payload (content unknown — only the
        #: range's durability is promised).  Both nonzero flags count
        #: identically toward acked runs and byte totals, so accounting is
        #: mode-independent.
        self._acked: Dict[int, bytearray] = {}
        self.acked_writes = 0
        #: Async-commit bookkeeping: unstable acks carry *no* durability
        #: promise — the range sits here until a COMMIT under the right
        #: verifier promotes it to a hard ack.  An un-COMMITted write may
        #: legally be absent from a post-crash image; the client's replay
        #: obligation is what eventually lands it (checked as a hard ack
        #: once the COMMIT succeeds).
        self._pending: Dict[int, List[Tuple[int, int]]] = {}
        self.unstable_acks = 0
        self.committed_acks = 0
        self.checks = 0
        #: Human-readable violation strings, in detection order.
        self.violations: List[str] = []
        #: Read-contract violations (also mirrored into ``violations``):
        #: an acked READ returned bytes differing from the acked write
        #: image — silent corruption that escaped every checksum.
        self.read_violations: List[str] = []
        self.read_acks = 0
        # Triage context, all optional: filled by cluster oracles
        # (shard/role) and chaos campaigns (plan seed); the controller
        # keeps ``note_fault`` current.  Empty context adds nothing to
        # messages, so single-server reports are byte-stable.
        self.shard: Optional[str] = None
        self.role: Optional[str] = None
        self.plan_seed: Optional[object] = None
        self._last_fault: Optional[dict] = None

    # -- recording --------------------------------------------------------------

    def attach(self, client) -> None:
        """Shadow ``client``'s write acknowledgements.

        Stable (v2) acks bind a durability promise immediately; unstable
        (v3) acks only park the range as pending, and the promise binds
        when the matching COMMIT is acked.
        """
        client.on_write_acked = self.record_ack
        client.on_unstable_acked = self.record_unstable
        client.on_commit_acked = self.record_commit

    def record_ack(self, fhandle, offset: int, data: bytes) -> None:
        """One stable WRITE was acked: remember the promise it binds."""
        ino = fhandle[0]
        end = offset + len(data)
        image = self._images.setdefault(ino, bytearray())
        mask = self._acked.setdefault(ino, bytearray())
        if len(image) < end:
            image.extend(b"\x00" * (end - len(image)))
            mask.extend(b"\x00" * (end - len(mask)))
        if isinstance(data, (bytes, bytearray, memoryview)):
            image[offset:end] = data
            mask[offset:end] = b"\x01" * len(data)
        else:
            # Flyweight payload: the range is promised durable, its
            # content is not — flag 2 so checks skip the byte compare.
            mask[offset:end] = b"\x02" * len(data)
        self.acked_writes += 1

    def record_unstable(self, fhandle, offset: int, data) -> None:
        """An *unstable* WRITE was acked: no durability promise yet.

        The range is tracked only so reports can show how much data was
        in flight under the async-commit contract; a crash may legally
        drop it (the client resends under the new verifier).
        """
        self.unstable_acks += 1
        self._pending.setdefault(fhandle[0], []).append((offset, len(data)))

    def record_commit(self, fhandle, offset: int, data) -> None:
        """A COMMIT under the matching verifier covered this range: the
        durability promise binds now, exactly like a stable WRITE ack."""
        self.committed_acks += 1
        pending = self._pending.get(fhandle[0])
        if pending is not None:
            try:
                pending.remove((offset, len(data)))
            except ValueError:
                pass  # a replayed range re-recorded under a new verifier
            if not pending:
                del self._pending[fhandle[0]]
        self.record_ack(fhandle, offset, data)

    def record_read(self, fhandle, offset: int, data) -> None:
        """An acked READ: its bytes must match the acked write image.

        This is the end-to-end half of the integrity contract: whatever
        the storage stack did internally, a read that *succeeded* must
        never hand the application bytes differing from what was acked
        stable.  Flyweight reads and never-acked ranges are skipped.
        """
        self.read_acks += 1
        if not isinstance(data, (bytes, bytearray, memoryview)):
            return
        ino = fhandle[0]
        image = self._images.get(ino)
        mask = self._acked.get(ino)
        if image is None or mask is None:
            return
        upper = min(offset + len(data), len(mask))
        if upper <= offset:
            return
        now = self.env.now
        suffix = self._context_suffix()
        for sub_start, sub_end in self._content_runs(mask, offset, upper):
            got = bytes(data[sub_start - offset : sub_end - offset])
            want = bytes(image[sub_start:sub_end])
            if got != want:
                message = (
                    f"[read t={now:.6f}] ino {ino} bytes [{sub_start},{sub_end}): "
                    f"acked READ returned bytes differing from the acked "
                    f"write image (silent corruption){suffix}"
                )
                self.read_violations.append(message)
                self.violations.append(message)

    def note_fault(self, record: dict) -> None:
        """Remember the most recently applied fault for triage context."""
        self._last_fault = dict(record)

    def set_context(
        self,
        shard: Optional[str] = None,
        role: Optional[str] = None,
        plan_seed: Optional[object] = None,
    ) -> None:
        """Attach triage context appended to every violation message."""
        if shard is not None:
            self.shard = shard
        if role is not None:
            self.role = role
        if plan_seed is not None:
            self.plan_seed = plan_seed

    def _context_suffix(self) -> str:
        parts: List[str] = []
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.role is not None:
            parts.append(f"role={self.role}")
        if self.plan_seed is not None:
            parts.append(f"plan_seed={self.plan_seed}")
        if self._last_fault is not None:
            kind = self._last_fault.get("kind", "?")
            start = self._last_fault.get("start")
            at = f"@t={start:.6f}" if isinstance(start, float) else ""
            parts.append(f"last_fault={kind}{at}")
        return f" [{', '.join(parts)}]" if parts else ""

    def pending_byte_total(self) -> int:
        """Bytes acked unstable and not yet promoted by a COMMIT."""
        return sum(
            length for ranges in self._pending.values() for _offset, length in ranges
        )

    def _acked_runs(self, ino: int) -> List[Tuple[int, int]]:
        """Maximal contiguous byte ranges of ``ino`` covered by acks."""
        mask = self._acked[ino]
        runs: List[Tuple[int, int]] = []
        start = None
        for position, flag in enumerate(mask):
            if flag and start is None:
                start = position
            elif not flag and start is not None:
                runs.append((start, position))
                start = None
        if start is not None:
            runs.append((start, len(mask)))
        return runs

    @staticmethod
    def _content_runs(mask: bytearray, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-runs of [start, end) whose bytes were acked *with content*
        (flag 1); flyweight-acked bytes (flag 2) carry no content promise."""
        runs: List[Tuple[int, int]] = []
        run_start = None
        for position in range(start, end):
            if mask[position] == 1:
                if run_start is None:
                    run_start = position
            elif run_start is not None:
                runs.append((run_start, position))
                run_start = None
        if run_start is not None:
            runs.append((run_start, end))
        return runs

    def acked_inos(self) -> List[int]:
        """Inodes with at least one acked write (sorted)."""
        return sorted(self._images)

    def acked_byte_total(self) -> int:
        """Total bytes currently covered by stable-write acknowledgements.

        The overload experiment's goodput numerator: work the server
        *promised* (acked stably), not merely work clients offered —
        retransmitted duplicates and timed-out attempts never count.
        """
        return sum(sum(1 for flag in mask if flag) for mask in self._acked.values())

    # -- checking ---------------------------------------------------------------

    def check(self, label: str = "final") -> List[str]:
        """Assert the crash contract now; returns (and records) violations."""
        found: List[str] = []
        now = self.env.now
        ufs = self.server.ufs
        for ino in sorted(self._images):
            image = self._images[ino]
            mask = self._acked[ino]
            for start, end in self._acked_runs(ino):
                content_runs = self._content_runs(mask, start, end)
                if not content_runs:
                    # Flyweight-only run: reachability is the whole promise.
                    if not ufs.durable_covered(ino, start, end - start):
                        found.append(
                            f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                            "acked but not durably readable"
                        )
                    continue
                durable = ufs.durable_read(ino, start, end - start)
                if durable is None:
                    found.append(
                        f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                        "acked but not durably readable"
                    )
                    continue
                for sub_start, sub_end in content_runs:
                    got = durable[sub_start - start : sub_end - start]
                    want = bytes(image[sub_start:sub_end])
                    if got != want:
                        first_bad = next(
                            index
                            for index, (got_byte, want_byte) in enumerate(zip(got, want))
                            if got_byte != want_byte
                        )
                        found.append(
                            f"[{label} t={now:.6f}] ino {ino} bytes "
                            f"[{sub_start},{sub_end}): durable content differs "
                            f"from acked content "
                            f"(first mismatch at byte {sub_start + first_bad})"
                        )
        report = fsck(ufs, strict=False)
        for error in report.errors:
            found.append(f"[{label} t={now:.6f}] fsck: {error}")
        suffix = self._context_suffix()
        if suffix:
            found = [message + suffix for message in found]
        self.checks += 1
        self.violations.extend(found)
        return found

    def check_group(self, members, label: str = "final") -> List[str]:
        """Assert the *replica-group* crash contract (repro.replica).

        ``members`` is the surviving replica set as ``(name, ufs)`` pairs.
        An acked byte range is satisfied when **any** surviving member
        holds it durably with the acked content — the group promises the
        write outlives the primary, not that every member is already
        caught up at the instant of a crash.  Structure is checked on
        every survivor: a quorum cannot excuse a corrupt backup.
        """
        found: List[str] = []
        now = self.env.now
        for ino in sorted(self._images):
            image = self._images[ino]
            mask = self._acked[ino]
            for start, end in self._acked_runs(ino):
                content_runs = self._content_runs(mask, start, end)
                if not content_runs:
                    satisfied = any(
                        ufs.durable_covered(ino, start, end - start)
                        for _name, ufs in members
                    )
                else:
                    satisfied = any(
                        self._member_holds(ufs, ino, image, start, end, content_runs)
                        for _name, ufs in members
                    )
                if not satisfied:
                    found.append(
                        f"[{label} t={now:.6f}] ino {ino} bytes [{start},{end}): "
                        "acked but missing from every surviving replica"
                    )
        for name, ufs in members:
            report = fsck(ufs, strict=False)
            found.extend(
                f"[{label} t={now:.6f}] fsck({name}): {error}"
                for error in report.errors
            )
        suffix = self._context_suffix()
        if suffix:
            found = [message + suffix for message in found]
        self.checks += 1
        self.violations.extend(found)
        return found

    @staticmethod
    def _member_holds(
        ufs, ino: int, image: bytearray, start: int, end: int, content_runs
    ) -> bool:
        """Does one replica hold [start, end) durably, with the acked
        content wherever content was promised (flag-1 sub-runs)?"""
        durable = ufs.durable_read(ino, start, end - start)
        if durable is None:
            return False
        return all(
            durable[sub_start - start : sub_end - start] == bytes(image[sub_start:sub_end])
            for sub_start, sub_end in content_runs
        )

    @property
    def clean(self) -> bool:
        return not self.violations
