"""Seeded chaos campaigns: randomized-but-reproducible fault plans.

A :class:`ChaosCampaign` sweeps every write path (standard / gather / siva
/ async_commit) crossed with Presto on/off, running N generated :class:`FaultPlan`s per
combination against a sequential-write workload.  Each plan's RNG is
seeded from ``(campaign seed, write path, presto, plan index)``, so the
same seed always produces byte-identical plans, sim timelines, and JSON
reports — a failing plan can be replayed exactly from its report.

Every run attaches an :class:`~repro.faults.oracle.Oracle` and checks the
crash contract at every crash and at end of run; the campaign's verdict is
simply whether any oracle violation was seen anywhere.
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.faults.controller import FaultController
from repro.faults.events import (
    AtTime,
    DatagramDuplication,
    DatagramReorder,
    FaultPlan,
    NetworkPartition,
    OnSpan,
    PacketLossBurst,
    RetransmitStorm,
    ServerCrash,
    SlowDisk,
    SockBufShrink,
)
from repro.faults.oracle import Oracle
from repro.net.spec import FDDI
from repro.payload import PAYLOAD_FULL, coerce_payload_mode
from repro.obs import (
    PHASE_DISPATCH,
    PHASE_PROCRASTINATE,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
)
from repro.sim import AllOf
from repro.workload import write_file

__all__ = ["ChaosCampaign", "CampaignReport", "PlanResult", "generate_plan", "run_plan"]

WRITE_PATHS = ("standard", "gather", "siva", "async_commit")

#: Default NVRAM size for the presto=on arm (1 MB, the paper's board).
PRESTO_BYTES = 1 << 20


@dataclass
class PlanResult:
    """Outcome of one plan against one testbed configuration."""

    plan: FaultPlan
    write_path: str
    presto: bool
    faults_applied: List[dict]
    sim_elapsed: float
    acked_writes: int
    crashes: int
    oracle_checks: int
    retransmissions: int
    duplicates_dropped: int
    duplicates_replayed: int
    stable_violations: int
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and self.stable_violations == 0

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.describe(),
            "write_path": self.write_path,
            "presto": self.presto,
            "faults_applied": self.faults_applied,
            "sim_elapsed": round(self.sim_elapsed, 9),
            "acked_writes": self.acked_writes,
            "crashes": self.crashes,
            "oracle_checks": self.oracle_checks,
            "retransmissions": self.retransmissions,
            "duplicates_dropped": self.duplicates_dropped,
            "duplicates_replayed": self.duplicates_replayed,
            "stable_violations": self.stable_violations,
            "violations": list(self.violations),
        }


@dataclass
class CampaignReport:
    """Aggregated outcome of a whole campaign."""

    seed: int
    file_kb: int
    plans_per_combo: int
    results: List[PlanResult] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for result in self.results:
            prefix = f"{result.write_path}/presto={'on' if result.presto else 'off'}/{result.plan.name}"
            out.extend(f"{prefix}: {violation}" for violation in result.violations)
            if result.stable_violations:
                out.append(
                    f"{prefix}: {result.stable_violations} server-side "
                    "stable-before-reply violations"
                )
        return out

    @property
    def clean(self) -> bool:
        return all(result.clean for result in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "file_kb": self.file_kb,
            "plans_per_combo": self.plans_per_combo,
            "plans_run": len(self.results),
            "total_acked_writes": sum(r.acked_writes for r in self.results),
            "total_crashes": sum(r.crashes for r in self.results),
            "total_retransmissions": sum(r.retransmissions for r in self.results),
            "clean": self.clean,
            "violations": self.violations,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# -- plan generation -----------------------------------------------------------


def _random_event(rng: random.Random, at: float):
    """One non-crash adversity starting at sim time ``at``."""
    kind = rng.choice(
        ("loss", "partition", "duplication", "reorder", "slow_disk", "sockbuf", "storm")
    )
    trigger = AtTime(at)
    if kind == "loss":
        return PacketLossBurst(
            trigger,
            loss_rate=round(rng.uniform(0.05, 0.4), 3),
            duration=round(rng.uniform(0.02, 0.12), 3),
        )
    if kind == "partition":
        return NetworkPartition(trigger, duration=round(rng.uniform(0.02, 0.15), 3))
    if kind == "duplication":
        return DatagramDuplication(
            trigger,
            rate=round(rng.uniform(0.05, 0.35), 3),
            duration=round(rng.uniform(0.05, 0.2), 3),
        )
    if kind == "reorder":
        return DatagramReorder(
            trigger,
            rate=round(rng.uniform(0.05, 0.35), 3),
            extra_delay=round(rng.uniform(0.0005, 0.004), 5),
            duration=round(rng.uniform(0.05, 0.2), 3),
        )
    if kind == "slow_disk":
        return SlowDisk(
            trigger,
            factor=round(rng.uniform(2.0, 8.0), 2),
            duration=round(rng.uniform(0.05, 0.25), 3),
        )
    if kind == "sockbuf":
        return SockBufShrink(
            trigger,
            capacity_bytes=rng.choice((8192, 16384, 32768)),
            duration=round(rng.uniform(0.05, 0.2), 3),
        )
    return RetransmitStorm(
        trigger,
        loss_rate=round(rng.uniform(0.1, 0.35), 3),
        capacity_bytes=rng.choice((16384, 24576, 32768)),
        duration=round(rng.uniform(0.05, 0.25), 3),
    )


def generate_plan(
    rng: random.Random, name: str, index: int, write_path: str
) -> FaultPlan:
    """One randomized plan: 1-3 background adversities, and (on even
    indices) a crash — timed, or triggered on an obs span predicate."""
    events: List = []
    at = round(rng.uniform(0.01, 0.08), 3)
    for _ in range(rng.randint(1, 3)):
        event = _random_event(rng, at)
        events.append(event)
        at = round(at + event.window + rng.uniform(0.02, 0.15), 3)
    if index % 2 == 0:
        reboot_delay = rng.choice((0.0, 0.0, round(rng.uniform(0.05, 0.3), 3)))
        if index % 6 == 0 and write_path == "gather":
            # Crash the instant the first parked write's procrastination
            # nap ends — a write is sitting on the active write queue,
            # unanswered, when the server dies (§6.9's nightmare case).
            trigger = OnSpan(PHASE_PROCRASTINATE, occurrence=1)
        elif index % 6 == 0 and write_path == "siva":
            # Siva never naps; crash as the second writer takes the vnode
            # lock, when a parked follower sits on the leader's queue.
            trigger = OnSpan(PHASE_VNODE_WAIT, occurrence=2)
        elif index % 6 == 0 and write_path == "async_commit":
            # Crash right as an unstable WRITE is acked: the data sits in
            # the volatile UnstableLog, no COMMIT has covered it, and only
            # the client's verifier-driven replay can land it (the
            # async-commit contract's nightmare case).
            trigger = OnSpan(PHASE_REPLY, occurrence=rng.randint(2, 8))
        elif index % 6 == 0:
            trigger = OnSpan(PHASE_DISPATCH, occurrence=rng.randint(3, 12))
        else:
            trigger = AtTime(at)
        events.append(ServerCrash(trigger, reboot_delay=reboot_delay))
    return FaultPlan(name=name, events=tuple(events))


# -- execution -----------------------------------------------------------------


def run_plan(
    config: TestbedConfig,
    plan: FaultPlan,
    file_kb: int = 192,
    files: int = 2,
    think_time: float = 0.0005,
    payload: str = PAYLOAD_FULL,
) -> PlanResult:
    """Run one plan to completion and return its checked result.

    ``payload`` selects byte fidelity (:mod:`repro.payload`).  In
    flyweight mode the oracle still asserts durability of every acked
    range (and fsck still runs); only the byte-content comparison is
    waived.  Simulated timelines and counts are identical either way.
    """
    testbed = Testbed(config)
    client = testbed.add_client()
    oracle = Oracle(testbed)
    # Triage context: the plan name encodes the campaign seed and cell, so
    # a violation message alone identifies the exact re-runnable plan.
    oracle.set_context(plan_seed=plan.name)
    oracle.attach(client)
    controller = FaultController(testbed, plan, oracle=oracle).start()
    env = testbed.env
    writers = [
        env.process(
            write_file(
                env,
                client,
                f"chaos-{index}",
                file_kb * 1024,
                think_time=think_time,
                payload=payload,
            ),
            name=f"writer:{index}",
        )
        for index in range(files)
    ]
    env.run(until=AllOf(env, writers))
    env.run()  # drain in-flight completions, NVRAM destage, watchdogs
    oracle.check("final")
    return PlanResult(
        plan=plan,
        write_path=str(config.write_path),
        presto=bool(config.presto_bytes),
        faults_applied=controller.log,
        sim_elapsed=env.now,
        acked_writes=oracle.acked_writes,
        crashes=controller.crashes,
        oracle_checks=oracle.checks,
        retransmissions=int(client.rpc.retransmissions.value),
        duplicates_dropped=int(testbed.server.svc.duplicates_dropped.value),
        duplicates_replayed=int(testbed.server.svc.duplicates_replayed.value),
        stable_violations=len(testbed.server.stable_violations),
        violations=oracle.violations,
    )


class ChaosCampaign:
    """Generate and run seeded plans across all write paths × presto."""

    def __init__(
        self,
        seed: int = 0,
        plans_per_combo: int = 5,
        write_paths: Sequence[str] = WRITE_PATHS,
        presto_modes: Sequence[bool] = (False, True),
        file_kb: int = 192,
        netspec=FDDI,
        progress=None,
        payload: str = PAYLOAD_FULL,
    ) -> None:
        if plans_per_combo < 1:
            raise ValueError(f"plans_per_combo must be >= 1, got {plans_per_combo}")
        self.seed = seed
        self.plans_per_combo = plans_per_combo
        self.write_paths = tuple(write_paths)
        self.presto_modes = tuple(presto_modes)
        self.file_kb = file_kb
        self.netspec = netspec
        #: Optional callable(result) invoked after each plan (CLI progress).
        self.progress = progress
        #: Byte fidelity for the workload payloads (:mod:`repro.payload`).
        self.payload = coerce_payload_mode(payload)

    def combos(self) -> List[Tuple[str, bool]]:
        return [
            (write_path, presto)
            for write_path in self.write_paths
            for presto in self.presto_modes
        ]

    def plan_for(self, write_path: str, presto: bool, index: int) -> FaultPlan:
        """The deterministic plan for one (combo, index) cell."""
        presto_tag = "presto" if presto else "plain"
        name = f"{write_path}-{presto_tag}-{index:03d}"
        rng = random.Random(f"{self.seed}/{write_path}/{presto_tag}/{index}")
        return generate_plan(rng, name, index, write_path)

    def config_for(self, write_path: str, presto: bool) -> TestbedConfig:
        # Tracing is always on: span-triggered faults need it, and fault
        # windows land in the exported timeline.  Admission control runs
        # with the dup-cache-aware shed policy so RetransmitStorm events
        # exercise the repro.overload backpressure path under chaos.
        return TestbedConfig(
            netspec=self.netspec,
            write_path=write_path,
            presto_bytes=PRESTO_BYTES if presto else None,
            verify_stable=True,
            seed=self.seed,
            tracing=True,
            admission_max_requests=64,
            shed_policy="early-reply",
        )

    def execute(self) -> CampaignReport:
        """Run every plan in every combo (the facade's entry point)."""
        report = CampaignReport(
            seed=self.seed,
            file_kb=self.file_kb,
            plans_per_combo=self.plans_per_combo,
        )
        for write_path, presto in self.combos():
            config = self.config_for(write_path, presto)
            for index in range(self.plans_per_combo):
                plan = self.plan_for(write_path, presto, index)
                result = run_plan(
                    config, plan, file_kb=self.file_kb, payload=self.payload
                )
                report.results.append(result)
                if self.progress is not None:
                    self.progress(result)
        return report

    def run(self) -> CampaignReport:
        """Deprecated entry point; use :func:`repro.experiments.run` with
        ``ExperimentSpec(kind="chaos", ...)``."""
        warnings.warn(
            "ChaosCampaign.run() is deprecated; use repro.experiments.run("
            "ExperimentSpec(kind='chaos', ...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute()
