"""The fault controller: drives a FaultPlan against a live testbed.

One simulation process per event waits for its trigger (a clock time, or an
obs span matching a predicate), applies the fault through the public
injection hooks (`Segment.set_loss_rate`/`partition`/...,
`DiskDevice.set_slowdown`, `NfsServer.simulate_crash`), holds it for the
event's window, then reverts it.  Every applied fault is appended to
:attr:`FaultController.log` and — when tracing is on — emitted as a
``fault.inject`` span, so exported timelines show crashes and partitions
inline with the RPC lifecycle.

Crashes are special twice over: they have no "revert" (lost state stays
lost; the reboot is the partition healing), and they notify an attached
:class:`~repro.faults.oracle.Oracle` so the crash contract is checked
against the durable image at the instant of death.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.faults.events import (
    AtTime,
    BitRot,
    DatagramDuplication,
    DatagramReorder,
    FaultEvent,
    FaultPlan,
    LatentSectorError,
    NetworkPartition,
    NvramDegrade,
    OnSpan,
    PacketLossBurst,
    RetransmitStorm,
    ServerCrash,
    SlowDisk,
    SockBufShrink,
    TornWrite,
)
from repro.obs import PHASE_FAULT, collector_for

__all__ = ["FaultController"]


class _SpanWaiter:
    """Counts matching spans for one OnSpan trigger; succeeds its event."""

    __slots__ = ("trigger", "done", "seen")

    def __init__(self, trigger: OnSpan, done) -> None:
        self.trigger = trigger
        self.done = done
        self.seen = 0

    def offer(self, span) -> None:
        if self.done.triggered or not self.trigger.matches(span):
            return
        self.seen += 1
        if self.seen >= self.trigger.occurrence:
            self.done.succeed(span)


class FaultController:
    """Executes one :class:`FaultPlan` against a testbed."""

    def __init__(self, testbed, plan: FaultPlan, oracle=None) -> None:
        self.testbed = testbed
        self.env = testbed.env
        self.plan = plan
        self.oracle = oracle
        self.obs = collector_for(self.env)
        #: Applied faults: dicts with kind, start, end, and parameters.
        self.log: List[dict] = []
        self.crashes = 0
        self._span_waiters: List[_SpanWaiter] = []
        #: Extra record fields set by _apply (e.g. victim block addrs).
        self._apply_extra: Optional[dict] = None
        #: The most recently applied fault record (triage context).
        self.last_applied: Optional[dict] = None

    def start(self) -> "FaultController":
        """Spawn one driver process per planned event.  Call before
        ``env.run()``; returns self for chaining."""
        if self.plan.needs_tracing():
            if not self.obs.enabled:
                raise ValueError(
                    f"plan {self.plan.name!r} has span-triggered faults; "
                    "build the testbed with tracing=True"
                )
            self.obs.subscribe(self._on_span)
        for index, event in enumerate(self.plan.events):
            waiter: Optional[_SpanWaiter] = None
            if isinstance(event.trigger, OnSpan):
                waiter = _SpanWaiter(event.trigger, self.env.event())
                self._span_waiters.append(waiter)
            self.env.process(
                self._drive(event, waiter),
                name=f"fault:{self.plan.name}:{index}:{event.kind}",
            )
        return self

    # -- internals -------------------------------------------------------------

    def _on_span(self, span) -> None:
        for waiter in self._span_waiters:
            waiter.offer(span)

    def _drive(self, event: FaultEvent, waiter: Optional[_SpanWaiter]):
        trigger = event.trigger
        if isinstance(trigger, AtTime):
            if trigger.at > self.env.now:
                yield self.env.timeout(trigger.at - self.env.now)
        else:
            yield waiter.done
            if trigger.delay > 0:
                yield self.env.timeout(trigger.delay)
        started = self.env.now
        if self.oracle is not None and hasattr(self.oracle, "note_fault"):
            # Tell the oracle *before* applying: crash-time checks then
            # carry the fault that provoked them in their messages.
            self.oracle.note_fault(
                {"kind": event.kind, "start": started, **event.params()}
            )
        revert = self._apply(event)
        extra = self._apply_extra
        self._apply_extra = None
        if event.window > 0:
            yield self.env.timeout(event.window)
        if revert is not None:
            revert()
        self._record(event, started, self.env.now, extra)

    def _apply(self, event: FaultEvent):
        """Inject one fault; returns a revert callable (or None)."""
        segment = self.testbed.segment
        server = self.testbed.server
        if isinstance(event, ServerCrash):
            server.simulate_crash()
            self.crashes += 1
            # An armed NVRAM battery fault bites now: the lost extents'
            # durable copies vanish (detectably — digests stay behind).
            storage = getattr(self.testbed, "storage", None)
            if storage is not None and hasattr(storage, "take_degraded"):
                lost = storage.take_degraded()
                if lost:
                    durable = server.ufs.cache.durable
                    afflicted: List[int] = []
                    for start, end in lost:
                        afflicted.extend(
                            durable.lose_range(start, end, server.ufs.block_size)
                        )
                    self._apply_extra = {
                        "nvram_lost_extents": [list(extent) for extent in lost],
                        "nvram_lost_blocks": sorted(set(afflicted)),
                    }
            if self.oracle is not None:
                self.oracle.check(f"crash#{self.crashes}")
            if server.replicator is not None:
                # A replicated shard rejoins its group on reboot and
                # resyncs from its own log (fresh peers repair the rest).
                server.replicator.activate()
            if event.reboot_delay > 0:
                # Down for the count: unreachable until the reboot finishes.
                segment.partition(server.host)
                return lambda: segment.heal(server.host)
            return None
        if isinstance(event, PacketLossBurst):
            previous = segment.loss_rate
            segment.set_loss_rate(event.loss_rate)
            return lambda: segment.set_loss_rate(previous)
        if isinstance(event, NetworkPartition):
            hosts = event.hosts or (server.host,)
            for host in hosts:
                segment.partition(host)
            return lambda: [segment.heal(host) for host in hosts]
        if isinstance(event, DatagramDuplication):
            previous = segment.duplicate_rate
            segment.set_duplicate_rate(event.rate)
            return lambda: segment.set_duplicate_rate(previous)
        if isinstance(event, DatagramReorder):
            previous = (segment.reorder_rate, segment.reorder_delay)
            segment.set_reorder(event.rate, event.extra_delay)
            return lambda: segment.set_reorder(*previous)
        if isinstance(event, SlowDisk):
            # Token-stacked degradation: overlapping SlowDisk windows
            # compose multiplicatively and each revert removes exactly its
            # own contribution, whatever the overlap order.
            disks = list(self.testbed.disks)
            tokens = [disk.push_slowdown(event.factor) for disk in disks]
            return lambda: [
                disk.pop_slowdown(token) for disk, token in zip(disks, tokens)
            ]
        if isinstance(event, SockBufShrink):
            inbox = server.endpoint.inbox
            previous_capacity = inbox.capacity_bytes
            inbox.capacity_bytes = min(previous_capacity, event.capacity_bytes)
            def restore(inbox=inbox, capacity=previous_capacity):
                inbox.capacity_bytes = capacity
            return restore
        if isinstance(event, RetransmitStorm):
            inbox = server.endpoint.inbox
            previous_capacity = inbox.capacity_bytes
            previous_loss = segment.loss_rate
            inbox.capacity_bytes = min(previous_capacity, event.capacity_bytes)
            segment.set_loss_rate(event.loss_rate)
            def calm(inbox=inbox, capacity=previous_capacity, loss=previous_loss):
                inbox.capacity_bytes = capacity
                segment.set_loss_rate(loss)
            return calm
        if isinstance(event, LatentSectorError):
            victims = self._pick_victims(event.kind, event.seed, event.count)
            block_size = server.ufs.block_size
            for addr in victims:
                self.testbed.storage.inject_latent(addr, block_size)
            self._apply_extra = {"victims": victims}
            return None
        if isinstance(event, BitRot):
            victims = self._pick_victims(event.kind, event.seed, event.count)
            rng = random.Random(f"{event.kind}/{event.seed}/flip")
            durable = server.ufs.cache.durable
            rotted = [addr for addr in victims if durable.rot_block(addr, rng)]
            self._apply_extra = {"victims": rotted}
            return None
        if isinstance(event, TornWrite):
            server.ufs.cache.arm_torn_write(event.seed)
            return None
        if isinstance(event, NvramDegrade):
            storage = getattr(self.testbed, "storage", None)
            if storage is not None and hasattr(storage, "arm_degrade"):
                storage.arm_degrade(event.fraction, event.seed)
                self._apply_extra = {"armed": True}
            else:
                # No NVRAM in front of the disks: nothing to degrade.
                self._apply_extra = {"armed": False}
            return None
        raise TypeError(f"unknown fault event {type(event).__name__}")

    def _pick_victims(self, kind: str, seed: int, count: int) -> List[int]:
        """Seeded choice of durable block addresses to afflict."""
        durable = self.testbed.server.ufs.cache.durable
        pool = sorted(durable.blocks)
        if not pool or count <= 0:
            return []
        rng = random.Random(f"{kind}/{seed}")
        return sorted(rng.sample(pool, min(count, len(pool))))

    def _record(
        self,
        event: FaultEvent,
        started: float,
        ended: float,
        extra: Optional[dict] = None,
    ) -> None:
        record = {"kind": event.kind, "start": started, "end": ended}
        record.update(
            {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in event.params().items()
            }
        )
        if extra:
            record.update(extra)
        self.log.append(record)
        self.last_applied = record
        if self.obs.enabled:
            self.obs.emit(
                PHASE_FAULT, "faults", started, ended, **{"kind": event.kind}
            )
