"""The fault controller: drives a FaultPlan against a live testbed.

One simulation process per event waits for its trigger (a clock time, or an
obs span matching a predicate), applies the fault through the public
injection hooks (`Segment.set_loss_rate`/`partition`/...,
`DiskDevice.set_slowdown`, `NfsServer.simulate_crash`), holds it for the
event's window, then reverts it.  Every applied fault is appended to
:attr:`FaultController.log` and — when tracing is on — emitted as a
``fault.inject`` span, so exported timelines show crashes and partitions
inline with the RPC lifecycle.

Crashes are special twice over: they have no "revert" (lost state stays
lost; the reboot is the partition healing), and they notify an attached
:class:`~repro.faults.oracle.Oracle` so the crash contract is checked
against the durable image at the instant of death.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.events import (
    AtTime,
    DatagramDuplication,
    DatagramReorder,
    FaultEvent,
    FaultPlan,
    NetworkPartition,
    OnSpan,
    PacketLossBurst,
    RetransmitStorm,
    ServerCrash,
    SlowDisk,
    SockBufShrink,
)
from repro.obs import PHASE_FAULT, collector_for

__all__ = ["FaultController"]


class _SpanWaiter:
    """Counts matching spans for one OnSpan trigger; succeeds its event."""

    __slots__ = ("trigger", "done", "seen")

    def __init__(self, trigger: OnSpan, done) -> None:
        self.trigger = trigger
        self.done = done
        self.seen = 0

    def offer(self, span) -> None:
        if self.done.triggered or not self.trigger.matches(span):
            return
        self.seen += 1
        if self.seen >= self.trigger.occurrence:
            self.done.succeed(span)


class FaultController:
    """Executes one :class:`FaultPlan` against a testbed."""

    def __init__(self, testbed, plan: FaultPlan, oracle=None) -> None:
        self.testbed = testbed
        self.env = testbed.env
        self.plan = plan
        self.oracle = oracle
        self.obs = collector_for(self.env)
        #: Applied faults: dicts with kind, start, end, and parameters.
        self.log: List[dict] = []
        self.crashes = 0
        self._span_waiters: List[_SpanWaiter] = []

    def start(self) -> "FaultController":
        """Spawn one driver process per planned event.  Call before
        ``env.run()``; returns self for chaining."""
        if self.plan.needs_tracing():
            if not self.obs.enabled:
                raise ValueError(
                    f"plan {self.plan.name!r} has span-triggered faults; "
                    "build the testbed with tracing=True"
                )
            self.obs.subscribe(self._on_span)
        for index, event in enumerate(self.plan.events):
            waiter: Optional[_SpanWaiter] = None
            if isinstance(event.trigger, OnSpan):
                waiter = _SpanWaiter(event.trigger, self.env.event())
                self._span_waiters.append(waiter)
            self.env.process(
                self._drive(event, waiter),
                name=f"fault:{self.plan.name}:{index}:{event.kind}",
            )
        return self

    # -- internals -------------------------------------------------------------

    def _on_span(self, span) -> None:
        for waiter in self._span_waiters:
            waiter.offer(span)

    def _drive(self, event: FaultEvent, waiter: Optional[_SpanWaiter]):
        trigger = event.trigger
        if isinstance(trigger, AtTime):
            if trigger.at > self.env.now:
                yield self.env.timeout(trigger.at - self.env.now)
        else:
            yield waiter.done
            if trigger.delay > 0:
                yield self.env.timeout(trigger.delay)
        started = self.env.now
        revert = self._apply(event)
        if event.window > 0:
            yield self.env.timeout(event.window)
        if revert is not None:
            revert()
        self._record(event, started, self.env.now)

    def _apply(self, event: FaultEvent):
        """Inject one fault; returns a revert callable (or None)."""
        segment = self.testbed.segment
        server = self.testbed.server
        if isinstance(event, ServerCrash):
            server.simulate_crash()
            self.crashes += 1
            if self.oracle is not None:
                self.oracle.check(f"crash#{self.crashes}")
            if event.reboot_delay > 0:
                # Down for the count: unreachable until the reboot finishes.
                segment.partition(server.host)
                return lambda: segment.heal(server.host)
            return None
        if isinstance(event, PacketLossBurst):
            previous = segment.loss_rate
            segment.set_loss_rate(event.loss_rate)
            return lambda: segment.set_loss_rate(previous)
        if isinstance(event, NetworkPartition):
            hosts = event.hosts or (server.host,)
            for host in hosts:
                segment.partition(host)
            return lambda: [segment.heal(host) for host in hosts]
        if isinstance(event, DatagramDuplication):
            previous = segment.duplicate_rate
            segment.set_duplicate_rate(event.rate)
            return lambda: segment.set_duplicate_rate(previous)
        if isinstance(event, DatagramReorder):
            previous = (segment.reorder_rate, segment.reorder_delay)
            segment.set_reorder(event.rate, event.extra_delay)
            return lambda: segment.set_reorder(*previous)
        if isinstance(event, SlowDisk):
            disks = list(self.testbed.disks)
            previous_factors = [disk.slowdown for disk in disks]
            for disk in disks:
                disk.set_slowdown(event.factor)
            return lambda: [
                disk.set_slowdown(factor)
                for disk, factor in zip(disks, previous_factors)
            ]
        if isinstance(event, SockBufShrink):
            inbox = server.endpoint.inbox
            previous_capacity = inbox.capacity_bytes
            inbox.capacity_bytes = min(previous_capacity, event.capacity_bytes)
            def restore(inbox=inbox, capacity=previous_capacity):
                inbox.capacity_bytes = capacity
            return restore
        if isinstance(event, RetransmitStorm):
            inbox = server.endpoint.inbox
            previous_capacity = inbox.capacity_bytes
            previous_loss = segment.loss_rate
            inbox.capacity_bytes = min(previous_capacity, event.capacity_bytes)
            segment.set_loss_rate(event.loss_rate)
            def calm(inbox=inbox, capacity=previous_capacity, loss=previous_loss):
                inbox.capacity_bytes = capacity
                segment.set_loss_rate(loss)
            return calm
        raise TypeError(f"unknown fault event {type(event).__name__}")

    def _record(self, event: FaultEvent, started: float, ended: float) -> None:
        record = {"kind": event.kind, "start": started, "end": ended}
        record.update(
            {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in event.params().items()
            }
        )
        self.log.append(record)
        if self.obs.enabled:
            self.obs.emit(
                PHASE_FAULT, "faults", started, ended, **{"kind": event.kind}
            )
