"""repro.faults — deterministic fault injection and crash-consistency checking.

The adversarial arm of the reproduction.  A declarative
:class:`~repro.faults.events.FaultPlan` schedules typed fault events
(server crash+reboot, packet-loss bursts, partitions, datagram
duplication/reordering, slow disks, socket-buffer shrink), each fired at a
sim time or on an observability span predicate; a
:class:`~repro.faults.controller.FaultController` process injects and
reverts them through public hooks; an
:class:`~repro.faults.oracle.Oracle` shadows every client-acked stable
write and asserts the paper's crash contract — acked ⇒ durable, correct
content, and zero fsck structural errors — at every crash and at end of
run.  :class:`~repro.faults.campaign.ChaosCampaign` sweeps seeded random
plans across all write paths × Presto on/off (the ``repro chaos`` CLI).
"""

from repro.faults.campaign import (
    CampaignReport,
    ChaosCampaign,
    PlanResult,
    generate_plan,
    run_plan,
)
from repro.faults.controller import FaultController
from repro.faults.events import (
    AtTime,
    BitRot,
    DatagramDuplication,
    DatagramReorder,
    FaultEvent,
    FaultPlan,
    LatentSectorError,
    NetworkPartition,
    NvramDegrade,
    OnSpan,
    PacketLossBurst,
    RetransmitStorm,
    ServerCrash,
    SlowDisk,
    SockBufShrink,
    TornWrite,
)
from repro.faults.oracle import Oracle

__all__ = [
    "AtTime",
    "OnSpan",
    "FaultEvent",
    "FaultPlan",
    "ServerCrash",
    "PacketLossBurst",
    "NetworkPartition",
    "DatagramDuplication",
    "DatagramReorder",
    "SlowDisk",
    "SockBufShrink",
    "RetransmitStorm",
    "LatentSectorError",
    "BitRot",
    "TornWrite",
    "NvramDegrade",
    "FaultController",
    "Oracle",
    "ChaosCampaign",
    "CampaignReport",
    "PlanResult",
    "generate_plan",
    "run_plan",
]
