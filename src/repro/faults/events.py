"""Typed fault events and the plans that sequence them.

A :class:`FaultPlan` is pure data: an ordered tuple of :class:`FaultEvent`
subclasses, each carrying a :class:`Trigger` (fire at a simulation time, or
when an observability span matching a predicate closes) and the parameters
of one adversity — a server crash and reboot, a burst of packet loss, a
network partition, datagram duplication or reordering, a degraded spindle,
or a shrunken socket buffer.  Plans are declarative and serializable, so a
failing chaos campaign can print the exact plan that broke the server and a
test can re-run it verbatim.

The paper's crash contract (§4.4, §6.9) is what these adversities probe:
no reply may leave the server before the write it acknowledges is stable,
no matter when the crash lands or how the network mangles the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "AtTime",
    "OnSpan",
    "Trigger",
    "FaultEvent",
    "ServerCrash",
    "PacketLossBurst",
    "NetworkPartition",
    "DatagramDuplication",
    "DatagramReorder",
    "SlowDisk",
    "SockBufShrink",
    "RetransmitStorm",
    "LatentSectorError",
    "BitRot",
    "TornWrite",
    "NvramDegrade",
    "FaultPlan",
]


@dataclass(frozen=True)
class AtTime:
    """Fire when the simulation clock reaches ``at`` seconds."""

    at: float

    def describe(self) -> dict:
        return {"type": "at", "at": self.at}


@dataclass(frozen=True)
class OnSpan:
    """Fire when the ``occurrence``-th obs span matching the predicate
    closes (requires a traced testbed).

    ``phase`` is a dotted span name (e.g. ``gather.procrastinate`` — the
    span closing as the first parked write's nap ends, i.e. "a write is
    sitting on the active write queue").  ``attrs`` adds equality matches
    on span attributes; ``delay`` postpones the fault past the match.
    """

    phase: str
    occurrence: int = 1
    attrs: Tuple[Tuple[str, object], ...] = ()
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence}")

    def matches(self, span) -> bool:
        if span.name != self.phase:
            return False
        return all(span.attrs.get(key) == value for key, value in self.attrs)

    def describe(self) -> dict:
        record: Dict[str, object] = {
            "type": "span",
            "phase": self.phase,
            "occurrence": self.occurrence,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.delay:
            record["delay"] = self.delay
        return record


Trigger = Union[AtTime, OnSpan]


@dataclass(frozen=True)
class FaultEvent:
    """One adversity: a trigger plus fault-specific parameters."""

    trigger: Trigger

    #: Sim-seconds the fault stays active before the controller reverts it
    #: (0 = instantaneous, e.g. a crash with immediate reboot).
    @property
    def window(self) -> float:
        return getattr(self, "duration", 0.0)

    @property
    def kind(self) -> str:
        return _KIND_OF[type(self)]

    def params(self) -> dict:
        """Fault parameters (everything but the trigger), for reports."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "trigger"
        }

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "trigger": self.trigger.describe(),
            **self.params(),
        }


@dataclass(frozen=True)
class ServerCrash(FaultEvent):
    """Power-fail the server; it reboots ``reboot_delay`` seconds later.

    During the outage the host is partitioned off the segment, so client
    retransmissions go unanswered exactly as against a dead machine.  With
    ``reboot_delay=0`` the reboot is instantaneous (volatile state is still
    lost — the interesting part — without the retransmission stall).
    """

    reboot_delay: float = 0.0

    @property
    def window(self) -> float:
        return self.reboot_delay


@dataclass(frozen=True)
class PacketLossBurst(FaultEvent):
    """Raise the segment's frame loss rate for a window (a noisy cable)."""

    loss_rate: float = 0.3
    duration: float = 0.1


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """Cut hosts off the segment for a window.  Empty ``hosts`` means the
    server — the classic client-visible server outage without state loss."""

    hosts: Tuple[str, ...] = ()
    duration: float = 0.2


@dataclass(frozen=True)
class DatagramDuplication(FaultEvent):
    """Deliver a fraction of datagrams twice — the adversity the [JUSZ89]
    duplicate request cache exists for."""

    rate: float = 0.2
    duration: float = 0.2


@dataclass(frozen=True)
class DatagramReorder(FaultEvent):
    """Delay a fraction of datagrams so later traffic overtakes them."""

    rate: float = 0.2
    extra_delay: float = 0.002
    duration: float = 0.2


@dataclass(frozen=True)
class SlowDisk(FaultEvent):
    """Multiply every spindle's service time (sector retries, thermal
    recalibration) for a window."""

    factor: float = 4.0
    duration: float = 0.3


@dataclass(frozen=True)
class SockBufShrink(FaultEvent):
    """Clamp the server's NFS socket buffer to ``capacity_bytes`` for a
    window, forcing §4.2-style overload drops."""

    capacity_bytes: int = 16 * 1024
    duration: float = 0.2


@dataclass(frozen=True)
class RetransmitStorm(FaultEvent):
    """Manufacture NFS-over-UDP congestion collapse: clamp the server's
    socket buffer *and* raise frame loss for a window.

    Loss makes clients time out; the shrunken buffer makes their
    synchronized retransmissions overflow it; the overflow drops fresh
    work, which times out in turn — the feedback loop §4.2 hints at.  The
    ``repro.overload`` shed policies and adaptive retransmission exist to
    break exactly this loop, so chaos campaigns include it to exercise
    them.
    """

    loss_rate: float = 0.25
    capacity_bytes: int = 24 * 1024
    duration: float = 0.3


@dataclass(frozen=True)
class LatentSectorError(FaultEvent):
    """Mark ``count`` seeded durable sectors unreadable (the medium grew a
    defect); reads of an afflicted sector fail with EIO until a write —
    or a scrub repair — relocates the data over it."""

    count: int = 1
    seed: int = 0


@dataclass(frozen=True)
class BitRot(FaultEvent):
    """Silently flip a byte in ``count`` seeded durable blocks.  The disk
    keeps serving the rotted bytes without complaint — only checksum
    verification on the read path (or a scrub pass) can notice."""

    count: int = 1
    seed: int = 0


@dataclass(frozen=True)
class TornWrite(FaultEvent):
    """Arm the next crash to tear an in-flight multi-sector flush: a
    prefix of the run lands, one sector lands mangled, the tail never
    does.  No-op if no flush is in flight when the crash hits."""

    seed: int = 0


@dataclass(frozen=True)
class NvramDegrade(FaultEvent):
    """Battery fault: a seeded ``fraction`` of the *unflushed* NVRAM
    contents is lost at the next crash instead of surviving it — the
    failure mode Presto's battery exists to prevent."""

    fraction: float = 0.5
    seed: int = 0


_KIND_OF = {
    ServerCrash: "server_crash",
    PacketLossBurst: "packet_loss",
    NetworkPartition: "partition",
    DatagramDuplication: "duplication",
    DatagramReorder: "reorder",
    SlowDisk: "slow_disk",
    SockBufShrink: "sockbuf_shrink",
    RetransmitStorm: "retransmit_storm",
    LatentSectorError: "latent_sector",
    BitRot: "bit_rot",
    TornWrite: "torn_write",
    NvramDegrade: "nvram_degrade",
}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, declarative schedule of fault events."""

    name: str
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        self._validate()

    def _validate(self) -> None:
        """Reject plans that are nonsense before they reach a controller.

        Negative trigger times, delays, or windows would schedule faults
        in the past; two partitions whose windows overlap on intersecting
        host sets would make the controller's revert restore the wrong
        membership.  Both used to be applied as-is.
        """
        for index, event in enumerate(self.events):
            where = f"{self.name!r} event #{index} ({event.kind})"
            trigger = event.trigger
            if isinstance(trigger, AtTime) and trigger.at < 0:
                raise ValueError(f"{where}: negative trigger time {trigger.at}")
            if isinstance(trigger, OnSpan) and trigger.delay < 0:
                raise ValueError(f"{where}: negative trigger delay {trigger.delay}")
            if event.window < 0:
                raise ValueError(f"{where}: negative duration {event.window}")
        partitions = [
            (index, event)
            for index, event in enumerate(self.events)
            if isinstance(event, NetworkPartition)
            and isinstance(event.trigger, AtTime)
        ]
        for pos, (index_a, a) in enumerate(partitions):
            for index_b, b in partitions[pos + 1 :]:
                start_a, end_a = a.trigger.at, a.trigger.at + a.duration
                start_b, end_b = b.trigger.at, b.trigger.at + b.duration
                if start_a < end_b and start_b < end_a:
                    # Empty hosts = the server, so two empty-host
                    # partitions always collide; otherwise only when the
                    # host sets intersect.
                    hosts_a, hosts_b = set(a.hosts), set(b.hosts)
                    if (not hosts_a and not hosts_b) or (hosts_a & hosts_b):
                        raise ValueError(
                            f"{self.name!r}: partitions #{index_a} and "
                            f"#{index_b} overlap in time "
                            f"([{start_a}, {end_a}) vs [{start_b}, {end_b})) "
                            f"on the same hosts"
                        )

    @property
    def crash_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, ServerCrash))

    def needs_tracing(self) -> bool:
        """True if any event waits on an obs span (testbed must trace)."""
        return any(isinstance(event.trigger, OnSpan) for event in self.events)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "events": [event.describe() for event in self.events],
        }
