"""Flyweight write payloads: length + pattern seed instead of real bytes.

The simulator's costs — wire time, CPU charges, disk transactions, NVRAM
occupancy — all key on payload *length*, never on payload *content*.  Full
byte fidelity only matters to the experiments that check content
invariants (the crash-consistency oracle's byte compares, fsck, the dup
cache tests).  Throughput-oriented runs can therefore carry an
:class:`Extent` — an ``(length, seed, base)`` triple — through the whole
client → wire → server → UFS path and skip every per-byte copy:

* the client cache block, the RPC args, and the NFS WRITE all size
  themselves via ``len()``, which an Extent provides;
* :meth:`Ufs.write` charges identical CPU and issues identical device
  transactions but skips the buffer-cache byte copies;
* the stable-storage check and the oracle relax from byte-for-byte
  comparison to *reachability*: the acked range must still be durably
  readable after a crash, it just carries no content promise.

Both modes produce identical acked-write accounting (ranges, byte
totals, violation conditions other than content mismatches) and identical
simulated timings — an Extent is the same length as the bytes it stands
for, so every charge lands at the same instant.

``Extent.to_bytes()`` materializes the exact bytes
:func:`repro.workload.sequential.patterned_chunk` would have produced for
the same chunk index, so a flyweight payload can always be downgraded to
full fidelity for debugging.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "Extent",
    "ExtentChain",
    "PAYLOAD_FLYWEIGHT",
    "PAYLOAD_FULL",
    "coerce_payload_mode",
    "is_bytes_payload",
]

#: Payload fidelity mode names (experiment-level knob).
PAYLOAD_FULL = "full"
PAYLOAD_FLYWEIGHT = "flyweight"

_MODES = (PAYLOAD_FULL, PAYLOAD_FLYWEIGHT)


def coerce_payload_mode(mode: str) -> str:
    """Validate a payload-fidelity mode name."""
    if mode not in _MODES:
        raise ValueError(
            f"unknown payload mode {mode!r}; expected one of {', '.join(_MODES)}"
        )
    return mode


def is_bytes_payload(data) -> bool:
    """True when ``data`` carries real bytes (full-fidelity payload)."""
    return isinstance(data, (bytes, bytearray, memoryview))


class Extent:
    """A flyweight write payload: ``length`` bytes of deterministic pattern.

    Byte ``k`` of the extent is ``(seed * 7 + (base + k) % 8) % 256`` —
    with ``base == 0`` exactly the content of ``patterned_chunk(seed)``,
    so full-fidelity and flyweight runs describe the same logical data.
    """

    __slots__ = ("length", "seed", "base")

    def __init__(self, length: int, seed: int = 0, base: int = 0) -> None:
        if length < 0:
            raise ValueError(f"extent length must be >= 0, got {length}")
        self.length = length
        self.seed = seed
        self.base = base

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Extent(length={self.length}, seed={self.seed}, base={self.base})"

    def slice(self, start: int, stop: int) -> "Extent":
        """The sub-extent covering local offsets [start, stop)."""
        if not 0 <= start <= stop <= self.length:
            raise ValueError(
                f"bad extent slice [{start}, {stop}) of length {self.length}"
            )
        return Extent(stop - start, self.seed, self.base + start)

    def to_bytes(self) -> bytes:
        """Materialize the exact bytes this extent stands for."""
        seed7 = self.seed * 7
        base = self.base
        return bytes((seed7 + (base + k) % 8) % 256 for k in range(self.length))


class ExtentChain:
    """Accumulates extents the way a client cache block accumulates bytes.

    The NFS client's pending block (`OpenFile.pending`) fills from
    sequential application chunks; in flyweight mode those chunks are
    Extents with differing seeds, so one wire payload may span several.
    The chain only ever needs its total length (all simulator costs key on
    it) plus :meth:`to_bytes` for fidelity downgrades.
    """

    __slots__ = ("parts", "length")

    def __init__(self) -> None:
        self.parts: List[Extent] = []
        self.length = 0

    def __len__(self) -> int:
        return self.length

    def append(self, extent: Extent) -> None:
        self.parts.append(extent)
        self.length += len(extent)

    def payload(self):
        """The wire form: a single Extent when possible, else the chain."""
        if len(self.parts) == 1:
            return self.parts[0]
        return self

    def to_bytes(self) -> bytes:
        return b"".join(part.to_bytes() for part in self.parts)
