"""Sun-RPC-like layer: messages, adaptive client, svc server, dup cache."""

from repro.rpc.client import INITIAL_TIMEOUT, RpcClient, RpcTimeoutPolicy
from repro.rpc.dupcache import NONIDEMPOTENT_PROCS, DuplicateRequestCache, DupEntry
from repro.rpc.messages import (
    CLASS_HEAVY,
    CLASS_LIGHT,
    CLASS_MEDIUM,
    RPC_HEADER_BYTES,
    RpcCall,
    RpcReply,
)
from repro.rpc.server import (
    REPLY_DONE,
    REPLY_PENDING,
    HandleCache,
    SvcServer,
    TransportHandle,
)

__all__ = [
    "RpcCall",
    "RpcReply",
    "RPC_HEADER_BYTES",
    "CLASS_LIGHT",
    "CLASS_MEDIUM",
    "CLASS_HEAVY",
    "RpcClient",
    "RpcTimeoutPolicy",
    "INITIAL_TIMEOUT",
    "DuplicateRequestCache",
    "DupEntry",
    "NONIDEMPOTENT_PROCS",
    "SvcServer",
    "TransportHandle",
    "HandleCache",
    "REPLY_DONE",
    "REPLY_PENDING",
]
