"""Duplicate request cache, per Juszczak's 1989 paper [JUSZ89].

A retransmitted non-idempotent request (write, create, remove, setattr)
must not be re-executed: re-running a CREATE after the original succeeded
would return EEXIST to a client whose create actually worked.  The cache
remembers recent requests by (client, xid):

* ``IN_PROGRESS`` — the original is still being served: drop the duplicate;
* ``DONE`` — recently completed: resend the saved reply without re-executing.

§6.9 warns that the *gathering* server must not be hasty discarding
duplicates: a write parked on the active write queue is IN_PROGRESS, and
dropping its retransmission is correct only because the queued original
still has a metadata writer responsible for its reply.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rpc.messages import RpcCall, RpcReply
from repro.sim import Environment

__all__ = ["DuplicateRequestCache", "DupEntry", "NONIDEMPOTENT_PROCS"]

#: Procedures whose effects must not be repeated.  COMMIT is here not
#: because a re-flush would corrupt anything (syncing clean blocks is a
#: no-op) but because the *reply* must be the original: a retransmitted
#: COMMIT answered from the cache returns the verifier the flush ran
#: under and never re-flushes or double-counts the server's commit
#: metrics.
NONIDEMPOTENT_PROCS = frozenset(
    {"write", "create", "remove", "setattr", "rename", "symlink", "commit"}
)

IN_PROGRESS = "in-progress"
DONE = "done"


@dataclass
class DupEntry:
    state: str
    proc: str
    reply: Optional[RpcReply]
    when: float


class DuplicateRequestCache:
    """Bounded LRU cache of recent requests."""

    def __init__(
        self,
        env: Environment,
        max_entries: int = 512,
        reply_window: float = 6.0,
        enabled: bool = True,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.env = env
        self.max_entries = max_entries
        self.reply_window = reply_window
        #: Disabled = the pre-[JUSZ89] server: every retransmission is
        #: re-executed, with all the non-idempotency hazards that implies.
        self.enabled = enabled
        self._entries: "OrderedDict[Tuple[str, int], DupEntry]" = OrderedDict()
        self.hits_in_progress = 0
        self.hits_done = 0

    @staticmethod
    def _key(call: RpcCall) -> Tuple[str, int]:
        return (call.client, call.xid)

    def check(self, call: RpcCall) -> Tuple[str, Optional[RpcReply]]:
        """Classify an arriving request.

        Returns one of:
          ("new", None)        — execute it (now registered IN_PROGRESS);
          ("drop", None)       — duplicate of an in-progress request;
          ("replay", reply)    — duplicate of a recent non-idempotent
                                 request: resend ``reply`` verbatim;
          ("execute", None)    — duplicate but stale/idempotent: re-execute.
        """
        if not self.enabled:
            return ("new", None)
        key = self._key(call)
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = DupEntry(IN_PROGRESS, call.proc, None, self.env.now)
            self._trim()
            return ("new", None)
        if entry.state == IN_PROGRESS:
            self.hits_in_progress += 1
            return ("drop", None)
        # DONE:
        recent = self.env.now - entry.when <= self.reply_window
        if recent and call.proc in NONIDEMPOTENT_PROCS and entry.reply is not None:
            self.hits_done += 1
            return ("replay", entry.reply)
        # Stale or idempotent: treat as fresh work.
        entry.state = IN_PROGRESS
        entry.when = self.env.now
        entry.reply = None
        self._entries.move_to_end(key)
        return ("execute", None)

    def peek(self, call: RpcCall) -> Tuple[str, Optional[RpcReply]]:
        """Classify like :meth:`check`, but without mutating the cache.

        Admission control (repro.overload) uses this at socket-buffer
        arrival time: a duplicate of an IN_PROGRESS request can be shed for
        free, and a recent DONE duplicate can be answered straight from the
        cached reply — all before the request costs any nfsd CPU or buffer
        space.  Registration stays :meth:`check`'s job when the request is
        actually dequeued.
        """
        if not self.enabled:
            return ("new", None)
        entry = self._entries.get(self._key(call))
        if entry is None:
            return ("new", None)
        if entry.state == IN_PROGRESS:
            return ("drop", None)
        recent = self.env.now - entry.when <= self.reply_window
        if recent and call.proc in NONIDEMPOTENT_PROCS and entry.reply is not None:
            return ("replay", entry.reply)
        return ("execute", None)

    def record_done(self, call: RpcCall, reply: RpcReply) -> None:
        """Mark a request complete, saving its reply for replay."""
        if not self.enabled:
            return
        key = self._key(call)
        entry = self._entries.get(key)
        if entry is None:
            entry = DupEntry(DONE, call.proc, reply, self.env.now)
            self._entries[key] = entry
            self._trim()
        else:
            entry.state = DONE
            entry.reply = reply
            entry.when = self.env.now
            self._entries.move_to_end(key)

    def forget(self, call: RpcCall) -> None:
        """Drop an entry (the request errored before producing a reply)."""
        self._entries.pop(self._key(call), None)

    def reset_volatile(self) -> None:
        """Drop every entry: the cache is RAM and dies with a server crash.

        Retransmissions of requests served by the old incarnation will be
        re-executed — the post-reboot behaviour [JUSZ89] accepts, because
        the alternative (a stable dup cache) costs a disk write per request.
        """
        self._entries.clear()

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)
