"""Sun-RPC-style call/reply messages.

Sizes are wire sizes (payload plus the ~160 bytes of RPC/NFS headers), used
by the network substrate for transmission timing and by socket buffers for
byte accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RpcCall", "RpcReply", "RPC_HEADER_BYTES", "CLASS_LIGHT", "CLASS_MEDIUM", "CLASS_HEAVY"]

#: Approximate RPC + NFS header overhead per message.
RPC_HEADER_BYTES = 160

# Client backoff classes (§4.1): write performance is the heavyweight
# indicator, read the middleweight, lookup the lightweight.
CLASS_LIGHT = "light"
CLASS_MEDIUM = "medium"
CLASS_HEAVY = "heavy"


@dataclass(slots=True)
class RpcCall:
    """An RPC request as seen on the wire and in the socket buffer."""

    xid: int
    proc: str
    args: Any
    #: Wire size in bytes (headers + argument payload).
    size: int
    #: Originating host name (for replies and duplicate detection).
    client: str
    #: Expected reply size in bytes.
    reply_size: int = RPC_HEADER_BYTES
    #: Backoff class for the client's adaptive retransmission timer.
    weight: str = CLASS_MEDIUM
    #: Transmission counter; >1 marks a retransmission.
    attempt: int = 1
    #: Observability trace (:class:`repro.obs.span.Trace`) carried through
    #: every layer this call crosses; None when tracing is off.
    trace: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"RPC call size must be positive, got {self.size}")

    @property
    def is_retransmission(self) -> bool:
        return self.attempt > 1


@dataclass(slots=True)
class RpcReply:
    """An RPC reply."""

    xid: int
    status: str  # "ok" or an error code such as "ESTALE"
    result: Any
    size: int = RPC_HEADER_BYTES
    #: Piggybacked lease grants (repro.lease): a tuple of LeaseGrant
    #: records, or None when the server runs without leases.  Kept out of
    #: ``result`` so existing reply-shape consumers are untouched.
    lease: Any = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"
