"""Server-side RPC: transport handles, the free-handle cache, svc dispatch.

In the reference port, the information needed to send a response lives in a
*transport handle* tied to the nfsd that started the request.  The paper's
architectural change (§6.1): an nfsd may return a REPLY_PENDING code, detach
its handle (parking it with the write descriptor on the active write queue),
take a fresh handle from a cache of free handles, and go look for other
work; some other nfsd later sends the parked reply.  That is what lets
"optimal write gathering take place with as few as one nfsd".
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.net.packet import Datagram
from repro.net.udp import UdpEndpoint
from repro.obs import PHASE_SOCKBUF, collector_for, registry_for
from repro.rpc.dupcache import DuplicateRequestCache
from repro.rpc.messages import RpcCall, RpcReply
from repro.sim import Environment

__all__ = ["TransportHandle", "HandleCache", "SvcServer", "REPLY_DONE", "REPLY_PENDING"]

#: Dispatch return codes (§6.1).
REPLY_DONE = "reply-done"
REPLY_PENDING = "reply-pending"


class TransportHandle:
    """Stores what is needed to send one request's response."""

    __slots__ = ("call", "datagram", "replied", "acquired_at")

    def __init__(self) -> None:
        self.call: Optional[RpcCall] = None
        self.datagram: Optional[Datagram] = None
        self.replied = False
        self.acquired_at = 0.0

    def load(self, call: RpcCall, datagram: Datagram, now: float) -> None:
        self.call = call
        self.datagram = datagram
        self.replied = False
        self.acquired_at = now

    def clear(self) -> None:
        self.call = None
        self.datagram = None
        self.replied = False


class HandleCache:
    """The cache of free transport handles added for delayed replies."""

    def __init__(self, initial: int = 8) -> None:
        self._free: List[TransportHandle] = [TransportHandle() for _ in range(initial)]
        self.allocated = 0
        self.peak_in_use = 0
        self._in_use = 0

    def acquire(self) -> TransportHandle:
        if self._free:
            handle = self._free.pop()
        else:
            handle = TransportHandle()
            self.allocated += 1
        self._in_use += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        return handle

    def release(self, handle: TransportHandle) -> None:
        handle.clear()
        self._in_use -= 1
        self._free.append(handle)

    @property
    def in_use(self) -> int:
        return self._in_use


class SvcServer:
    """The kernel-RPC service layer an nfsd calls into.

    The nfsd loop is::

        handle = yield from svc.next_request()   # may replay/drop duplicates
        code = yield from dispatcher(handle)     # NFS layer action routine
        # REPLY_DONE: the dispatcher already called svc.send_reply(handle,...)
        # REPLY_PENDING: the handle was parked; svc hands the nfsd a new one
    """

    def __init__(
        self,
        env: Environment,
        endpoint: UdpEndpoint,
        dup_cache: Optional[DuplicateRequestCache] = None,
    ) -> None:
        self.env = env
        self.endpoint = endpoint
        self.handles = HandleCache()
        self.dup_cache = dup_cache or DuplicateRequestCache(env)
        self.obs = collector_for(env)
        metrics = registry_for(env)
        prefix = f"svc.{endpoint.host}"
        self.requests_received = metrics.counter(f"{prefix}.requests")
        self.replies_sent = metrics.counter(f"{prefix}.replies")
        self.duplicates_dropped = metrics.counter(f"{prefix}.dup_dropped")
        self.duplicates_replayed = metrics.counter(f"{prefix}.dup_replayed")
        #: Admission controller, when backpressure is enabled.
        self.admission = None

    def attach_admission(self, queue) -> None:
        """Install an overload :class:`~repro.overload.admission.AdmissionQueue`
        as the socket buffer's gatekeeper."""
        self.admission = queue
        self.endpoint.inbox.admission = queue

    def next_request(self):
        """Wait for the next *fresh* request; duplicates are handled here.

        Generator returning a loaded :class:`TransportHandle`.
        """
        while True:
            datagram = yield self.endpoint.recv()
            call = datagram.payload
            if not isinstance(call, RpcCall):
                continue
            self.requests_received.add(1)
            disposition, cached_reply = self.dup_cache.check(call)
            if disposition == "drop":
                self.duplicates_dropped.add(1)
                continue
            if disposition == "replay":
                self.duplicates_replayed.add(1)
                self._transmit(call, cached_reply)
                continue
            handle = self.handles.acquire()
            handle.load(call, datagram, self.env.now)
            if self.obs.enabled and call.trace is not None:
                self.obs.emit(
                    PHASE_SOCKBUF,
                    self.endpoint.host,
                    datagram.arrived_at,
                    self.env.now,
                    trace_id=call.trace.trace_id,
                    proc=call.proc,
                )
            return handle

    def send_reply(
        self,
        handle: TransportHandle,
        status: str,
        result: Any,
        size: int = 160,
        lease: Any = None,
    ) -> None:
        """Send the response for ``handle`` and return it to the free cache."""
        if handle.call is None:
            raise ValueError("send_reply on an empty transport handle")
        if handle.replied:
            raise ValueError(f"duplicate reply for xid {handle.call.xid}")
        reply = RpcReply(
            xid=handle.call.xid, status=status, result=result, size=size, lease=lease
        )
        self.dup_cache.record_done(handle.call, reply)
        self._transmit(handle.call, reply)
        handle.replied = True
        self.replies_sent.add(1)
        self.handles.release(handle)

    def abandon(self, handle: TransportHandle) -> None:
        """Discard a request without replying (e.g. unrecoverable decode
        error); the client will retransmit."""
        if handle.call is not None:
            self.dup_cache.forget(handle.call)
        self.handles.release(handle)

    def _transmit(self, call: RpcCall, reply: RpcReply) -> None:
        self.endpoint.send(call.client, reply, reply.size)
