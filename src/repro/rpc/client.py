"""RPC client with the reference port's retransmission behaviour (§4.1).

A request that has not been answered within the class timeout is
retransmitted; the interval starts at 1.1 seconds and doubles per attempt.
The base interval adapts to measured server performance per weight class —
*write* latency is the heavyweight indicator, so a slow write path inflates
the client's patience for all heavyweight operations, exactly the coupling
the paper calls out ("Poor write performance will affect client behavior
with respect to other types of requests").
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator

from repro.net.udp import UdpEndpoint
from repro.obs import PHASE_RPC, Trace, collector_for, registry_for
from repro.rpc.messages import (
    CLASS_HEAVY,
    CLASS_LIGHT,
    CLASS_MEDIUM,
    RpcCall,
    RpcReply,
)
from repro.sim import AnyOf, Environment, Event

__all__ = ["RpcClient", "RpcTimeoutPolicy"]

#: Reference-port initial retransmission interval.
INITIAL_TIMEOUT = 1.1


class RpcTimeoutPolicy:
    """Per-class adaptive retransmission timers."""

    def __init__(
        self,
        initial: float = INITIAL_TIMEOUT,
        floor: float = INITIAL_TIMEOUT,
        ceiling: float = 30.0,
        gain: float = 0.125,
        latency_multiplier: float = 4.0,
    ) -> None:
        self.floor = floor
        self.ceiling = ceiling
        self.gain = gain
        self.latency_multiplier = latency_multiplier
        self._base: Dict[str, float] = {
            CLASS_LIGHT: initial,
            CLASS_MEDIUM: initial,
            CLASS_HEAVY: initial,
        }

    def timeout_for(self, weight: str, attempt: int) -> float:
        """Interval before (re)transmission ``attempt`` is declared lost."""
        base = self._base.get(weight, INITIAL_TIMEOUT)
        return min(self.ceiling, base * (2 ** (attempt - 1)))

    def observe(self, weight: str, latency: float) -> None:
        """Fold a measured round-trip into the class's base interval."""
        target = max(self.floor, latency * self.latency_multiplier)
        base = self._base.get(weight, INITIAL_TIMEOUT)
        self._base[weight] = min(
            self.ceiling, (1 - self.gain) * base + self.gain * target
        )

    def base(self, weight: str) -> float:
        return self._base.get(weight, INITIAL_TIMEOUT)


class RpcClient:
    """Issues calls toward one server host, matching replies by XID."""

    _xids = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        endpoint: UdpEndpoint,
        server: str,
        policy: RpcTimeoutPolicy | None = None,
    ) -> None:
        self.env = env
        self.endpoint = endpoint
        self.server = server
        self.policy = policy or RpcTimeoutPolicy()
        self._pending: Dict[int, Event] = {}
        self.obs = collector_for(env)
        metrics = registry_for(env)
        prefix = f"rpc.{endpoint.host}"
        self.retransmissions = metrics.counter(f"{prefix}.retransmissions")
        self.completed = metrics.counter(f"{prefix}.completed")
        self.duplicate_replies = metrics.counter(f"{prefix}.duplicate_replies")
        self.latency = metrics.tally(f"{prefix}.latency")
        env.process(self._receiver(), name=f"rpc-recv:{endpoint.host}")

    def call(
        self,
        proc: str,
        args: Any,
        size: int,
        reply_size: int = 160,
        weight: str = CLASS_MEDIUM,
        server: str | None = None,
    ) -> Generator:
        """Send a call and wait (retransmitting as needed) for its reply.

        Returns the :class:`RpcReply`.  Never gives up: like a hard NFS
        mount, it retries until the server answers.  ``server`` overrides
        the default destination host for this one call (a routed cluster
        client picks the file's shard here; retransmissions stay on it).
        """
        xid = next(self._xids)
        trace = None
        if self.obs.enabled:
            attrs = {}
            offset = getattr(args, "offset", None)
            if offset is not None:
                attrs["offset"] = offset
            data = getattr(args, "data", None)
            if data is not None:
                attrs["bytes"] = len(data)
            trace = Trace(trace_id=xid, proc=proc, client=self.endpoint.host, attrs=attrs)
        call = RpcCall(
            xid=xid,
            proc=proc,
            args=args,
            size=size,
            client=self.endpoint.host,
            reply_size=reply_size,
            weight=weight,
            trace=trace,
        )
        destination = server or self.server
        reply_event = self.env.event()
        self._pending[xid] = reply_event
        started = self.env.now
        try:
            while True:
                self.endpoint.send(destination, call, call.size)
                interval = self.policy.timeout_for(weight, call.attempt)
                timeout = self.env.timeout(interval)
                outcome = yield AnyOf(self.env, [reply_event, timeout])
                if reply_event in outcome:
                    break
                call.attempt += 1
                self.retransmissions.add(1)
        finally:
            self._pending.pop(xid, None)
        elapsed = self.env.now - started
        self.policy.observe(weight, elapsed)
        self.latency.observe(elapsed)
        self.completed.add(1)
        if trace is not None:
            self.obs.emit(
                PHASE_RPC,
                self.endpoint.host,
                started,
                self.env.now,
                trace_id=xid,
                proc=proc,
                attempts=call.attempt,
                **trace.attrs,
            )
        return reply_event.value

    def _receiver(self):
        while True:
            datagram = yield self.endpoint.recv()
            reply = datagram.payload
            if not isinstance(reply, RpcReply):
                continue  # stray traffic
            waiter = self._pending.get(reply.xid)
            if waiter is None or waiter.triggered:
                # Reply to a request we already gave up on / answered: a
                # duplicate generated by our own retransmission.
                self.duplicate_replies.add(1)
                continue
            waiter.succeed(reply)
