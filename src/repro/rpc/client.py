"""RPC client with the reference port's retransmission behaviour (§4.1).

A request that has not been answered within the class timeout is
retransmitted; the interval starts at 1.1 seconds and doubles per attempt.
The base interval adapts to measured server performance per weight class —
*write* latency is the heavyweight indicator, so a slow write path inflates
the client's patience for all heavyweight operations, exactly the coupling
the paper calls out ("Poor write performance will affect client behavior
with respect to other types of requests").
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from repro.net.udp import UdpEndpoint
from repro.obs import PHASE_RPC, Trace, collector_for, registry_for
from repro.rpc.messages import (
    CLASS_HEAVY,
    CLASS_LIGHT,
    CLASS_MEDIUM,
    RpcCall,
    RpcReply,
)
from repro.sim import Environment, Event

__all__ = ["RpcClient", "RpcTimeoutPolicy", "RpcTimeoutError"]

#: Reference-port initial retransmission interval.
INITIAL_TIMEOUT = 1.1

#: Cap on the doubling exponent so the uncapped product never overflows
#: into absurd floats before the ceiling clamp is applied.
MAX_BACKOFF_EXPONENT = 16


class RpcTimeoutError(Exception):
    """A call exhausted its retry budget (soft-mount ``ETIMEDOUT``)."""

    def __init__(self, proc: str, xid: int, attempts: int, server: str) -> None:
        super().__init__(
            f"rpc {proc} xid={xid} to {server} timed out after {attempts} attempts"
        )
        self.proc = proc
        self.xid = xid
        self.attempts = attempts
        self.server = server


class RpcTimeoutPolicy:
    """Per-class adaptive retransmission timers."""

    def __init__(
        self,
        initial: float = INITIAL_TIMEOUT,
        floor: float = INITIAL_TIMEOUT,
        ceiling: float = 30.0,
        gain: float = 0.125,
        latency_multiplier: float = 4.0,
        max_attempts: Optional[int] = None,
        jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.floor = floor
        self.ceiling = ceiling
        self.gain = gain
        self.latency_multiplier = latency_multiplier
        #: Soft-mount retry budget; None = hard mount (retry forever).
        self.max_attempts = max_attempts
        self.jitter = jitter
        self.jitter_seed = jitter_seed
        self._base: Dict[str, float] = {
            CLASS_LIGHT: initial,
            CLASS_MEDIUM: initial,
            CLASS_HEAVY: initial,
        }

    def timeout_for(self, weight: str, attempt: int) -> float:
        """Interval before (re)transmission ``attempt`` is declared lost."""
        base = self._base.get(weight, INITIAL_TIMEOUT)
        exponent = min(attempt - 1, MAX_BACKOFF_EXPONENT)
        return min(self.ceiling, base * (2 ** exponent))

    def interval_for(self, weight: str, attempt: int, host: str, xid: int) -> float:
        """The (optionally jittered) interval the client actually arms."""
        from repro.overload.rto import retransmit_jitter

        factor = retransmit_jitter(self.jitter_seed, host, xid, attempt, self.jitter)
        return self.timeout_for(weight, attempt) * factor

    def observe(self, weight: str, latency: float, retransmitted: bool = False) -> None:
        """Fold a measured round-trip into the class's base interval.

        The fixed-schedule policy predates Karn's algorithm, so the
        ``retransmitted`` flag is accepted (for interface parity with
        :class:`~repro.overload.rto.AdaptiveRetryPolicy`) but ignored.
        """
        target = max(self.floor, latency * self.latency_multiplier)
        base = self._base.get(weight, INITIAL_TIMEOUT)
        self._base[weight] = min(
            self.ceiling, (1 - self.gain) * base + self.gain * target
        )

    def on_timeout(self, weight: str) -> None:
        """Timeout notification hook: the fixed schedule does not react."""

    def base(self, weight: str) -> float:
        return self._base.get(weight, INITIAL_TIMEOUT)


class RpcClient:
    """Issues calls toward one server host, matching replies by XID."""

    def __init__(
        self,
        env: Environment,
        endpoint: UdpEndpoint,
        server: str,
        policy: RpcTimeoutPolicy | None = None,
    ) -> None:
        self.env = env
        # XIDs come from one counter per *environment* (not per process):
        # globally unique within a run — the dup cache keys on
        # (client, xid) and rack transports share a host — yet identical
        # across same-seed runs, which a process-wide counter is not
        # (seeded retransmit jitter is keyed by xid).
        xids = getattr(env, "_rpc_xids", None)
        if xids is None:
            xids = itertools.count(1)
            env._rpc_xids = xids
        self._xids = xids
        self.endpoint = endpoint
        self.server = server
        self.policy = policy or RpcTimeoutPolicy()
        #: Optional congestion listener (e.g. an overload
        #: :class:`~repro.overload.window.WriteWindow`): told about every
        #: timeout (``on_timeout(weight)``) and every completion
        #: (``on_success(weight, attempts)``).
        self.congestion = None
        #: Optional server-initiated-call handler (repro.lease callbacks):
        #: a generator function invoked as ``on_call(call)`` for every
        #: inbound :class:`RpcCall`; its return value is sent back as the
        #: reply result.  None (the default) drops such calls as stray
        #: traffic, the pre-lease behaviour.
        self.on_call = None
        self._pending: Dict[int, Event] = {}
        self.obs = collector_for(env)
        metrics = registry_for(env)
        prefix = f"rpc.{endpoint.host}"
        self.retransmissions = metrics.counter(f"{prefix}.retransmissions")
        self.completed = metrics.counter(f"{prefix}.completed")
        self.duplicate_replies = metrics.counter(f"{prefix}.duplicate_replies")
        self.timeouts = metrics.counter(f"{prefix}.timeouts")
        self.latency = metrics.tally(f"{prefix}.latency")
        env.process(self._receiver(), name=f"rpc-recv:{endpoint.host}")

    def call(
        self,
        proc: str,
        args: Any,
        size: int,
        reply_size: int = 160,
        weight: str = CLASS_MEDIUM,
        server: str | None = None,
        max_attempts: int | None = None,
        route=None,
    ) -> Generator:
        """Send a call and wait (retransmitting as needed) for its reply.

        Returns the :class:`RpcReply`.  With no retry budget it never
        gives up: like a hard NFS mount, it retries until the server
        answers.  A budget — ``max_attempts`` here, or the policy's own —
        bounds total transmissions; exhausting it raises
        :class:`RpcTimeoutError` (soft-mount semantics).  ``server``
        overrides the default destination host for this one call (a routed
        cluster client picks the file's shard here; retransmissions stay
        on it).  ``route``, when given, is consulted before *every*
        transmission — returning the destination for that attempt — so a
        routed call follows an alias repoint (promotion, live migration)
        mid-retry instead of burning its whole budget against the old
        host; the xid and backoff schedule carry across the move, exactly
        like a retransmission that happened to land on the new server.
        """
        xid = next(self._xids)
        trace = None
        if self.obs.enabled:
            attrs = {}
            offset = getattr(args, "offset", None)
            if offset is not None:
                attrs["offset"] = offset
            data = getattr(args, "data", None)
            if data is not None:
                attrs["bytes"] = len(data)
            trace = Trace(trace_id=xid, proc=proc, client=self.endpoint.host, attrs=attrs)
        call = RpcCall(
            xid=xid,
            proc=proc,
            args=args,
            size=size,
            client=self.endpoint.host,
            reply_size=reply_size,
            weight=weight,
            trace=trace,
        )
        destination = server or self.server
        budget = max_attempts if max_attempts is not None else self.policy.max_attempts
        reply_event = self.env.event()
        self._pending[xid] = reply_event
        started = self.env.now
        try:
            while True:
                if route is not None:
                    destination = route() or destination
                self.endpoint.send(destination, call, call.size)
                interval = self.policy.interval_for(
                    weight, call.attempt, self.endpoint.host, xid
                )
                # Wait for reply-or-timer with two plain callbacks instead
                # of an AnyOf condition: same wakeup order, no per-attempt
                # condition object, tuple, or result-dict churn.
                wait = Event(self.env)

                def _first(_event: Event, w: Event = wait) -> None:
                    if not w.triggered:
                        w.succeed(_event is reply_event)

                self.env.timeout(interval).callbacks.append(_first)
                reply_event.callbacks.append(_first)
                if (yield wait):
                    break
                self.timeouts.add(1)
                self.policy.on_timeout(weight)
                if self.congestion is not None:
                    self.congestion.on_timeout(weight)
                if budget is not None and call.attempt >= budget:
                    raise RpcTimeoutError(proc, xid, call.attempt, destination)
                call.attempt += 1
                self.retransmissions.add(1)
        finally:
            self._pending.pop(xid, None)
        elapsed = self.env.now - started
        self.policy.observe(weight, elapsed, retransmitted=call.attempt > 1)
        self.latency.observe(elapsed)
        self.completed.add(1)
        if self.congestion is not None:
            self.congestion.on_success(weight, call.attempt)
        if trace is not None:
            self.obs.emit(
                PHASE_RPC,
                self.endpoint.host,
                started,
                self.env.now,
                trace_id=xid,
                proc=proc,
                attempts=call.attempt,
                **trace.attrs,
            )
        return reply_event.value

    def _receiver(self):
        while True:
            datagram = yield self.endpoint.recv()
            reply = datagram.payload
            if not isinstance(reply, RpcReply):
                if isinstance(reply, RpcCall) and self.on_call is not None:
                    # A server-initiated call (lease recall): serve it in
                    # its own process so the receiver loop keeps draining.
                    self.env.process(
                        self._serve_callback(reply),
                        name=f"rpc-cb:{self.endpoint.host}",
                    )
                continue  # stray traffic
            waiter = self._pending.get(reply.xid)
            if waiter is None or waiter.triggered:
                # Reply to a request we already gave up on / answered: a
                # duplicate generated by our own retransmission.
                self.duplicate_replies.add(1)
                continue
            waiter.succeed(reply)

    def _serve_callback(self, call: RpcCall):
        """Run the on_call handler and send its result back as the reply.

        The handler must be idempotent: a retransmitted callback spawns a
        second handler run (there is no client-side dup cache), and the
        caller's RPC layer dedupes the extra reply by xid.
        """
        result = yield from self.on_call(call)
        self.endpoint.send(
            call.client,
            RpcReply(xid=call.xid, status="ok", result=result),
            call.reply_size,
        )
