"""The standard (reference port) write path — the paper's baseline.

Each WRITE is fully committed before its reply: data block(s), then — if
the write grew the file or changed on-disk structure — the indirect and
inode blocks, all synchronously, under the vnode lock (§4.4).  A
modify-time-only inode change is updated asynchronously (the reference
port's special case).
"""

from __future__ import annotations

from typing import Generator

from repro.fs.ufs import FsError
from repro.fs.vfs import IO_SYNC
from repro.nfs.protocol import Fattr
from repro.obs import (
    PHASE_COMMIT,
    PHASE_REPLICATE,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
    registry_for,
)
from repro.rpc.server import REPLY_DONE, TransportHandle

__all__ = ["StandardWritePath"]


class StandardWritePath:
    """rfs_write as shipped in the reference port."""

    def __init__(self, server) -> None:
        self.server = server
        self.env = server.env
        self.writes = registry_for(server.env).counter(f"{server.host}.standard.writes")

    def handle(self, nfsd_id: int, handle: TransportHandle) -> Generator:
        """Process one WRITE synchronously; always returns REPLY_DONE."""
        args = handle.call.args
        try:
            vnode = self.server.vnodes.by_fhandle(args.fhandle)
        except FsError as exc:
            yield from self.server.reply(handle, exc.code, None)
            return REPLY_DONE
        self.writes.add(1)
        trace = self.server.trace_of(handle)
        lock_requested = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            self.server.emit_span(trace, PHASE_VNODE_WAIT, lock_requested, ino=vnode.ino)
            commit_started = self.env.now
            try:
                yield from vnode.vop_write(args.offset, args.data, IO_SYNC)
            except FsError as exc:
                yield from self.server.reply(handle, exc.code, None)
                return REPLY_DONE
            self.server.emit_span(
                trace, PHASE_COMMIT, commit_started, bytes=len(args.data)
            )
            fattr = Fattr.from_inode(vnode.inode)
            # Check inside the lock: no later writer can supersede the
            # just-committed bytes before we inspect the durable image.
            # Requests from a crashed incarnation are never replied, so
            # their (now moot) commit state is exempt.
            if handle.acquired_at > getattr(self.server, "last_crash_time", -1.0):
                self.server.check_stable(vnode, args.offset, args.data)
            # Replica groups: the reply also waits for a quorum of backups
            # (inside the lock, so replication order is commit order).
            replicator = getattr(self.server, "replicator", None)
            if replicator is not None and replicator.active:
                replicate_started = self.env.now
                yield from replicator.commit_wait(
                    [
                        replicator.write_op(
                            vnode, args.offset, args.data, handle.call, fattr
                        )
                    ]
                )
                self.server.emit_span(
                    trace, PHASE_REPLICATE, replicate_started, ino=vnode.ino
                )
        stable_at = self.env.now
        yield from self.server.reply(handle, "ok", fattr)
        self.server.emit_span(trace, PHASE_REPLY, stable_at)
        return REPLY_DONE
