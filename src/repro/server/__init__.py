"""NFS server: nfsd pool, dispatch, CPU model, standard write path."""

from repro.server.base import NfsServer, StableStorageViolation
from repro.server.config import (
    WRITE_PATH_GATHER,
    WRITE_PATH_SIVA,
    WRITE_PATH_STANDARD,
    ServerConfig,
    WritePath,
)
from repro.server.cpu import Cpu
from repro.server.standard import StandardWritePath

__all__ = [
    "NfsServer",
    "StableStorageViolation",
    "ServerConfig",
    "WritePath",
    "WRITE_PATH_STANDARD",
    "WRITE_PATH_GATHER",
    "WRITE_PATH_SIVA",
    "Cpu",
    "StandardWritePath",
]
