"""Server configuration: daemon counts, buffers, CPU costs, write path.

CPU cost constants are calibrated so the simulated DEC 3400/3800-class
server lands in the paper's measured utilization bands (see DESIGN.md and
the calibration tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.policy import GatherPolicy
from repro.fs.ufs import CostModel

__all__ = [
    "ServerConfig",
    "WritePath",
    "WRITE_PATH_STANDARD",
    "WRITE_PATH_GATHER",
    "WRITE_PATH_SIVA",
    "WRITE_PATH_ASYNC_COMMIT",
]


class WritePath(str, enum.Enum):
    """Which rfs_write implementation the server runs.

    A ``str`` subclass so existing ``config.write_path == "gather"``
    comparisons (and %-style formatting into experiment labels) keep
    working; prefer the enum members in new code.
    """

    STANDARD = "standard"
    GATHER = "gather"
    SIVA = "siva"
    ASYNC_COMMIT = "async_commit"

    def __str__(self) -> str:  # "gather", not "WritePath.GATHER"
        return self.value

    @classmethod
    def coerce(cls, value: Union["WritePath", str]) -> "WritePath":
        """Accept an enum member or its string value; raise on junk."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown write path {value!r} (expected one of: {names})"
            ) from None


#: Legacy aliases, kept so pre-enum call sites keep importing cleanly.
WRITE_PATH_STANDARD = WritePath.STANDARD
WRITE_PATH_GATHER = WritePath.GATHER
WRITE_PATH_SIVA = WritePath.SIVA
WRITE_PATH_ASYNC_COMMIT = WritePath.ASYNC_COMMIT


@dataclass
class ServerConfig:
    """Everything an :class:`~repro.server.base.NfsServer` needs to know."""

    #: Number of nfsd daemons (the paper's experiments used 8; the LADDIS
    #: runs used 32).
    nfsds: int = 8
    #: CPU cores (1 everywhere in the paper).
    cpu_cores: int = 1
    #: NFS socket buffer limit ("DEC OSF/1 currently uses a maximum of
    #: .25M for socket buffering").
    socket_buffer_bytes: int = 256 * 1024
    #: Which rfs_write implementation to run.  Accepts a :class:`WritePath`
    #: member or its string value ("standard" / "gather" / "siva").
    write_path: WritePath = WritePath.STANDARD
    #: Gathering policy (used when write_path == "gather").
    gather_policy: GatherPolicy = field(default_factory=GatherPolicy)

    # CPU costs (seconds) for the RPC/NFS layers; filesystem costs are in
    # ``fs_costs``.  Per-frame receive costs come from the NetSpec.
    rpc_dispatch_cpu: float = 0.00025
    reply_cpu: float = 0.00015
    #: Scales *all* CPU costs (RPC, frames, filesystem): 1.0 is the DEC
    #: 3400/3500 class used in Tables 1-2; the DEC 3800 LADDIS server of
    #: Figures 2-3 is roughly twice as fast (0.5).
    cpu_scale: float = 1.0

    # Filesystem geometry.
    fs_bytes: int = 900 * 1024 * 1024
    block_size: int = 8192
    cluster_size: int = 65536
    cache_blocks: int = 4096
    fs_costs: CostModel = field(default_factory=CostModel)
    #: First non-root inode number (``None`` = the traditional sequence).
    #: A cluster assigns each shard a disjoint range so file handles are
    #: unambiguous fleet-wide (see ``repro.cluster``).
    ino_base: "int | None" = None

    #: When True, every WRITE reply is checked against the durable image
    #: (stable-storage-before-reply); violations are recorded on the server.
    verify_stable: bool = False
    #: [JUSZ89] duplicate request cache.  Disable to model a pre-1989
    #: server that re-executes every retransmission (ablation only).
    dup_cache: bool = True
    #: Paths the mountd side of the server answers MOUNT for.
    exports: tuple = ("/export",)
    #: Admission control (repro.overload): cap on queued requests in the
    #: socket buffer.  None = no admission queue — overload sheds only by
    #: silent byte overflow, the pre-overload behaviour.
    admission_max_requests: Optional[int] = None
    #: What the admission queue does with an arrival past the cap:
    #: "drop-newest", "drop-oldest", or "early-reply" (dup-cache-aware).
    shed_policy: str = "drop-newest"
    #: Lease TTL in seconds (repro.lease): the server grants read/write
    #: leases piggybacked on replies and recalls them before conflicting
    #: mutations.  None = no lease layer, the pre-lease behaviour.
    lease_ttl: Optional[float] = None
    #: Memory-pressure ceiling for the async_commit path (repro.commit):
    #: once the server holds this many un-COMMITted bytes in volatile
    #: memory it starts an opportunistic background flush.
    unstable_limit_bytes: int = 512 * 1024

    def __post_init__(self) -> None:
        if self.nfsds < 1:
            raise ValueError(f"need at least one nfsd, got {self.nfsds}")
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {self.lease_ttl}")
        if self.unstable_limit_bytes < 1:
            raise ValueError(
                f"unstable_limit_bytes must be >= 1, got {self.unstable_limit_bytes}"
            )
        if self.admission_max_requests is not None and self.admission_max_requests < 1:
            raise ValueError(
                f"admission_max_requests must be >= 1, got {self.admission_max_requests}"
            )
        from repro.overload.admission import SHED_POLICIES

        if self.shed_policy not in SHED_POLICIES:
            names = ", ".join(SHED_POLICIES)
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r} (expected one of: {names})"
            )
        self.write_path = WritePath.coerce(self.write_path)
