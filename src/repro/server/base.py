"""The NFS server: nfsd daemons, dispatch, and the non-write procedures.

Architecture per §4.2/§6.1: nfsds pull requests off the socket buffer via
the svc layer; each request is decoded (CPU), dispatched to an rfs_* action
routine, and answered.  The write action routine is pluggable — standard,
gathering, or the SIVA93 variant — and may return REPLY_PENDING, in which
case the nfsd simply goes back for more work while some other nfsd later
sends the parked reply from a cached transport handle.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.disk.device import Storage
from repro.fs.ufs import FsError, Ufs
from repro.fs.vfs import VnodeTable
from repro.net.segment import Segment
from repro.fs.vfs import FWRITE, FWRITE_METADATA, IO_DELAYDATA
from repro.nfs.protocol import (
    PROC_COMMIT,
    PROC_CREATE,
    PROC_GETATTR,
    PROC_LEASE_RENEW,
    PROC_LOOKUP,
    PROC_MOUNT,
    PROC_READ,
    PROC_READDIR,
    PROC_READLINK,
    PROC_REMOVE,
    PROC_RENAME,
    PROC_SETATTR,
    PROC_STATFS,
    PROC_SYMLINK,
    PROC_UMOUNT,
    PROC_WRITE,
    Fattr,
)
from repro.obs import (
    PHASE_DISPATCH,
    PHASE_REPLICATE,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
    collector_for,
    registry_for,
)
from repro.rpc.dupcache import DuplicateRequestCache
from repro.rpc.messages import RPC_HEADER_BYTES
from repro.rpc.server import REPLY_DONE, SvcServer, TransportHandle
from repro.server.config import (
    WRITE_PATH_ASYNC_COMMIT,
    WRITE_PATH_GATHER,
    WRITE_PATH_SIVA,
    ServerConfig,
)
from repro.server.cpu import Cpu
from repro.server.standard import StandardWritePath
from repro.sim import Counter, Environment

__all__ = ["NfsServer", "StableStorageViolation"]


class StableStorageViolation(AssertionError):
    """Raised (in verify mode) when a reply would precede stable commit."""


class NfsServer:
    """One simulated NFS server host."""

    def __init__(
        self,
        env: Environment,
        segment: Segment,
        storage: Storage,
        host: str = "server",
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.env = env
        self.segment = segment
        self.spec = segment.spec
        self.storage = storage
        self.host = host
        self.config = config or ServerConfig()
        self.obs = collector_for(env)
        self.metrics = registry_for(env)
        self.endpoint = segment.attach(host, self.config.socket_buffer_bytes)
        self.cpu = Cpu(env, self.config.cpu_cores)
        scale = self.config.cpu_scale
        base_costs = self.config.fs_costs
        scaled_costs = type(base_costs)(
            ufs_trip=base_costs.ufs_trip * scale,
            driver_trip=base_costs.driver_trip * scale,
            copy_per_byte=base_costs.copy_per_byte * scale,
            namei=base_costs.namei * scale,
        )
        self.ufs = Ufs(
            env,
            storage,
            fs_bytes=self.config.fs_bytes,
            block_size=self.config.block_size,
            cluster_size=self.config.cluster_size,
            cpu=self.cpu,
            costs=scaled_costs,
            cache_blocks=self.config.cache_blocks,
            ino_base=self.config.ino_base,
        )
        self.vnodes = VnodeTable(env, self.ufs)
        self.svc = SvcServer(
            env,
            self.endpoint,
            DuplicateRequestCache(env, enabled=self.config.dup_cache),
        )
        if self.config.admission_max_requests is not None:
            from repro.overload.admission import AdmissionQueue

            self.svc.attach_admission(
                AdmissionQueue(
                    env,
                    self.endpoint,
                    self.svc.dup_cache,
                    max_requests=self.config.admission_max_requests,
                    policy=self.config.shed_policy,
                )
            )
        self.write_path = self._make_write_path()
        #: Replica-group engine (repro.replica), installed by the cluster
        #: when the shard has backups; None on standalone servers.  When
        #: active, committed writes and namespace mutations must reach a
        #: quorum of backups before their replies are released.
        self.replicator = None
        #: Live-migration agent (repro.tiering), installed by the cluster
        #: on every member; None on standalone servers.  When a file is
        #: parked for cutover (or moved and awaiting purge), the agent's
        #: gates abandon its mutating requests and replies — the client
        #: retransmits and the router lands the retry on the new shard.
        self.migrator = None
        #: Lease layer (repro.lease): grants ride on replies, conflicting
        #: holders are recalled before mutations.  None = leases off.
        self.leases = None
        if self.config.lease_ttl is not None:
            from repro.lease.manager import LeaseManager

            self.leases = LeaseManager(env, segment, host, self.config.lease_ttl)
        #: Per-procedure completion counters, pre-resolved at construction
        #: so the reply hot path never does a name-keyed registry lookup.
        from repro.nfs.protocol import WEIGHT_OF

        self.ops_completed: Dict[str, Counter] = {
            proc: self.metrics.counter(f"{host}.ops.{proc}") for proc in WEIGHT_OF
        }
        self.op_latency = self.metrics.tally(f"{host}.op_latency")
        self.write_latency = self.metrics.tally(f"{host}.write_latency")
        self.stable_violations: list = []
        self._actions = {
            PROC_GETATTR: self._rfs_getattr,
            PROC_SETATTR: self._rfs_setattr,
            PROC_LOOKUP: self._rfs_lookup,
            PROC_READ: self._rfs_read,
            PROC_CREATE: self._rfs_create,
            PROC_REMOVE: self._rfs_remove,
            PROC_READDIR: self._rfs_readdir,
            PROC_STATFS: self._rfs_statfs,
            PROC_COMMIT: self._rfs_commit,
            PROC_READLINK: self._rfs_readlink,
            PROC_SYMLINK: self._rfs_symlink,
            PROC_RENAME: self._rfs_rename,
            PROC_MOUNT: self._mountd_mount,
            PROC_UMOUNT: self._mountd_umount,
        }
        #: NFSv3 write verifier: changes across (simulated) reboots so v3
        #: clients detect that unstable data may have been lost.
        self.boot_verifier = 1
        #: Simulation time of the last simulated crash; requests received
        #: before it died with the old incarnation and must never be
        #: answered (their clients will retransmit).
        self.last_crash_time = -1.0
        for nfsd_id in range(self.config.nfsds):
            env.process(self._nfsd(nfsd_id), name=f"nfsd{nfsd_id}@{host}")

    def _make_write_path(self):
        if self.config.write_path == WRITE_PATH_GATHER:
            from repro.core.gather import GatheringWritePath

            return GatheringWritePath(self, self.config.gather_policy)
        if self.config.write_path == WRITE_PATH_SIVA:
            from repro.core.siva import SivaWritePath

            return SivaWritePath(self)
        if self.config.write_path == WRITE_PATH_ASYNC_COMMIT:
            from repro.commit.path import AsyncCommitWritePath

            return AsyncCommitWritePath(self)
        return StandardWritePath(self)

    # -- shared services for write paths --------------------------------------

    def trace_of(self, handle: TransportHandle):
        """The request's Trace, or None (untraced run, or handle released)."""
        call = handle.call
        return getattr(call, "trace", None) if call is not None else None

    def emit_span(
        self,
        trace,
        phase: str,
        start: float,
        end: Optional[float] = None,
        **attrs,
    ) -> None:
        """Emit one lifecycle span for ``trace`` (no-op when untraced).

        Capture the trace via :meth:`trace_of` *before* replying — sending
        the reply releases the transport handle and with it the call.
        """
        if trace is None or not self.obs.enabled:
            return
        self.obs.emit(
            phase,
            self.host,
            start,
            self.env.now if end is None else end,
            trace_id=trace.trace_id,
            **attrs,
        )

    def reply(
        self,
        handle: TransportHandle,
        status: str,
        result,
        size: int = RPC_HEADER_BYTES,
        lease=None,
    ) -> Generator:
        """Charge reply CPU, record latency, and send the response."""
        if handle.acquired_at <= self.last_crash_time:
            # The request belongs to a previous server incarnation: the
            # real machine rebooted mid-service and never answered.  Drop
            # it silently; the client's retransmission will be served
            # fresh by the new incarnation.
            self.svc.abandon(handle)
            return
        if (
            self.migrator is not None
            and handle.call is not None
            and self.migrator.blocks(handle.call.proc, handle.call.args)
        ):
            # The file was parked for migration cutover while this reply
            # was in flight (e.g. a gathered write descriptor): from the
            # park instant this shard makes no more promises for it.  The
            # mutation may have applied locally — harmless, the source
            # copy is purged — but the *ack* must come from the new
            # authority, via the client's retransmission.
            self.svc.dup_cache.forget(handle.call)
            self.svc.abandon(handle)
            return
        yield from self.cpu.consume(
            (self.config.reply_cpu + self.spec.cpu_per_frame) * self.config.cpu_scale
        )
        proc = handle.call.proc
        latency = self.env.now - handle.acquired_at
        self.op_latency.observe(latency)
        if proc == PROC_WRITE:
            self.write_latency.observe(latency)
        try:
            self.ops_completed[proc].value += 1.0
        except KeyError:
            counter = self.ops_completed[proc] = self.metrics.counter(
                f"{self.host}.ops.{proc}"
            )
            counter.add(1)
        self.svc.send_reply(handle, status, result, size, lease=lease)

    def check_stable(
        self,
        vnode,
        offset: int,
        data: Optional[bytes],
        require_content: bool = True,
    ) -> None:
        """Verify the stable-storage-before-reply invariant (when enabled).

        ``require_content=False`` relaxes the byte-for-byte comparison to a
        reachability check: used when a *later* write in the same gathered
        batch legitimately superseded these bytes before the shared flush
        (NFS last-writer-wins) — the range must still be durably readable.
        Flyweight payloads (:mod:`repro.payload`) carry no content promise,
        so they always take the reachability check.
        """
        if not self.config.verify_stable or data is None:
            return
        if not isinstance(data, (bytes, bytearray, memoryview)):
            if not self.ufs.durable_covered(vnode.ino, offset, len(data)):
                self.stable_violations.append(
                    (self.env.now, vnode.ino, offset, len(data))
                )
            return
        durable = self.ufs.durable_read(vnode.ino, offset, len(data))
        if durable is None or (require_content and durable != data):
            self.stable_violations.append(
                (self.env.now, vnode.ino, offset, len(data))
            )

    # -- the nfsd daemon --------------------------------------------------------

    def _nfsd(self, nfsd_id: int):
        while True:
            handle = yield from self.svc.next_request()
            datagram = handle.datagram
            decode_started = self.env.now
            yield from self.cpu.consume(
                (
                    self.config.rpc_dispatch_cpu
                    + datagram.fragments * self.spec.cpu_per_frame
                )
                * self.config.cpu_scale
            )
            self.emit_span(
                self.trace_of(handle), PHASE_DISPATCH, decode_started, nfsd=nfsd_id
            )
            yield from self._dispatch(nfsd_id, handle)

    def _dispatch(self, nfsd_id: int, handle: TransportHandle) -> Generator:
        proc = handle.call.proc
        if self.migrator is not None and self.migrator.blocks(
            proc, handle.call.args
        ):
            # The file is frozen for migration cutover: execute nothing,
            # promise nothing.  Dropping the dup-cache registration lets
            # the retransmission be served fresh — by this shard if the
            # migration aborts, by the new authority once the pins move.
            self.svc.dup_cache.forget(handle.call)
            self.svc.abandon(handle)
            return REPLY_DONE
        leases = self.leases
        if leases is not None:
            # Quiesce conflicting leases (recall + wait, bounded by TTL)
            # before the operation touches anything.  No-op, consuming no
            # simulated time, when nothing conflicts.
            yield from leases.before(proc, handle.call.args, handle.call.client)
            if proc == PROC_LEASE_RENEW:
                result, size = yield from leases.renew(
                    handle.call.args, handle.call.client
                )
                yield from self.reply(handle, "ok", result, size)
                return REPLY_DONE
        if proc == PROC_WRITE:
            if not getattr(handle.call.args, "stable", True):
                # The async-commit path keeps its own unstable-write log
                # (memory-pressure flushing, COMMIT-time replication);
                # other paths share the plain cache-and-reply routine.
                unstable = getattr(self.write_path, "handle_unstable", None)
                if unstable is not None:
                    return (yield from unstable(handle))
                return (yield from self._rfs_write_unstable(handle))
            return (yield from self.write_path.handle(nfsd_id, handle))
        action = self._actions.get(proc)
        if action is None:
            yield from self.reply(handle, "EPROCUNAVAIL", None)
            return REPLY_DONE
        try:
            result, size = yield from action(handle.call.args)
        except FsError as exc:
            lease = None
            if leases is not None and proc == PROC_LOOKUP and exc.code == "ENOENT":
                # A miss still grants the dir lease: the client may cache
                # the negative entry until a create/remove invalidates it.
                lease = leases.grants_for_negative_lookup(
                    handle.call.args, handle.call.client
                )
            yield from self.reply(handle, exc.code, None, lease=lease)
            return REPLY_DONE
        if (
            self.replicator is not None
            and self.replicator.active
            and self.replicator.replicates(proc)
        ):
            # The mutation is locally committed; hold the reply until a
            # quorum of backups has it on stable storage too.
            replicate_started = self.env.now
            trace = self.trace_of(handle)
            yield from self.replicator.replicate_namespace(handle, proc, result, size)
            self.emit_span(trace, PHASE_REPLICATE, replicate_started, proc=proc)
        lease = None
        if leases is not None:
            lease = leases.grants_for(proc, handle.call.args, result, handle.call.client)
        yield from self.reply(handle, "ok", result, size, lease=lease)
        return REPLY_DONE

    # -- non-write action routines ------------------------------------------------

    def _rfs_getattr(self, fhandle) -> Generator:
        vnode = self.vnodes.by_fhandle(fhandle)
        yield from self.cpu.consume(0.0001)
        return Fattr.from_inode(vnode.inode), RPC_HEADER_BYTES

    def _rfs_setattr(self, args) -> Generator:
        vnode = self.vnodes.by_fhandle(args.fhandle)
        inode = vnode.inode
        if args.mtime is not None:
            inode.mtime = args.mtime
        if args.size is not None:
            inode.size = min(inode.size, args.size)  # truncate-only
        self.ufs._mark_meta_dirty(inode)
        yield from self.ufs._write_inode_sync(inode)
        return Fattr.from_inode(inode), RPC_HEADER_BYTES

    def _rfs_lookup(self, args) -> Generator:
        directory = self.vnodes.by_fhandle(args.dir_fhandle)
        inode = yield from self.ufs.lookup(directory.inode, args.name)
        vnode = self.vnodes.vnode_for(inode)
        return (vnode.fhandle, Fattr.from_inode(inode)), RPC_HEADER_BYTES

    def _rfs_read(self, args) -> Generator:
        vnode = self.vnodes.by_fhandle(args.fhandle)
        data = yield from vnode.vop_read(args.offset, args.count)
        return (
            (Fattr.from_inode(vnode.inode), data),
            RPC_HEADER_BYTES + len(data),
        )

    def _rfs_create(self, args) -> Generator:
        directory = self.vnodes.by_fhandle(args.dir_fhandle)
        try:
            inode = yield from self.ufs.create(directory.inode, args.name)
        except FsError as exc:
            if exc.code != "EEXIST":
                raise
            inode = yield from self.ufs.lookup(directory.inode, args.name)
        vnode = self.vnodes.vnode_for(inode)
        return (vnode.fhandle, Fattr.from_inode(inode)), RPC_HEADER_BYTES

    def _rfs_remove(self, args) -> Generator:
        directory = self.vnodes.by_fhandle(args.dir_fhandle)
        target_ino = directory.inode.entries.get(args.name)
        yield from self.ufs.remove(directory.inode, args.name)
        if target_ino is not None:
            self.vnodes.forget(target_ino)
        return None, RPC_HEADER_BYTES

    def _rfs_readdir(self, dir_fhandle) -> Generator:
        directory = self.vnodes.by_fhandle(dir_fhandle)
        names = yield from self.ufs.readdir(directory.inode)
        return names, RPC_HEADER_BYTES + 2048

    def _rfs_write_unstable(self, handle: TransportHandle) -> Generator:
        """NFSv3 unstable write (§8): cache the data, reply immediately.

        No stable-storage promise is made — the reply carries the boot
        verifier, and the client holds its copy of the data until a COMMIT
        under the same verifier succeeds.
        """
        args = handle.call.args
        try:
            vnode = self.vnodes.by_fhandle(args.fhandle)
        except FsError as exc:
            yield from self.reply(handle, exc.code, None)
            return REPLY_DONE
        trace = self.trace_of(handle)
        lock_requested = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            self.emit_span(trace, PHASE_VNODE_WAIT, lock_requested, ino=vnode.ino)
            try:
                yield from vnode.vop_write(args.offset, args.data, IO_DELAYDATA)
            except FsError as exc:
                yield from self.reply(handle, exc.code, None)
                return REPLY_DONE
            fattr = Fattr.from_inode(vnode.inode)
        cached_at = self.env.now
        yield from self.reply(handle, "ok", (fattr, self.boot_verifier))
        self.emit_span(trace, PHASE_REPLY, cached_at, unstable=True)
        return REPLY_DONE

    def _rfs_commit(self, args) -> Generator:
        """NFSv3 COMMIT: make a byte range (and its metadata) stable."""
        commit = getattr(self.write_path, "commit", None)
        if commit is not None:
            # The async-commit path flushes through its unstable log
            # (and replicates the flushed pieces in a replica group).
            return (yield from commit(args))
        vnode = self.vnodes.by_fhandle(args.fhandle)
        with vnode.lock.request() as grant:
            yield grant
            yield from vnode.vop_syncdata(args.offset, args.offset + args.count)
            yield from vnode.vop_fsync(FWRITE | FWRITE_METADATA)
        return self.boot_verifier, RPC_HEADER_BYTES

    def simulate_crash(self) -> None:
        """Model a server crash and reboot.

        Volatile state dies: every cached buffer is dropped (unstable data
        is lost), in-core inode metadata reverts to its last committed
        snapshot, queued and parked requests are discarded *without
        replies* (their clients retransmit), the duplicate request cache
        empties, and the boot verifier changes so NFSv3 clients know to
        resend uncommitted writes.  Stable storage (the durable image,
        including NVRAM-accepted extents) survives.
        """
        self.boot_verifier += 1
        self.last_crash_time = self.env.now
        # The socket buffer and dup cache are RAM.
        self.endpoint.inbox.reset_volatile()
        self.svc.dup_cache.reset_volatile()
        # Parked write descriptors die with the old incarnation; their
        # transport handles go back to the cache without replies.
        queues = getattr(self.write_path, "queues", None)
        if queues is not None:
            for queue in queues:
                for descriptor in queue.take_all():
                    self.svc.abandon(descriptor.handle)
        # The async-commit path's unstable log is volatile memory too.
        reset = getattr(self.write_path, "reset_volatile", None)
        if reset is not None:
            reset()
        # Replication state is volatile too: queued batches die, sessions
        # stop, and any nfsd blocked on a quorum is released (its reply is
        # dropped by the incarnation guard above).
        if self.replicator is not None:
            self.replicator.halt()
        # Migration sessions (dirty tracking, park fences) are RAM: the
        # engine detects the loss at cutover and aborts the attempt.
        if self.migrator is not None:
            self.migrator.reset_volatile()
        # The lease table is RAM too; clearing it opens a one-TTL grace
        # period so pre-crash leases drain by expiry before any mutation.
        if self.leases is not None:
            self.leases.reset_volatile()
        # The buffer cache and in-core inodes revert to the durable image.
        self.ufs.reset_volatile()

    def _rfs_readlink(self, fhandle) -> Generator:
        vnode = self.vnodes.by_fhandle(fhandle)
        target = yield from self.ufs.readlink(vnode.inode)
        return target, RPC_HEADER_BYTES + len(target)

    def _rfs_symlink(self, args) -> Generator:
        directory = self.vnodes.by_fhandle(args.dir_fhandle)
        inode = yield from self.ufs.symlink(directory.inode, args.name, args.target)
        vnode = self.vnodes.vnode_for(inode)
        return (vnode.fhandle, Fattr.from_inode(inode)), RPC_HEADER_BYTES

    def _rfs_rename(self, args) -> Generator:
        src_dir = self.vnodes.by_fhandle(args.src_dir_fhandle)
        dst_dir = self.vnodes.by_fhandle(args.dst_dir_fhandle)
        yield from self.ufs.rename(
            src_dir.inode, args.src_name, dst_dir.inode, args.dst_name
        )
        return None, RPC_HEADER_BYTES

    def _mountd_mount(self, path) -> Generator:
        """The MOUNT protocol: hand out the root file handle for an
        exported path.  (mountd is a separate service in reality; it shares
        the endpoint here but keeps its own semantics.)"""
        yield from self.cpu.consume(0.0001)
        if path not in self.config.exports:
            raise FsError("EACCES", f"{path} is not exported")
        root = self.vnodes.root
        return (root.fhandle, Fattr.from_inode(root.inode)), RPC_HEADER_BYTES

    def _mountd_umount(self, _path) -> Generator:
        yield from self.cpu.consume(0.0001)
        return None, RPC_HEADER_BYTES

    def _rfs_statfs(self, _args) -> Generator:
        yield from self.cpu.consume(0.0001)
        return (
            {
                "blocks": self.config.fs_bytes // self.config.block_size,
                "bfree": self.config.fs_bytes // self.config.block_size
                - self.ufs.allocator.allocated_count,
            },
            RPC_HEADER_BYTES,
        )

    # -- measurement helpers ------------------------------------------------------

    def reset_measurements(self) -> None:
        """Zero all rate windows (between warmup and measurement)."""
        self.cpu.reset()
        self.storage.reset_stats()
        for counter in self.ops_completed.values():
            counter.reset()
