"""Server CPU accounting.

Every piece of server work — RPC decode, per-frame reassembly, UFS trips,
driver trips, reply generation — acquires the CPU for its cost.  The meter
behind it produces the "server cpu util. (%)" row of the paper's tables,
and CPU contention naturally degrades service when the server saturates.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Environment, Resource, UtilizationMeter
from repro.sim.resources import Request

__all__ = ["Cpu"]


class Cpu:
    """A (possibly multi-core) CPU shared by all server work."""

    def __init__(self, env: Environment, cores: int = 1) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.env = env
        self.cores = cores
        self._resource = Resource(env, capacity=cores)
        self.meter = UtilizationMeter(env, "cpu")

    def consume(self, seconds: float) -> Generator:
        """Hold one core for ``seconds`` of work."""
        if seconds <= 0:
            return
        resource = self._resource
        meter = self.meter
        if not resource.queue and len(resource.users) < resource.capacity:
            # Uncontended: claim the slot directly.  The Request still
            # allocates its event id (so scheduling order matches the
            # general path exactly) but skips the grant-event round trip.
            claim = Request(resource)
            claim._granted = True
            resource.users.append(claim)
            meter.begin()
            try:
                yield self.env.timeout(seconds)
                meter.end()
            finally:
                resource.release(claim)
            return
        with resource.request() as grant:
            yield grant
            meter.begin()
            yield self.env.timeout(seconds)
            meter.end()

    def utilization(self) -> float:
        """Busy fraction in [0, 1]; for multi-core, mean busy cores / cores."""
        if self.cores == 1:
            return self.meter.utilization()
        return min(1.0, self.meter.mean_concurrency() / self.cores)

    def reset(self) -> None:
        self.meter.reset()
