"""The perf-trajectory baseline: a seeded, fixed workload over every path.

``repro bench`` runs one deterministic file copy per cell of
standard/gather/siva × Presto off/on and emits a small JSON document with
the three numbers future PRs regress against:

* throughput (client KB/s),
* p50/p99 client-observed write latency (ms),
* disk writes per MB copied (the metadata-amortization headline).

CI runs it on every push and uploads ``BENCH_<n>.json`` as an artifact,
so any perf-affecting PR has a baseline to diff against.
"""

from __future__ import annotations

import json
import time

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.net.spec import NetSpec
from repro.obs import registry_for
from repro.payload import PAYLOAD_FLYWEIGHT, PAYLOAD_FULL, coerce_payload_mode
from repro.server.config import WritePath
from repro.workload.sequential import write_file

__all__ = [
    "BENCH_SCHEMA",
    "bench_to_json",
    "run_bench",
    "run_bench_cell",
    "write_bench",
]

BENCH_SCHEMA = "repro.bench/1"

#: The paper's Prestoserve board (1 MB).
PRESTO_BYTES = 1 << 20


def run_bench_cell(
    config: TestbedConfig,
    file_mb: float,
    think_time: float = 0.0005,
    payload: str = PAYLOAD_FULL,
) -> dict:
    """One cell: a seeded sequential copy, measured client- and disk-side.

    ``payload`` selects byte fidelity (:mod:`repro.payload`): the default
    ``"full"`` writes real bytes, ``"flyweight"`` writes extent stand-ins.
    Every simulated number in the cell is identical across the two modes;
    only the wall-clock-derived ``sim_ops_per_sec`` differs (which is the
    point of the flyweight mode).
    """
    wall_started = time.perf_counter()
    testbed = Testbed(config)
    # Pre-register the client's write-latency tally *with samples* before
    # the client builds (registration is get-or-create), so percentiles
    # are computable without touching the client code.
    latency = registry_for(testbed.env).tally(
        "nfs.client-0.write_latency", keep_samples=True
    )
    client = testbed.add_client()
    env = testbed.env
    nbytes = int(file_mb * 1024 * 1024)
    proc = env.process(
        write_file(
            env, client, "benchfile", nbytes, think_time=think_time, payload=payload
        ),
        name="bench",
    )
    env.run(until=proc)
    elapsed = proc.value
    env.run()  # drain NVRAM destage etc. so disk totals are final
    wall_seconds = time.perf_counter() - wall_started
    sim_ops = sum(counter.value for counter in testbed.server.ops_completed.values())
    total_bytes, total_transactions = testbed.disk_stats_totals()
    disk_writes = sum(d.stats.writes.value for d in testbed.disks)
    return {
        "write_path": str(config.write_path),
        "presto": bool(config.presto_bytes),
        "client_kb_per_sec": round(nbytes / elapsed / 1024.0, 2),
        "elapsed_seconds": round(elapsed, 6),
        "write_latency_ms": {
            "mean": round(latency.mean * 1000.0, 4),
            "p50": round(latency.percentile(0.50) * 1000.0, 4),
            "p99": round(latency.percentile(0.99) * 1000.0, 4),
        },
        "disk_writes_per_mb": round(disk_writes / file_mb, 2),
        "rpcs_per_op": round(client.rpcs_per_op.value, 4),
        "disk_kb_per_sec": round(total_bytes / elapsed / 1024.0, 2),
        "disk_trans_per_sec": round(total_transactions / elapsed, 2),
        # NFS operations the server completed per *wall-clock* second:
        # the simulator-throughput number the perf baseline gates on.
        # Wall-time-derived, so it is the one nondeterministic field in
        # the cell; determinism comparisons must exclude it.
        "sim_ops": int(sim_ops),
        "sim_ops_per_sec": round(sim_ops / wall_seconds, 1) if wall_seconds else 0.0,
    }


def run_bench(
    netspec: NetSpec,
    net_name: str,
    file_mb: float = 2.0,
    biods: int = 7,
    seed: int = 0,
    progress=None,
    payload: str = PAYLOAD_FLYWEIGHT,
) -> dict:
    """The full grid: every write path × Presto off/on, one seed.

    Returns a JSON-ready document (stable key order, rounded floats) that
    is byte-identical across same-seed reruns, except ``sim_ops_per_sec``
    (wall-clock-derived by construction).  The grid defaults to flyweight
    payloads — the throughput baseline needs no byte fidelity, and every
    simulated number is identical either way; pass ``payload="full"`` to
    force real bytes.
    """
    payload = coerce_payload_mode(payload)
    cells = []
    for write_path in WritePath:
        for presto in (False, True):
            config = TestbedConfig(
                netspec=netspec,
                write_path=write_path,
                nbiods=biods,
                presto_bytes=PRESTO_BYTES if presto else None,
                seed=seed,
            )
            cell = run_bench_cell(config, file_mb, payload=payload)
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return {
        "schema": BENCH_SCHEMA,
        "net": net_name,
        "file_mb": file_mb,
        "biods": biods,
        "seed": seed,
        "payload": payload,
        "cells": cells,
    }


def bench_to_json(report: dict) -> str:
    """Canonical serialized form (what lands in ``BENCH_<n>.json``)."""
    return json.dumps(report, indent=2, sort_keys=True)


def write_bench(report: dict, path: str) -> None:
    """Write the canonical form to ``path`` (trailing newline included)."""
    with open(path, "w") as handle:
        handle.write(bench_to_json(report))
        handle.write("\n")
