"""Experiment harness: testbeds, table drivers, traces, LADDIS curves."""

from repro.experiments.filecopy import run_filecopy
from repro.experiments.laddis_curves import (
    CurvePoint,
    LaddisCurve,
    capacity_of,
    figure2,
    figure3,
    run_curve,
)
from repro.experiments.results import score_series, table_to_dict
from repro.experiments.runner import EXPERIMENT_KINDS, ExperimentSpec, run
from repro.experiments.sweep import sweep, sweepable_fields
from repro.experiments.tables import PAPER, TABLES, TableResult, TableSpec, run_table
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.experiments.trace import (
    TraceEvent,
    events_from_spans,
    figure1,
    render_timeline,
    trace_filecopy,
)

__all__ = [
    "TestbedConfig",
    "Testbed",
    "build_testbed",
    "ExperimentSpec",
    "run",
    "EXPERIMENT_KINDS",
    "run_filecopy",
    "events_from_spans",
    "TableSpec",
    "TableResult",
    "TABLES",
    "PAPER",
    "run_table",
    "TraceEvent",
    "trace_filecopy",
    "render_timeline",
    "figure1",
    "run_curve",
    "LaddisCurve",
    "CurvePoint",
    "figure2",
    "figure3",
    "capacity_of",
    "sweep",
    "sweepable_fields",
    "score_series",
    "table_to_dict",
]
