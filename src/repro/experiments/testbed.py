"""Testbed assembly: wire a network, disks, NVRAM, server, and clients.

One :class:`TestbedConfig` describes a whole hardware configuration from
the paper's Results section (network technology, spindle count, Presto
on/off, nfsd count, write path) and :func:`build_testbed` stands it up
inside a fresh simulation environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.policy import GatherPolicy
from repro.disk.device import DiskDevice, Storage
from repro.disk.model import RZ26, DiskSpec
from repro.disk.stripe import StripeSet
from repro.net.segment import Segment
from repro.net.spec import ETHERNET, NetSpec
from repro.nfs.client import NfsClient
from repro.nvram.presto import PrestoCache
from repro.obs import RecordingCollector, install
from repro.rpc.client import RpcClient
from repro.server.base import NfsServer
from repro.server.config import ServerConfig, WritePath
from repro.sim import Environment

__all__ = [
    "TestbedConfig",
    "Testbed",
    "build_testbed",
    "ClusterConfig",
    "build_cluster",
]


def __getattr__(name: str):
    # Fleet construction lives in repro.cluster; re-exported here (lazily,
    # to avoid an import cycle) so experiment code has one front door for
    # both single-server and multi-server assembly.
    if name in ("ClusterConfig", "build_cluster", "Cluster"):
        import repro.cluster.fleet as fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class TestbedConfig:
    """A full experiment configuration."""

    netspec: NetSpec = ETHERNET
    write_path: WritePath = WritePath.STANDARD
    nbiods: int = 4
    #: NVRAM accelerator: None = off, else capacity in bytes.
    presto_bytes: Optional[int] = None
    stripes: int = 1
    disk_spec: DiskSpec = RZ26
    nfsds: int = 8
    cpu_scale: float = 1.0
    verify_stable: bool = True
    gather_policy: GatherPolicy = field(default_factory=GatherPolicy)
    client_write_cpu: float = 0.0003
    seed: int = 0
    #: Per-frame network loss probability (0 = lossless wire).
    loss_rate: float = 0.0
    #: Seed for the segment's RNG (loss/duplication/reorder draws); None
    #: falls back to ``seed`` so existing configs are unchanged.
    net_seed: Optional[int] = None
    #: When True, the testbed installs a :class:`~repro.obs.RecordingCollector`
    #: so every layer emits lifecycle spans (off by default: zero cost).
    tracing: bool = False
    #: Server UDP socket buffer (bytes); None = the ServerConfig default
    #: (the paper's .25M DEC OSF/1 maximum).  The overload experiment
    #: shrinks this to model period-realistic receive buffers.
    sockbuf_bytes: Optional[int] = None
    #: Server admission control (repro.overload): cap on queued requests.
    #: None = no admission queue (shed only by silent byte overflow).
    admission_max_requests: Optional[int] = None
    #: Shed policy when the admission cap is hit: "drop-newest",
    #: "drop-oldest", or "early-reply".
    shed_policy: str = "drop-newest"
    #: Lease TTL in seconds (repro.lease): enables the server lease layer
    #: and gives every added client a :class:`~repro.nfs.cache.CacheStack`.
    #: None = no leases, no client caching — the pre-lease behaviour.
    lease_ttl: Optional[float] = None
    #: Memory-pressure ceiling for the async_commit path (repro.commit);
    #: None = the ServerConfig default (512 KB).
    unstable_limit_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.write_path = WritePath.coerce(self.write_path)

    def variant(self, **changes) -> "TestbedConfig":
        """A copy with some fields replaced (sweeps build on this)."""
        return replace(self, **changes)


class Testbed:
    """A wired-up simulation: environment, network, server, clients."""

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.env = Environment()
        #: Span collector; a shared no-op unless ``config.tracing``.  Must be
        #: installed before any component is built — they cache it.
        self.collector = RecordingCollector() if config.tracing else None
        if self.collector is not None:
            install(self.env, self.collector)
        self.segment = Segment(
            self.env,
            config.netspec,
            loss_rate=config.loss_rate,
            seed=config.seed if config.net_seed is None else config.net_seed,
        )
        self.disks: List[DiskDevice] = [
            DiskDevice(self.env, config.disk_spec, name=f"{config.disk_spec.name}-{i}")
            for i in range(config.stripes)
        ]
        base: Storage
        if config.stripes > 1:
            base = StripeSet(self.env, self.disks)
        else:
            base = self.disks[0]
        self.base_storage = base
        if config.presto_bytes:
            self.storage: Storage = PrestoCache(
                self.env, base, capacity=config.presto_bytes
            )
        else:
            self.storage = base
        server_kwargs = {}
        if config.sockbuf_bytes is not None:
            server_kwargs["socket_buffer_bytes"] = config.sockbuf_bytes
        if config.unstable_limit_bytes is not None:
            server_kwargs["unstable_limit_bytes"] = config.unstable_limit_bytes
        server_config = ServerConfig(
            nfsds=config.nfsds,
            write_path=config.write_path,
            gather_policy=config.gather_policy,
            verify_stable=config.verify_stable,
            cpu_scale=config.cpu_scale,
            admission_max_requests=config.admission_max_requests,
            shed_policy=config.shed_policy,
            lease_ttl=config.lease_ttl,
            **server_kwargs,
        )
        self.server = NfsServer(self.env, self.segment, self.storage, config=server_config)
        self.clients: List[NfsClient] = []

    def add_client(
        self,
        nbiods: Optional[int] = None,
        host: Optional[str] = None,
        policy=None,
        write_window=None,
    ) -> NfsClient:
        """Attach one more client host.

        Host names are auto-generated (``client-0``, ``client-1``, ...)
        skipping any name already attached to the segment, so repeated
        calls — and calls mixed with explicit ``host=`` names — never
        collide.  ``policy`` overrides the RPC retransmission policy (e.g.
        an overload :class:`~repro.overload.rto.AdaptiveRetryPolicy`);
        ``write_window`` installs an AIMD
        :class:`~repro.overload.window.WriteWindow` on the biod pool.
        """
        endpoint = self.segment.attach(host or self.segment.unique_host("client"))
        rpc = RpcClient(self.env, endpoint, self.server.host, policy=policy)
        effective_nbiods = self.config.nbiods if nbiods is None else nbiods
        # The async-commit path needs NFSv3 clients (unstable WRITE +
        # COMMIT) with a write window for COMMIT pressure; the window
        # starts at the biod depth so a clean wire keeps full write-behind.
        is_async = self.config.write_path == WritePath.ASYNC_COMMIT
        if is_async and write_window is None:
            from repro.overload.window import WriteWindow

            write_window = WriteWindow(initial=max(1, effective_nbiods))
        client = NfsClient(
            self.env,
            rpc,
            nbiods=effective_nbiods,
            write_cpu=self.config.client_write_cpu,
            nfs_version=3 if is_async else 2,
            write_window=write_window,
        )
        if self.server.leases is not None:
            # A leased server recalls conflicting holders and waits up to
            # one TTL for each; a client with no callback handler would
            # stall every conflicting writer that long.  So attaching the
            # cache stack (which registers rpc.on_call) is not optional.
            from repro.nfs.cache import CacheStack

            CacheStack(self.env, client)
        self.clients.append(client)
        return client

    # -- measured quantities ------------------------------------------------------

    def disk_stats_totals(self) -> tuple:
        """(bytes, transactions) across all spindles."""
        total_bytes = sum(d.stats.bytes.value for d in self.disks)
        total_transactions = sum(d.stats.transactions.value for d in self.disks)
        return total_bytes, total_transactions


def build_testbed(config: TestbedConfig, clients: int = 1) -> Testbed:
    """Stand up a testbed with ``clients`` attached client hosts."""
    testbed = Testbed(config)
    for _ in range(clients):
        testbed.add_client()
    return testbed
