"""Generic one-dimensional parameter sweeps over file-copy experiments.

Powers the ``repro sweep`` CLI command and ad-hoc exploration::

    from repro.experiments import TestbedConfig, sweep
    rows = sweep(
        TestbedConfig(write_path="gather"),
        field="nbiods",
        values=[0, 3, 7, 11, 15],
    )

Supports any scalar ``TestbedConfig`` field plus the two derived fields
people actually sweep: ``interval_ms`` (procrastination) and ``presto_mb``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import List, Sequence

from repro.core.policy import GatherPolicy
from repro.experiments.filecopy import run_filecopy
from repro.experiments.testbed import TestbedConfig
from repro.metrics.collect import FileCopyMetrics

__all__ = ["sweep", "sweepable_fields"]

_DERIVED = {
    "interval_ms": "procrastination interval (ms); None = transport default",
    "presto_mb": "NVRAM size in MB; 0 disables the accelerator",
}


def sweepable_fields() -> dict:
    """Names and descriptions of fields `sweep` accepts."""
    names = {
        f.name: f.type
        for f in dataclass_fields(TestbedConfig)
        if f.name not in ("netspec", "gather_policy", "disk_spec")
    }
    names.update(_DERIVED)
    return names


def _apply(base: TestbedConfig, field: str, value) -> TestbedConfig:
    if field == "interval_ms":
        interval = None if value is None else float(value) / 1000.0
        return base.variant(gather_policy=GatherPolicy(interval=interval))
    if field == "presto_mb":
        presto_bytes = int(float(value) * (1 << 20)) or None
        return base.variant(presto_bytes=presto_bytes)
    if field not in {f.name for f in dataclass_fields(TestbedConfig)}:
        raise ValueError(
            f"unknown sweep field {field!r}; choose from {sorted(sweepable_fields())}"
        )
    return base.variant(**{field: value})


def sweep(
    base: TestbedConfig,
    field: str,
    values: Sequence,
    file_mb: float = 4.0,
) -> List[FileCopyMetrics]:
    """Run one file-copy per value of ``field``; returns metrics in order."""
    if not values:
        raise ValueError("sweep needs at least one value")
    results = []
    for value in values:
        config = _apply(base, field, value)
        results.append(run_filecopy(config, file_mb=file_mb))
    return results
