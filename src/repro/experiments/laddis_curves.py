"""Figures 2 and 3: SPEC SFS 1.0 (LADDIS) throughput/latency curves (§7.2).

The paper's configuration: FDDI, five DS5000/200 clients with four load
processes each, a DEC 3800 server with 32 nfsds and 20 disks on 5 SCSI
buses.  We model the disk farm as a 20-way stripe (same aggregate spindle
bandwidth) and use cpu_scale=0.5 for the 3800-class processor.

Figure 2 (no Presto): gathering buys ~13% more capacity and ~11% lower
average latency.  Figure 3 (Presto): more modest, still positive gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.net.spec import FDDI
from repro.workload.laddis import SFS_LATENCY_BOUND_MS, LaddisGenerator, LaddisResult

__all__ = ["CurvePoint", "LaddisCurve", "run_curve", "figure2", "figure3", "capacity_of"]

MB = 1024 * 1024

#: Offered loads (aggregate NFS ops/s) swept for each curve.
DEFAULT_LOADS = (150.0, 300.0, 450.0, 600.0, 750.0, 900.0, 1050.0)


@dataclass
class CurvePoint:
    offered: float
    achieved: float
    latency_ms: float


@dataclass
class LaddisCurve:
    """One server variant's curve."""

    write_path: str
    presto: bool
    points: List[CurvePoint] = field(default_factory=list)

    def capacity(self) -> float:
        """SFS capacity: best achieved ops/s with latency <= 50 ms."""
        eligible = [p.achieved for p in self.points if p.latency_ms <= SFS_LATENCY_BOUND_MS]
        return max(eligible) if eligible else 0.0

    def latency_at(self, ops: float) -> Optional[float]:
        """Interpolated average latency at ``ops`` achieved ops/s."""
        points = sorted(self.points, key=lambda p: p.achieved)
        for low, high in zip(points, points[1:]):
            if low.achieved <= ops <= high.achieved:
                if high.achieved == low.achieved:
                    return low.latency_ms
                fraction = (ops - low.achieved) / (high.achieved - low.achieved)
                return low.latency_ms + fraction * (high.latency_ms - low.latency_ms)
        return None


def run_curve(
    write_path: str,
    presto: bool = False,
    loads: Sequence[float] = DEFAULT_LOADS,
    duration: float = 4.0,
    warmup: float = 1.0,
    stripes: int = 20,
    nfsds: int = 32,
    clients: int = 5,
    procs_per_client: int = 4,
    seed: int = 7,
    loss_rate: float = 0.0,
    net_seed: Optional[int] = None,
) -> LaddisCurve:
    """Measure one LADDIS curve: sweep offered loads on a fresh testbed."""
    config = TestbedConfig(
        netspec=FDDI,
        write_path=write_path,
        presto_bytes=4 * MB if presto else None,
        stripes=stripes,
        nfsds=nfsds,
        # Calibrated so the server CPU is the binding resource near the
        # paper's ~1100 ops/s capacity knee, as on the real DEC 3800.
        cpu_scale=1.0,
        verify_stable=False,  # speed: the invariant is covered by tests
        seed=seed,
        loss_rate=loss_rate,
        net_seed=net_seed,
    )
    testbed = Testbed(config)
    generator = LaddisGenerator(
        testbed.env,
        testbed.segment,
        server_host=testbed.server.host,
        clients=clients,
        procs_per_client=procs_per_client,
        seed=seed,
    )
    env = testbed.env
    setup = env.process(generator.setup(), name="laddis-setup")
    env.run(until=setup)
    testbed.server.reset_measurements()

    curve = LaddisCurve(write_path=write_path, presto=presto)
    for offered in loads:
        point = env.process(
            generator.run_point(offered, duration=duration, warmup=warmup),
            name=f"laddis@{offered}",
        )
        result: LaddisResult = env.run(until=point)
        curve.points.append(
            CurvePoint(
                offered=offered,
                achieved=result.achieved_ops,
                latency_ms=result.avg_latency_ms,
            )
        )
    return curve


def _figure(presto: bool, loads: Sequence[float], duration: float) -> Dict[str, LaddisCurve]:
    return {
        "standard": run_curve("standard", presto=presto, loads=loads, duration=duration),
        "gathering": run_curve("gather", presto=presto, loads=loads, duration=duration),
    }


def figure2(loads: Sequence[float] = DEFAULT_LOADS, duration: float = 4.0) -> Dict[str, LaddisCurve]:
    """DEC 3800 SPEC SFS 1.0 baseline curves (no Presto)."""
    return _figure(False, loads, duration)


def figure3(loads: Sequence[float] = DEFAULT_LOADS, duration: float = 4.0) -> Dict[str, LaddisCurve]:
    """Same configuration with Prestoserve."""
    return _figure(True, loads, duration)


def capacity_of(curves: Dict[str, LaddisCurve]) -> Dict[str, float]:
    """Capacity summary for a figure's two curves."""
    return {name: curve.capacity() for name, curve in curves.items()}
