"""One cell of Tables 1-6: the 10 MB sequential file copy (§7.1)."""

from __future__ import annotations

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.metrics.collect import FileCopyMetrics
from repro.obs import PercentileSummary
from repro.workload.sequential import write_file

__all__ = ["run_filecopy"]


def run_filecopy(
    config: TestbedConfig,
    file_mb: float = 10.0,
    think_time: float = 0.0005,
) -> FileCopyMetrics:
    """Run the paper's file-copy experiment under ``config``.

    Builds a fresh testbed, writes a ``file_mb`` MB file sequentially from a
    single client process, and returns the four table quantities measured
    over the copy (create to close-complete).
    """
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    nbytes = int(file_mb * 1024 * 1024)

    proc = env.process(
        write_file(env, client, "copytest", nbytes, think_time=think_time),
        name="filecopy",
    )
    env.run(until=proc)
    elapsed = proc.value
    if testbed.server.stable_violations:
        raise AssertionError(
            "stable-storage invariant violated: "
            f"{testbed.server.stable_violations[:3]}"
        )
    total_bytes, total_transactions = testbed.disk_stats_totals()
    gather_stats = getattr(testbed.server.write_path, "stats", None)
    phases = None
    if testbed.collector is not None:
        summary = PercentileSummary()
        summary.consume(testbed.collector.spans)
        phases = summary.table()
    return FileCopyMetrics(
        label=f"{config.netspec.name}"
        f"{'+presto' if config.presto_bytes else ''}"
        f"{'+stripe' + str(config.stripes) if config.stripes > 1 else ''}"
        f"/{config.write_path}",
        nbiods=config.nbiods,
        client_kb_per_sec=nbytes / elapsed / 1024.0,
        server_cpu_pct=100.0 * testbed.server.cpu.utilization(),
        disk_kb_per_sec=total_bytes / elapsed / 1024.0,
        disk_trans_per_sec=total_transactions / elapsed,
        elapsed_seconds=elapsed,
        mean_batch_size=(gather_stats.mean_batch_size() if gather_stats else None),
        gather_success_rate=(
            gather_stats.gather_success_rate() if gather_stats else None
        ),
        procrastinations=(
            gather_stats.procrastinations.value if gather_stats else None
        ),
        handoffs_nfsd=(gather_stats.handoffs_nfsd.value if gather_stats else None),
        handoffs_mbuf=(gather_stats.handoffs_mbuf.value if gather_stats else None),
        watchdog_sweeps=(
            gather_stats.watchdog_sweeps.value if gather_stats else None
        ),
        learned_skips=(
            gather_stats.skipped_procrastinations.value if gather_stats else None
        ),
        rpcs_per_op=(
            round(client.rpcs_per_op.value, 4) if client.user_ops.value else None
        ),
        phases=phases,
    )
