"""Drivers for Tables 1-6, with the paper's published numbers embedded.

Each :class:`TableSpec` describes one table's hardware configuration and
biod sweep; :func:`run_table` measures both server variants cell by cell
and returns a :class:`TableResult` that can be rendered in the paper's
layout or compared against :data:`PAPER` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.filecopy import run_filecopy
from repro.experiments.testbed import TestbedConfig
from repro.metrics.collect import FileCopyMetrics
from repro.metrics.report import format_paper_table
from repro.net.spec import ETHERNET, FDDI, NetSpec

__all__ = ["TableSpec", "TableResult", "TABLES", "PAPER", "run_table"]

MB = 1024 * 1024


@dataclass(frozen=True)
class TableSpec:
    """One table's configuration."""

    number: int
    title: str
    netspec: NetSpec
    presto_bytes: Optional[int]
    stripes: int
    biods: Sequence[int]
    #: CPU scaling: Tables 1-2 used a DEC 3400 server, 3-6 a DEC 3800.
    cpu_scale: float = 1.0


TABLES: Dict[int, TableSpec] = {
    1: TableSpec(1, "Table 1. NFS 10MB file copy: Ethernet", ETHERNET, None, 1, (0, 3, 7, 11, 15)),
    2: TableSpec(2, "Table 2. NFS 10MB file copy: Ethernet, Presto", ETHERNET, 1 * MB, 1, (0, 3, 7, 11, 15)),
    3: TableSpec(3, "Table 3. NFS 10MB file copy: FDDI", FDDI, None, 1, (0, 3, 7, 11, 15)),
    4: TableSpec(4, "Table 4. NFS 10MB file copy: FDDI, Presto", FDDI, 1 * MB, 1, (0, 3, 7, 11, 15)),
    5: TableSpec(5, "Table 5. NFS 10MB file copy: FDDI, 3 striped drives", FDDI, None, 3, (0, 3, 7, 11, 15, 19, 23)),
    6: TableSpec(6, "Table 6. NFS 10MB file copy: FDDI, Presto, 3 striped drives", FDDI, 4 * MB, 3, (0, 3, 7, 11, 15, 19, 23)),
}

#: The paper's published rows: PAPER[table][variant][row] -> values per biod.
#: variant is "std" or "gather"; row keys mirror the table row labels.
PAPER: Dict[int, Dict[str, Dict[str, List[float]]]] = {
    1: {
        "std": {
            "speed": [165, 194, 201, 203, 205],
            "cpu": [9, 11, 11, 12, 12],
            "disk_kbs": [480, 570, 590, 590, 590],
            "disk_tps": [61, 71, 72, 73, 74],
        },
        "gather": {
            "speed": [140, 375, 493, 575, 674],
            "cpu": [7, 14, 16, 19, 21],
            "disk_kbs": [415, 550, 610, 660, 750],
            "disk_tps": [52, 47, 24, 31, 21],
        },
    },
    2: {
        "std": {
            "speed": [809, 1025, 1080, 1103, 1112],
            "cpu": [30, 38, 41, 42, 43],
            "disk_kbs": [789, 1004, 1080, 1104, 1080],
            "disk_tps": [7, 8, 9, 9, 9],
        },
        "gather": {
            "speed": [439, 787, 915, 959, 991],
            "cpu": [18, 26, 30, 32, 34],
            "disk_kbs": [430, 770, 885, 949, 985],
            "disk_tps": [4, 7, 7, 9, 8],
        },
    },
    3: {
        "std": {
            "speed": [207, 209, 207, 209, 208],
            "cpu": [6, 6, 6, 6, 6],
            "disk_kbs": [605, 610, 605, 615, 615],
            "disk_tps": [76, 77, 76, 75, 77],
        },
        "gather": {
            "speed": [177, 534, 846, 876, 1085],
            "cpu": [6, 9, 10, 11, 12],
            "disk_kbs": [520, 780, 975, 1000, 1175],
            "disk_tps": [66, 65, 38, 45, 33],
        },
    },
    4: {
        "std": {
            "speed": [1883, 1898, 1863, 1900, 1918],
            "cpu": [33, 34, 35, 35, 34],
            "disk_kbs": [1833, 1848, 1844, 1844, 1900],
            "disk_tps": [16, 16, 15, 15, 16],
        },
        "gather": {
            "speed": [927, 1850, 1888, 1895, 1894],
            "cpu": [13, 24, 28, 27, 27],
            "disk_kbs": [910, 1745, 1889, 1882, 1867],
            "disk_tps": [8, 17, 16, 16, 16],
        },
    },
    5: {
        "std": {
            "speed": [200, 275, 299, 304, 308, 308, 313],
            "cpu": [7, 10, 11, 11, 11, 11, 12],
            "disk_kbs": [560, 827, 865, 895, 879, 921, 927],
            "disk_tps": [72, 104, 110, 112, 111, 115, 117],
        },
        "gather": {
            "speed": [187, 574, 814, 987, 1115, 1287, 1618],
            "cpu": [7, 11, 13, 15, 15, 18, 22],
            "disk_kbs": [560, 785, 984, 1109, 1225, 1384, 1695],
            "disk_tps": [71, 72, 60, 65, 67, 71, 74],
        },
    },
    6: {
        "std": {
            "speed": [2102, 3403, 3394, 3503, 3474, 3360, 3342],
            "cpu": [40, 66, 69, 68, 70, 71, 70],
            "disk_kbs": [2067, 3146, 3515, 3349, 3305, 3575, 3445],
            "disk_tps": [47, 71, 80, 77, 76, 80, 78],
        },
        "gather": {
            "speed": [1015, 2144, 2649, 2775, 2754, 3078, 3048],
            "cpu": [6, 29, 42, 42, 42, 43, 46],
            "disk_kbs": [1008, 2143, 2644, 2724, 2685, 2501, 2627],
            "disk_tps": [22, 49, 61, 62, 63, 59, 63],
        },
    },
}


@dataclass
class TableResult:
    """Measured cells for one table, both variants."""

    spec: TableSpec
    standard: List[FileCopyMetrics] = field(default_factory=list)
    gathering: List[FileCopyMetrics] = field(default_factory=list)

    def render(self) -> str:
        return format_paper_table(
            self.spec.title,
            self.spec.biods,
            [m.row() for m in self.standard],
            [m.row() for m in self.gathering],
        )

    def series(self, variant: str, row: str) -> List[float]:
        """Measured values for comparison against PAPER[n][variant][row]."""
        cells = self.standard if variant == "std" else self.gathering
        attr = {
            "speed": "client_kb_per_sec",
            "cpu": "server_cpu_pct",
            "disk_kbs": "disk_kb_per_sec",
            "disk_tps": "disk_trans_per_sec",
        }[row]
        return [getattr(cell, attr) for cell in cells]


def run_table(number: int, file_mb: float = 10.0) -> TableResult:
    """Measure every cell of table ``number``.

    ``file_mb`` can be lowered for quick runs; 10 MB matches the paper.
    """
    spec = TABLES[number]
    result = TableResult(spec)
    for write_path, bucket in (("standard", result.standard), ("gather", result.gathering)):
        for nbiods in spec.biods:
            config = TestbedConfig(
                netspec=spec.netspec,
                write_path=write_path,
                nbiods=nbiods,
                presto_bytes=spec.presto_bytes,
                stripes=spec.stripes,
                cpu_scale=spec.cpu_scale,
            )
            bucket.append(run_filecopy(config, file_mb=file_mb))
    return result
