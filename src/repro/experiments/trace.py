"""Figure 1: the packet/disk timeline of a sequential writer (§5, §6).

Regenerates the paper's side-by-side trace — client 8K writes flowing to
the server, server disk transactions, and write replies — for the standard
and gathering servers with 4 biods, after the client is >100K into the
file.  The gathering side should show the paper's signature: a burst of
"N Write Replies" after one clustered data write and one metadata update,
instead of a data+metadata pair per write.

The timeline is a pure *view* over the :mod:`repro.obs` span stream: the
testbed is built with ``tracing=True`` and the events are derived from the
recorded ``rpc.call`` and ``disk.io`` spans — no layer is monkeypatched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.net.spec import FDDI
from repro.nfs.protocol import PROC_WRITE
from repro.obs import PHASE_DISK_IO, PHASE_RPC, Span
from repro.workload.sequential import write_file

__all__ = [
    "TraceEvent",
    "trace_filecopy",
    "events_from_spans",
    "render_timeline",
    "render_timeline_svg",
    "figure1",
]


@dataclass
class TraceEvent:
    """One row of the Figure 1 timeline."""

    time_ms: float
    actor: str  # "client", "server", or "disk"
    label: str


def events_from_spans(spans: Iterable[Span]) -> List[TraceEvent]:
    """Project the Figure 1 events out of a recorded span stream.

    * an ``rpc.call`` span for a WRITE yields "8K Write @NK" at its start
      (the request leaving the client) and "Write Reply" at its end;
    * a ``disk.io`` span yields one "NK <kind> to disk" event at the time
      the transaction entered the device queue.
    """
    keyed = []
    for span in spans:
        if span.name == PHASE_RPC and span.attrs.get("proc") == PROC_WRITE:
            offset = int(span.attrs.get("offset", 0))
            keyed.append(
                (
                    span.start,
                    span.seq,
                    TraceEvent(
                        span.start * 1000.0, "client", f"8K Write @{offset // 1024}K"
                    ),
                )
            )
            keyed.append(
                (span.end, span.seq, TraceEvent(span.end * 1000.0, "client", "Write Reply"))
            )
        elif span.name == PHASE_DISK_IO:
            queued_at = span.attrs.get("queued_at", span.start)
            nbytes = int(span.attrs.get("bytes", 0))
            kind = span.attrs.get("kind", "data")
            keyed.append(
                (
                    queued_at,
                    span.seq,
                    TraceEvent(queued_at * 1000.0, "disk", f"{nbytes // 1024}K {kind} to disk"),
                )
            )
    keyed.sort(key=lambda item: (item[0], item[1]))
    return [event for _time, _seq, event in keyed]


def trace_filecopy(
    write_path: str,
    nbiods: int = 4,
    file_kb: int = 256,
    netspec=FDDI,
) -> List[TraceEvent]:
    """Run a traced file copy; returns all events in time order."""
    config = TestbedConfig(
        netspec=netspec, write_path=write_path, nbiods=nbiods, tracing=True
    )
    testbed = Testbed(config)
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(
        write_file(env, client, "traced", file_kb * 1024), name="trace-copy"
    )
    env.run(until=proc)
    return events_from_spans(testbed.collector.spans)


def render_timeline(
    events: List[TraceEvent],
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
    width: int = 72,
) -> str:
    """Plain-text rendering of a trace window (client left, disk right)."""
    chosen = [
        e
        for e in events
        if (start_ms is None or e.time_ms >= start_ms)
        and (end_ms is None or e.time_ms <= end_ms)
    ]
    lines = [f"{'time(ms)':>9}  {'client':<28}{'server disk':<28}"]
    for event in chosen:
        left = event.label if event.actor == "client" else ""
        right = event.label if event.actor == "disk" else ""
        lines.append(f"{event.time_ms:9.1f}  {left:<28}{right:<28}")
    return "\n".join(lines)


def render_timeline_svg(
    standard_window: List[TraceEvent],
    gathering_window: List[TraceEvent],
    width: int = 900,
    height: int = 640,
) -> str:
    """Render the two Figure 1 timelines side by side as SVG.

    Each side has a client column and a disk column; events are plotted at
    their (normalized) times with short labels — the same visual idea as
    the paper's figure.
    """
    columns = [
        ("Standard", standard_window, 0),
        ("Gathering", gathering_window, width // 2),
    ]
    margin_top, margin_bottom = 48, 16
    plot_h = height - margin_top - margin_bottom
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="10">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<line x1="{width // 2}" y1="0" x2="{width // 2}" y2="{height}" stroke="#bbb"/>',
    ]
    for title, window, x_base in columns:
        if not window:
            continue
        t0 = window[0].time_ms
        t1 = max(event.time_ms for event in window) or (t0 + 1)
        span = max(t1 - t0, 1e-6)
        client_x = x_base + 120
        disk_x = x_base + 300
        parts.append(
            f'<text x="{x_base + width // 4}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{title} server</text>'
        )
        for x, label in ((client_x, "client"), (disk_x, "server disk")):
            parts.append(
                f'<text x="{x}" y="38" text-anchor="middle" font-size="11">{label}</text>'
            )
            parts.append(
                f'<line x1="{x}" y1="{margin_top}" x2="{x}" '
                f'y2="{margin_top + plot_h}" stroke="#888"/>'
            )
        for event in window:
            y = margin_top + (event.time_ms - t0) / span * plot_h
            if event.actor == "client":
                color = "#1f6fb2" if "Write Reply" not in event.label else "#3a8a4d"
                x, anchor, dx = client_x, "end", -6
            else:
                color = "#c4542d"
                x, anchor, dx = disk_x, "start", 6
            parts.append(
                f'<circle cx="{x}" cy="{y:.1f}" r="2.6" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + dx}" y="{y + 3:.1f}" text-anchor="{anchor}" '
                f'fill="{color}">{event.label}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def figure1(file_kb: int = 256, window_after_kb: int = 100) -> dict:
    """Both Figure 1 timelines, windowed past ``window_after_kb`` of file.

    Returns {"standard": ..., "gathering": ...} where each side carries the
    raw events, the chosen window, and summary counts comparable to the
    figure (disk transactions and reply batching within the window).
    """
    sides = {}
    for name, write_path in (("standard", "standard"), ("gathering", "gather")):
        events = trace_filecopy(write_path, file_kb=file_kb)
        # Find the time the client passes window_after_kb into the file.
        threshold = next(
            (
                e.time_ms
                for e in events
                if e.actor == "client"
                and e.label.startswith("8K Write")
                and int(e.label.split("@")[1][:-1]) >= window_after_kb
            ),
            0.0,
        )
        window = [e for e in events if threshold <= e.time_ms <= threshold + 150.0]
        disk_ops = sum(1 for e in window if e.actor == "disk")
        replies = sum(1 for e in window if e.label == "Write Reply")
        writes = sum(1 for e in window if e.label.startswith("8K Write"))
        sides[name] = {
            "events": events,
            "window": window,
            "window_start_ms": threshold,
            "disk_transactions": disk_ops,
            "writes": writes,
            "replies": replies,
            "rendered": render_timeline(window),
        }
    return sides
