"""Result serialization and fidelity scoring against the published numbers.

A *fidelity score* for a measured series vs the paper's series is the
geometric-mean ratio and the mean absolute log-ratio ("how many dBs off,
on average").  The scorecard gives the reproduction a per-table,
per-row verdict:

* ``match``      — mean |log2 ratio| < 0.32  (within ~25%)
* ``shape``      — < 1.0 (within ~2x, ordering preserved)
* ``deviation``  — anything worse

These bands are generous on purpose: our substrate is a calibrated
simulator, and DESIGN.md §2 scopes the claim to shape, not absolutes.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["SeriesFidelity", "score_series", "table_to_dict", "save_json", "VERDICTS"]

VERDICTS = ("match", "shape", "deviation")

_MATCH_BAND = 0.32  # mean |log2 ratio| ~ within 25%
_SHAPE_BAND = 1.0  # within 2x


@dataclass
class SeriesFidelity:
    """How one measured series compares with its published counterpart."""

    label: str
    measured: List[float]
    paper: List[float]
    geometric_mean_ratio: float
    mean_abs_log2_ratio: float
    ordering_preserved: bool
    verdict: str

    def to_dict(self) -> dict:
        return asdict(self)


def _sign_pattern(values: Sequence[float]) -> List[int]:
    """Direction of change between consecutive points (-1, 0, +1)."""
    pattern = []
    for a, b in zip(values, values[1:]):
        if b > a * 1.05:
            pattern.append(1)
        elif b < a * 0.95:
            pattern.append(-1)
        else:
            pattern.append(0)
    return pattern


def score_series(label: str, measured: Sequence[float], paper: Sequence[float]) -> SeriesFidelity:
    """Score one measured series against the published one."""
    if len(measured) != len(paper):
        raise ValueError(
            f"{label}: length mismatch ({len(measured)} vs {len(paper)})"
        )
    if not measured:
        raise ValueError(f"{label}: empty series")
    log_ratios = []
    for m, p in zip(measured, paper):
        if m <= 0 or p <= 0:
            log_ratios.append(0.0 if m == p else 3.0)
        else:
            log_ratios.append(math.log2(m / p))
    mean_abs = sum(abs(r) for r in log_ratios) / len(log_ratios)
    geo_mean = 2 ** (sum(log_ratios) / len(log_ratios))
    # Ordering: do measured values rise/fall where the paper's do?  Allow
    # flat-vs-small-move disagreements.
    m_pattern = _sign_pattern(measured)
    p_pattern = _sign_pattern(paper)
    disagreements = sum(
        1 for a, b in zip(m_pattern, p_pattern) if a != 0 and b != 0 and a != b
    )
    ordering = disagreements == 0
    if mean_abs < _MATCH_BAND:
        verdict = "match"
    elif mean_abs < _SHAPE_BAND and ordering:
        verdict = "shape"
    else:
        verdict = "deviation"
    return SeriesFidelity(
        label=label,
        measured=[round(v, 2) for v in measured],
        paper=list(paper),
        geometric_mean_ratio=round(geo_mean, 3),
        mean_abs_log2_ratio=round(mean_abs, 3),
        ordering_preserved=ordering,
        verdict=verdict,
    )


def table_to_dict(result) -> dict:
    """Serialize a TableResult (and its spec) for JSON export."""
    spec = result.spec
    def cells(items):
        return [
            {
                "nbiods": m.nbiods,
                "client_kb_per_sec": round(m.client_kb_per_sec, 1),
                "server_cpu_pct": round(m.server_cpu_pct, 1),
                "disk_kb_per_sec": round(m.disk_kb_per_sec, 1),
                "disk_trans_per_sec": round(m.disk_trans_per_sec, 1),
                "mean_batch_size": m.mean_batch_size,
                "elapsed_seconds": round(m.elapsed_seconds, 4),
            }
            for m in items
        ]

    return {
        "table": spec.number,
        "title": spec.title,
        "network": spec.netspec.name,
        "presto_bytes": spec.presto_bytes,
        "stripes": spec.stripes,
        "biods": list(spec.biods),
        "standard": cells(result.standard),
        "gathering": cells(result.gathering),
    }


def save_json(path: str, payload) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
