"""One front door for the experiment drivers: ``run(ExperimentSpec)``.

The individual drivers (:func:`~repro.experiments.filecopy.run_filecopy`,
:func:`~repro.experiments.tables.run_table`,
:func:`~repro.experiments.laddis_curves.run_curve`,
:func:`~repro.experiments.sweep.sweep`,
:func:`~repro.experiments.trace.figure1`) remain importable, but callers —
the CLI above all — describe *what* to run with an :class:`ExperimentSpec`
and let :func:`run` dispatch::

    from repro.experiments import ExperimentSpec, run
    metrics = run(ExperimentSpec(kind="copy",
                                 config=TestbedConfig(write_path="gather")))

Every experiment in the repo goes through this door.  The kinds:

======== ==================================================== =====================
kind     drives                                               returns
======== ==================================================== =====================
copy     one file-copy cell                                   FileCopyMetrics
table    one of the paper's Tables 1-6                        TableResult
curve    a Figure 2/3 LADDIS load curve                       LaddisCurve
sweep    one TestbedConfig field over several values          list of FileCopyMetrics
trace    the Figure 1 timelines                               dict
bench    the perf-baseline grid (BENCH_<n>.json)              dict
chaos    a seeded fault-injection campaign                    CampaignReport
cluster  the sharded fleet (single cell or scaling sweep)     ClusterRunResult /
                                                              ScalingSweepResult
overload the goodput-vs-load sweep past saturation            OverloadReport
replica  the K-replication cost + promote-storm sweep         ReplicaRunResult
cache    the lease-cache TTL × sharing sweep + chaos probes   CacheReport
commit   the async WRITE+COMMIT three-way comparison + probes CommitReport
scrub    the integrity sweep: corruption × bandwidth × K      ScrubRunResult
tiering  the placement-policy sweep + migration storm         TieringRunResult
======== ==================================================== =====================

The old per-subsystem entry points (``run_cluster``, ``run_scaling_sweep``,
``run_overload``, ``run_replica``, ``ChaosCampaign.run``) still work but
emit :class:`DeprecationWarning` and delegate here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.experiments.filecopy import run_filecopy
from repro.experiments.laddis_curves import run_curve
from repro.experiments.sweep import sweep
from repro.experiments.tables import run_table
from repro.experiments.trace import figure1
from repro.payload import PAYLOAD_FLYWEIGHT, PAYLOAD_FULL, coerce_payload_mode
from repro.server.config import WritePath

__all__ = ["ExperimentSpec", "run", "EXPERIMENT_KINDS"]

EXPERIMENT_KINDS = (
    "copy",
    "table",
    "curve",
    "sweep",
    "trace",
    "bench",
    "chaos",
    "cluster",
    "overload",
    "replica",
    "cache",
    "commit",
    "scrub",
    "tiering",
)

#: Per-kind workload-size defaults for :attr:`ExperimentSpec.file_kb`.
_FILE_KB_DEFAULTS = {"chaos": 192, "cluster": 64, "replica": 64}

#: Per-kind payload-fidelity defaults (:mod:`repro.payload`): the bench
#: grid needs no byte fidelity, everything else keeps full bytes.
_PAYLOAD_DEFAULTS = {"bench": PAYLOAD_FLYWEIGHT}


@dataclass
class ExperimentSpec:
    """A declarative description of one experiment run.

    ``kind`` selects the driver; the other fields parameterize it.  Fields
    irrelevant to the chosen kind are ignored:

    * ``copy``     — ``config`` (required), ``file_mb``, ``think_time``
    * ``table``    — ``table`` (required, 1-6), ``file_mb``
    * ``curve``    — ``write_path``, ``presto``, ``loads``, ``duration``
    * ``sweep``    — ``config`` (required), ``sweep_field`` (required),
      ``values`` (required), ``file_mb``
    * ``trace``    — ``file_kb``
    * ``bench``    — ``net``, ``file_mb``, ``biods``, ``seed``,
      ``payload`` (default flyweight), ``progress``
    * ``chaos``    — ``seed``, ``plans``, ``write_paths``,
      ``presto_modes``, ``file_kb``, ``payload``, ``progress``
    * ``cluster``  — ``config`` (required, a
      :class:`~repro.cluster.fleet.ClusterConfig`), ``clients``,
      ``files_per_client``, ``file_kb``, ``crashes``, ``payload``;
      ``server_counts``/``client_counts`` switch to the scaling sweep
    * ``overload`` — ``config`` (an
      :class:`~repro.overload.experiment.OverloadConfig`; defaults to
      ``OverloadConfig(seed=spec.seed)``), ``progress``
    * ``replica``  — ``config`` (required, a ClusterConfig),
      ``replica_counts``, ``clients``, ``files_per_client``, ``file_kb``,
      ``storm_crashes``, ``payload``, ``progress``
    * ``cache``    — ``config`` (a
      :class:`~repro.lease.experiment.CacheConfig`; defaults to
      ``CacheConfig(seed=spec.seed)``), ``progress``
    * ``commit``   — ``config`` (a
      :class:`~repro.commit.experiment.CommitConfig`; defaults to
      ``CommitConfig(seed=spec.seed)``), ``progress``
    * ``scrub``    — ``config`` (a
      :class:`~repro.integrity.experiment.ScrubConfig`; defaults to
      ``ScrubConfig(seed=spec.seed)``), ``progress``
    * ``tiering``  — ``config`` (a
      :class:`~repro.tiering.experiment.TieringConfig`; defaults to
      ``TieringConfig(seed=spec.seed, skew=spec.skew)``), ``skew``,
      ``progress``
    """

    kind: str
    #: TestbedConfig for copy/sweep, ClusterConfig for cluster/replica,
    #: OverloadConfig for overload.
    config: Optional[object] = None
    file_mb: float = 10.0
    think_time: float = 0.0005
    table: Optional[int] = None
    write_path: Union[WritePath, str] = WritePath.STANDARD
    presto: bool = False
    loads: Sequence[float] = (150.0, 300.0, 450.0, 550.0, 650.0)
    duration: float = 3.0
    sweep_field: str = ""
    values: Sequence = field(default_factory=tuple)
    #: Workload size; None picks the kind's default (trace 256, chaos 192,
    #: cluster/replica 64).
    file_kb: Optional[int] = None
    #: Network fault knobs for kind="curve" (the other kinds carry them in
    #: ``config``): per-frame loss probability and segment RNG seed.
    loss_rate: float = 0.0
    net_seed: Optional[int] = None
    # -- fields for the bench/chaos/cluster/overload/replica kinds --------
    seed: int = 0
    net: str = "fddi"
    biods: int = 7
    #: Payload fidelity (:mod:`repro.payload`); None picks the kind's
    #: default ("flyweight" for bench, "full" everywhere else).
    payload: Optional[str] = None
    #: Optional per-result callback (CLI progress lines).
    progress: Optional[Callable] = None
    plans: int = 5
    write_paths: Optional[Sequence[str]] = None
    presto_modes: Sequence[bool] = (False, True)
    clients: int = 4
    files_per_client: int = 2
    #: ShardCrash list for a single-cell cluster run.
    crashes: Optional[Sequence] = None
    server_counts: Optional[Sequence[int]] = None
    client_counts: Optional[Sequence[int]] = None
    replica_counts: Sequence[int] = (0, 1, 2)
    storm_crashes: int = 3
    #: Per-tenant Zipf skew for kind="tiering" (ignored when a
    #: TieringConfig is passed explicitly).
    skew: float = 1.1

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; "
                f"expected one of {', '.join(EXPERIMENT_KINDS)}"
            )
        self.write_path = WritePath.coerce(self.write_path)
        if self.file_kb is None:
            self.file_kb = _FILE_KB_DEFAULTS.get(self.kind, 256)
        if self.payload is None:
            self.payload = _PAYLOAD_DEFAULTS.get(self.kind, PAYLOAD_FULL)
        self.payload = coerce_payload_mode(self.payload)


def _netspec(name: str):
    from repro.net import ETHERNET, FDDI

    networks = {"ethernet": ETHERNET, "fddi": FDDI}
    if name not in networks:
        raise ValueError(
            f"unknown network {name!r}; expected one of {', '.join(sorted(networks))}"
        )
    return networks[name]


def run(spec: ExperimentSpec):
    """Run the experiment ``spec`` describes; returns the driver's result.

    See the module docstring for the kind → driver → return-type table.
    Subsystem modules are imported lazily, so ``run(ExperimentSpec(
    kind="copy", ...))`` never pays for the cluster/overload stacks.
    """
    if spec.kind == "copy":
        if spec.config is None:
            raise ValueError("kind='copy' needs spec.config")
        return run_filecopy(spec.config, file_mb=spec.file_mb, think_time=spec.think_time)
    if spec.kind == "table":
        if spec.table is None:
            raise ValueError("kind='table' needs spec.table")
        return run_table(spec.table, file_mb=spec.file_mb)
    if spec.kind == "curve":
        return run_curve(
            str(spec.write_path),
            presto=spec.presto,
            loads=list(spec.loads),
            duration=spec.duration,
            loss_rate=spec.loss_rate,
            net_seed=spec.net_seed,
        )
    if spec.kind == "sweep":
        if spec.config is None or not spec.sweep_field or not spec.values:
            raise ValueError("kind='sweep' needs spec.config, sweep_field, values")
        return sweep(spec.config, spec.sweep_field, list(spec.values), file_mb=spec.file_mb)
    if spec.kind == "bench":
        from repro.experiments.bench import run_bench

        return run_bench(
            _netspec(spec.net),
            spec.net,
            file_mb=spec.file_mb,
            biods=spec.biods,
            seed=spec.seed,
            progress=spec.progress,
            payload=spec.payload,
        )
    if spec.kind == "chaos":
        from repro.faults.campaign import WRITE_PATHS, ChaosCampaign

        campaign = ChaosCampaign(
            seed=spec.seed,
            plans_per_combo=spec.plans,
            write_paths=spec.write_paths or WRITE_PATHS,
            presto_modes=spec.presto_modes,
            file_kb=spec.file_kb,
            progress=spec.progress,
            payload=spec.payload,
        )
        return campaign.execute()
    if spec.kind == "cluster":
        from repro.cluster.experiment import _run_cluster, _run_scaling_sweep

        if spec.config is None:
            raise ValueError("kind='cluster' needs spec.config (a ClusterConfig)")
        if spec.server_counts is not None or spec.client_counts is not None:
            return _run_scaling_sweep(
                spec.config,
                server_counts=spec.server_counts or [spec.config.servers],
                client_counts=spec.client_counts or [spec.clients],
                files_per_client=spec.files_per_client,
                file_kb=spec.file_kb,
                progress=spec.progress,
                payload=spec.payload,
            )
        return _run_cluster(
            spec.config,
            clients=spec.clients,
            files_per_client=spec.files_per_client,
            file_kb=spec.file_kb,
            crashes=spec.crashes,
            payload=spec.payload,
        )
    if spec.kind == "overload":
        from repro.overload.experiment import OverloadConfig, _run_overload

        config = spec.config if spec.config is not None else OverloadConfig(seed=spec.seed)
        return _run_overload(config, progress=spec.progress)
    if spec.kind == "cache":
        from repro.lease.experiment import CacheConfig, _run_cache

        config = spec.config if spec.config is not None else CacheConfig(seed=spec.seed)
        return _run_cache(config, progress=spec.progress)
    if spec.kind == "commit":
        from repro.commit.experiment import CommitConfig, _run_commit

        config = spec.config if spec.config is not None else CommitConfig(seed=spec.seed)
        return _run_commit(config, progress=spec.progress)
    if spec.kind == "scrub":
        from repro.integrity.experiment import ScrubConfig, run_scrub

        config = spec.config if spec.config is not None else ScrubConfig(seed=spec.seed)
        return run_scrub(config, progress=spec.progress)
    if spec.kind == "tiering":
        from repro.tiering.experiment import TieringConfig, run_tiering

        config = (
            spec.config
            if spec.config is not None
            else TieringConfig(seed=spec.seed, skew=spec.skew)
        )
        return run_tiering(config, progress=spec.progress)
    if spec.kind == "replica":
        from repro.replica.experiment import _run_replica

        if spec.config is None:
            raise ValueError("kind='replica' needs spec.config (a ClusterConfig)")
        return _run_replica(
            spec.config,
            replica_counts=spec.replica_counts,
            clients=spec.clients,
            files_per_client=spec.files_per_client,
            file_kb=spec.file_kb,
            storm_crashes=spec.storm_crashes,
            progress=spec.progress,
            payload=spec.payload,
        )
    return figure1(file_kb=spec.file_kb)
