"""One front door for the experiment drivers: ``run(ExperimentSpec)``.

The individual drivers (:func:`~repro.experiments.filecopy.run_filecopy`,
:func:`~repro.experiments.tables.run_table`,
:func:`~repro.experiments.laddis_curves.run_curve`,
:func:`~repro.experiments.sweep.sweep`,
:func:`~repro.experiments.trace.figure1`) remain importable, but callers —
the CLI above all — describe *what* to run with an :class:`ExperimentSpec`
and let :func:`run` dispatch::

    from repro.experiments import ExperimentSpec, run
    metrics = run(ExperimentSpec(kind="copy",
                                 config=TestbedConfig(write_path="gather")))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.experiments.filecopy import run_filecopy
from repro.experiments.laddis_curves import run_curve
from repro.experiments.sweep import sweep
from repro.experiments.tables import run_table
from repro.experiments.testbed import TestbedConfig
from repro.experiments.trace import figure1
from repro.server.config import WritePath

__all__ = ["ExperimentSpec", "run", "EXPERIMENT_KINDS"]

EXPERIMENT_KINDS = ("copy", "table", "curve", "sweep", "trace")


@dataclass
class ExperimentSpec:
    """A declarative description of one experiment run.

    ``kind`` selects the driver; the other fields parameterize it.  Fields
    irrelevant to the chosen kind are ignored:

    * ``copy``  — ``config`` (required), ``file_mb``, ``think_time``
    * ``table`` — ``table`` (required, 1-6), ``file_mb``
    * ``curve`` — ``write_path``, ``presto``, ``loads``, ``duration``
    * ``sweep`` — ``config`` (required), ``sweep_field`` (required),
      ``values`` (required), ``file_mb``
    * ``trace`` — ``file_kb``
    """

    kind: str
    config: Optional[TestbedConfig] = None
    file_mb: float = 10.0
    think_time: float = 0.0005
    table: Optional[int] = None
    write_path: Union[WritePath, str] = WritePath.STANDARD
    presto: bool = False
    loads: Sequence[float] = (150.0, 300.0, 450.0, 550.0, 650.0)
    duration: float = 3.0
    sweep_field: str = ""
    values: Sequence = field(default_factory=tuple)
    file_kb: int = 256
    #: Network fault knobs for kind="curve" (the other kinds carry them in
    #: ``config``): per-frame loss probability and segment RNG seed.
    loss_rate: float = 0.0
    net_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; "
                f"expected one of {', '.join(EXPERIMENT_KINDS)}"
            )
        self.write_path = WritePath.coerce(self.write_path)


def run(spec: ExperimentSpec):
    """Run the experiment ``spec`` describes; returns the driver's result.

    ``copy`` -> :class:`~repro.metrics.collect.FileCopyMetrics`;
    ``table`` -> :class:`~repro.experiments.tables.TableResult`;
    ``curve`` -> :class:`~repro.experiments.laddis_curves.LaddisCurve`;
    ``sweep`` -> list of FileCopyMetrics; ``trace`` -> the figure1 dict.
    """
    if spec.kind == "copy":
        if spec.config is None:
            raise ValueError("kind='copy' needs spec.config")
        return run_filecopy(spec.config, file_mb=spec.file_mb, think_time=spec.think_time)
    if spec.kind == "table":
        if spec.table is None:
            raise ValueError("kind='table' needs spec.table")
        return run_table(spec.table, file_mb=spec.file_mb)
    if spec.kind == "curve":
        return run_curve(
            str(spec.write_path),
            presto=spec.presto,
            loads=list(spec.loads),
            duration=spec.duration,
            loss_rate=spec.loss_rate,
            net_seed=spec.net_seed,
        )
    if spec.kind == "sweep":
        if spec.config is None or not spec.sweep_field or not spec.values:
            raise ValueError("kind='sweep' needs spec.config, sweep_field, values")
        return sweep(spec.config, spec.sweep_field, list(spec.values), file_mb=spec.file_mb)
    return figure1(file_kb=spec.file_kb)
