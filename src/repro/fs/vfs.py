"""The VFS (vnode) layer: what the NFS server layer actually calls.

The paper modified this layer (GFS in ULTRIX) so the server could pass
*hints* to the filesystem — ``IO_DATAONLY``, ``IO_DELAYDATA``, a
metadata-only fsync, and a byte-ranged ``VOP_SYNCDATA``.  A vnode also
carries the sleep lock the author added for nfsd serialization (§6.2):
an nfsd that finds the lock held knows another nfsd is mid-write on the
same file, which is precisely the signal write gathering keys on.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.fs.inode import FileType, Inode
from repro.fs.ufs import Ufs
from repro.sim import Environment, Resource

__all__ = [
    "IO_SYNC",
    "IO_DATAONLY",
    "IO_DELAYDATA",
    "FWRITE",
    "FWRITE_METADATA",
    "Vnode",
    "VnodeTable",
    "FileHandle",
]

# ioflags for VOP_WRITE (§6.4)
IO_SYNC = Ufs.IO_SYNC
IO_DATAONLY = Ufs.IO_DATAONLY
IO_DELAYDATA = Ufs.IO_DELAYDATA

# flags for VOP_FSYNC (§6.4)
FWRITE = 0x1
FWRITE_METADATA = 0x2

#: An NFS file handle: opaque to clients, (ino, generation) to the server.
FileHandle = Tuple[int, int]


class Vnode:
    """An in-core file reference with the added sleep lock."""

    def __init__(self, env: Environment, ufs: Ufs, inode: Inode) -> None:
        self.env = env
        self.ufs = ufs
        self.inode = inode
        #: The vnode sleep lock of §6.2.  Capacity 1; nfsds blocked here are
        #: visible to the gathering logic via ``lock.queue``.
        self.lock = Resource(env, capacity=1)

    @property
    def ino(self) -> int:
        return self.inode.ino

    @property
    def fhandle(self) -> FileHandle:
        return (self.inode.ino, self.inode.generation)

    @property
    def is_directory(self) -> bool:
        return self.inode.ftype == FileType.DIRECTORY

    def waiters(self) -> int:
        """How many nfsds are blocked on this vnode's sleep lock."""
        return len(self.lock.queue)

    def locked(self) -> bool:
        return self.lock.count > 0

    # -- VOPs (generators, driven inside a simulation process) ---------------

    def vop_write(self, offset: int, data: bytes, ioflags: int = IO_SYNC) -> Generator:
        return (yield from self.ufs.write(self.inode, offset, data, ioflags))

    def vop_read(self, offset: int, nbytes: int) -> Generator:
        return (yield from self.ufs.read(self.inode, offset, nbytes))

    def vop_fsync(self, flags: int = FWRITE) -> Generator:
        metadata_only = bool(flags & FWRITE_METADATA)
        return (yield from self.ufs.fsync(self.inode, metadata_only=metadata_only))

    def vop_syncdata(self, start: int = 0, end: Optional[int] = None) -> Generator:
        return (yield from self.ufs.sync_data(self.inode, start, end))

    def vop_getattr(self) -> Inode:
        return self.inode


class VnodeTable:
    """Maps file handles to vnodes, creating vnodes on first touch."""

    def __init__(self, env: Environment, ufs: Ufs) -> None:
        self.env = env
        self.ufs = ufs
        self._vnodes: Dict[int, Vnode] = {}
        self.root = self.vnode_for(ufs.root)

    def vnode_for(self, inode: Inode) -> Vnode:
        vnode = self._vnodes.get(inode.ino)
        if vnode is None or vnode.inode is not inode:
            vnode = Vnode(self.env, self.ufs, inode)
            self._vnodes[inode.ino] = vnode
        return vnode

    def by_fhandle(self, fhandle: FileHandle) -> Vnode:
        """Resolve a client file handle; raises FsError("ESTALE") when the
        file has been removed or its inode recycled."""
        ino, generation = fhandle
        inode = self.ufs.get_inode(ino, generation)
        return self.vnode_for(inode)

    def forget(self, ino: int) -> None:
        self._vnodes.pop(ino, None)
