"""UFS: a BSD-FFS-vintage filesystem with McVoy-Kleiman write clustering.

This is the "local filesystem" of §4.4.  It provides the operations the NFS
server layer drives through the VFS interface, with the paper's extensions:

* ``IO_SYNC`` (plain) — the reference-port standard write: data blocks are
  written synchronously; if the write grew the file or changed on-disk
  structure, the inode block (and, if touched, the indirect block) is also
  written synchronously before returning; a *modify-time-only* inode change
  is left for asynchronous update (the one promise the server may not keep).
* ``IO_SYNC | IO_DATAONLY`` — deliver data to (accelerated) storage now,
  delay all metadata copies.
* ``IO_DELAYDATA`` — leave the data delayed in the buffer cache so UFS can
  pick its own clustering policy; when a full cluster window of contiguous
  dirty buffers accumulates, an asynchronous clustered write is started.
* ``VOP_SYNCDATA(start, end)`` — flush the delayed data in a byte range as
  few large clustered transfers.
* ``VOP_FSYNC(FWRITE_METADATA)`` — flush only the inode and indirect blocks.

All operations are generators to be driven from within a simulation process
(``result = yield from ufs.write(...)``), and charge CPU through an optional
``cpu`` accountant so "UFS trips" and "driver trips" cost what the paper
says they cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.disk.device import Storage
from repro.fs.allocator import Allocator, NoSpace
from repro.fs.buffer_cache import BufferCache
from repro.fs.inode import NDIRECT, FileType, Inode
from repro.integrity.errors import CorruptBlockError
from repro.sim import AllOf, Environment, Event

__all__ = ["Ufs", "FsError", "CostModel", "WriteResult", "ROOT_INO"]

#: Traditional root inode number.
ROOT_INO = 2


class FsError(Exception):
    """Filesystem-level error carrying a UNIX-style code ("ENOSPC"...)."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code


@dataclass(frozen=True)
class CostModel:
    """CPU seconds charged for filesystem work (calibrated, see DESIGN.md)."""

    #: Entering a VOP (write/fsync/syncdata): locking, argument checking.
    ufs_trip: float = 0.00025
    #: Submitting one transaction to the disk driver and fielding its
    #: interrupt.  The paper: "It takes a lot of CPU cycles to run the disk
    #: driver and field device interrupts" — avoiding these trips is the
    #: CPU win write gathering banks on.
    driver_trip: float = 0.00050
    #: Handing one request to the Prestoserve driver (no seek setup, no
    #: device interrupt; the board drives the disk itself).
    nvram_trip: float = 0.00020
    #: Copying one byte between mbufs / cache / NVRAM.
    copy_per_byte: float = 25e-9
    #: A namei-style directory lookup.
    namei: float = 0.00015


@dataclass
class WriteResult:
    """What a VOP_WRITE did, for the server layer's accounting."""

    #: Bytes written.
    count: int
    #: Device transactions issued synchronously by this call.
    sync_transactions: int
    #: True if metadata beyond mtime is (still) dirty after this call.
    metadata_dirty: bool
    #: True if only the modify time changed (reference-port async case).
    mtime_only: bool


class Ufs:
    """The filesystem instance (one per served/exported volume)."""

    def __init__(
        self,
        env: Environment,
        storage: Storage,
        fs_bytes: int = 900 * 1024 * 1024,
        block_size: int = 8192,
        cluster_size: int = 65536,
        cpu=None,
        costs: Optional[CostModel] = None,
        cache_blocks: int = 4096,
        ino_base: Optional[int] = None,
    ) -> None:
        self.env = env
        self.storage = storage
        self.block_size = block_size
        self.cluster_size = cluster_size
        self.cpu = cpu
        self.costs = costs or CostModel()
        self.allocator = Allocator(fs_bytes, block_size)
        self.cache = BufferCache(env, storage, block_size, cluster_size, cache_blocks)
        self.inodes: Dict[int, Inode] = {}
        self._next_ino = ROOT_INO
        self._in_flight_data: Dict[int, List[Event]] = {}
        #: Write observer (repro.tiering): called as ``(ino, offset, length)``
        #: the instant any data lands in the cache — the single funnel every
        #: write path shares, which is what makes migration delta tracking
        #: exact.  None (the default) costs nothing.
        self.on_write = None
        root = self._new_inode(FileType.DIRECTORY)
        assert root.ino == ROOT_INO
        self.root = root
        # A cluster gives each shard a disjoint inode range so file handles
        # (ino, generation) are unambiguous fleet-wide; the root keeps the
        # traditional number on every shard so the well-known root handle
        # works against any server.
        if ino_base is not None:
            if ino_base <= ROOT_INO:
                raise ValueError(f"ino_base must be > {ROOT_INO}, got {ino_base}")
            self._next_ino = ino_base

    # -- small helpers --------------------------------------------------------

    @property
    def is_accelerated(self) -> bool:
        """Whether the backing storage is NVRAM-accelerated (Presto on)."""
        return bool(getattr(self.storage, "is_accelerated", False))

    def _charge(self, seconds: float) -> Generator:
        """Charge CPU time if an accountant is attached."""
        if self.cpu is not None and seconds > 0:
            yield from self.cpu.consume(seconds)


    def _device_trip_cost(self) -> float:
        """CPU cost of handing one transaction to the storage driver."""
        if self.is_accelerated:
            return self.costs.nvram_trip
        return self.costs.driver_trip

    def _new_inode(self, ftype: str, ino: Optional[int] = None) -> Inode:
        # An explicit ``ino`` replays another UFS's allocation (replica
        # backups must agree with the primary byte-for-byte on handles);
        # the local counter jumps past it so later local allocations can
        # never collide.
        if ino is None:
            ino = self._next_ino
            self._next_ino += 1
        else:
            self._next_ino = max(self._next_ino, ino + 1)
        inode = Inode(
            ino=ino,
            ftype=ftype,
            inode_block_addr=self.allocator.inode_block_addr(ino),
            mtime=self.env.now,
            atime=self.env.now,
            ctime=self.env.now,
        )
        self.inodes[ino] = inode
        return inode

    def get_inode(self, ino: int, generation: Optional[int] = None) -> Inode:
        """Resolve an inode; raises ESTALE for removed/recycled files."""
        inode = self.inodes.get(ino)
        if inode is None:
            raise FsError("ESTALE", f"inode {ino} does not exist")
        if generation is not None and inode.generation != generation:
            raise FsError("ESTALE", f"inode {ino} generation mismatch")
        return inode

    def _mark_meta_dirty(self, inode: Inode, indirect: bool = False) -> None:
        inode.meta_version += 1
        inode.inode_dirty = True
        inode.only_mtime_dirty = False
        if indirect:
            inode.indirect_dirty = True

    def _file_extent_addrs(self, inode: Inode, start: int, end: int) -> List[int]:
        """Disk addresses of the file blocks overlapping byte range [start, end)."""
        if end <= start:
            return []
        first = start // self.block_size
        last = (end - 1) // self.block_size
        addrs = []
        for fblock in range(first, last + 1):
            addr = inode.block_addr(fblock)
            if addr is not None:
                addrs.append(addr)
        return addrs

    # -- data path -------------------------------------------------------------

    #: ioflags bits (mirroring the paper's VFS hints)
    IO_SYNC = 0x1
    IO_DATAONLY = 0x2
    IO_DELAYDATA = 0x4

    def write(
        self, inode: Inode, offset: int, data: bytes, ioflags: int = IO_SYNC
    ) -> Generator:
        """VOP_WRITE.  Yields until the flag-mandated work is stable.

        Returns a :class:`WriteResult`.  Raises FsError("ENOSPC") when the
        volume is full — the error NFS clients learn about at close(2) time.
        """
        if inode.ftype != FileType.FILE:
            raise FsError("EISDIR", f"write to non-file inode {inode.ino}")
        if offset < 0 or not data:
            raise FsError("EINVAL", f"bad write range ({offset}, {len(data)})")
        yield from self._charge(
            self.costs.ufs_trip + self.costs.copy_per_byte * len(data)
        )

        # Flyweight payloads (repro.payload.Extent) carry length but no
        # bytes: charge the same CPU, allocate and dirty the same blocks,
        # issue the same transactions — skip only the buffer byte copies.
        flyweight = not isinstance(data, (bytes, bytearray, memoryview))
        touched: List[int] = []
        grew_structure = False
        pos = offset
        end = offset + len(data)
        remaining = None if flyweight else memoryview(bytes(data))
        while pos < end:
            fblock = pos // self.block_size
            within = pos - fblock * self.block_size
            take = min(end - pos, self.block_size - within)
            addr = inode.block_addr(fblock)
            if addr is None:
                addr = self._allocate_block(inode, fblock)
                grew_structure = True
            buffer = self._get_buffer_checked(addr)
            if not flyweight:
                buffer.data[within : within + take] = remaining[:take]
                remaining = remaining[take:]
                buffer.lite = False
            self.cache.mark_dirty(buffer)
            touched.append(addr)
            pos += take

        if self.on_write is not None:
            self.on_write(inode.ino, offset, len(data))
        if offset + len(data) > inode.size:
            inode.size = offset + len(data)
            grew_structure = True
        inode.mtime = self.env.now
        if grew_structure:
            self._mark_meta_dirty(inode)
        elif not inode.inode_dirty:
            inode.only_mtime_dirty = True

        sync_transactions = 0
        if ioflags & self.IO_DELAYDATA:
            # Delayed data: let clustering accumulate; kick an async write
            # of any cluster window this write just completed.
            self._maybe_start_cluster_write(inode, touched)
        elif ioflags & self.IO_SYNC and ioflags & self.IO_DATAONLY:
            sync_transactions += yield from self._flush_data_addrs(inode, touched)
        elif ioflags & self.IO_SYNC:
            # Reference-port standard synchronous write (§4.4).
            sync_transactions += yield from self._flush_data_addrs(inode, touched)
            if inode.indirect_dirty:
                sync_transactions += yield from self._write_indirect_sync(inode)
            if inode.inode_dirty:
                sync_transactions += yield from self._write_inode_sync(inode)
            # else: mtime-only change stays for asynchronous update.
        return WriteResult(
            count=len(data),
            sync_transactions=sync_transactions,
            metadata_dirty=inode.inode_dirty or inode.indirect_dirty,
            mtime_only=inode.only_mtime_dirty
            and not (inode.inode_dirty or inode.indirect_dirty),
        )

    def _get_buffer_checked(self, addr: int):
        """Fault in a buffer, converting integrity failures to EIO.

        A corrupt durable block is quarantined at detection time (the
        scrub layer repairs or reports it) and the caller sees a plain
        I/O error — never the rotted bytes.
        """
        try:
            return self.cache.get(addr)
        except CorruptBlockError as exc:
            self.cache.durable.quarantine(addr, exc.reason)
            raise FsError("EIO", str(exc)) from exc

    def _allocate_block(self, inode: Inode, fblock: int) -> int:
        try:
            addr = self.allocator.allocate_near(inode.ino)
        except NoSpace as exc:
            raise FsError("ENOSPC", str(exc)) from exc
        touched_indirect = inode.set_block_addr(fblock, addr)
        if fblock >= NDIRECT and inode.indirect_addr is None:
            try:
                inode.indirect_addr = self.allocator.allocate_near(inode.ino)
            except NoSpace as exc:
                raise FsError("ENOSPC", str(exc)) from exc
        if touched_indirect:
            self._mark_meta_dirty(inode, indirect=True)
        return addr

    def _register_flush_events(self, ino: int, events: List[Event]) -> None:
        """Track in-flight data flushes so any syncer can wait them out."""
        pending = self._in_flight_data.setdefault(ino, [])
        pending.extend(events)
        for event in events:
            event.callbacks.append(
                lambda _ev, ino=ino, ev=event: self._forget_in_flight(ino, ev)
            )

    def _flush_data_addrs(self, inode: Inode, addrs: List[int]) -> Generator:
        """Synchronously flush the dirty buffers at ``addrs``; returns the
        number of device transactions issued."""
        runs = self.cache.plan_runs(addrs)
        if not runs:
            return 0
        yield from self._charge(self._device_trip_cost() * len(runs))
        events = self.cache.flush_runs_async(runs, kind="data")
        self._register_flush_events(inode.ino, events)
        if events:
            yield AllOf(self.env, events)
        return len(runs)

    def _maybe_start_cluster_write(self, inode: Inode, touched: List[int]) -> None:
        """Start an async clustered write for each completed cluster window."""
        for addr in touched:
            window_start = (addr // self.cluster_size) * self.cluster_size
            window_addrs = list(range(window_start, window_start + self.cluster_size, self.block_size))
            if all(
                self.cache.is_cached(a) and self.cache.lookup(a).dirty
                for a in window_addrs
            ):
                runs = self.cache.plan_runs(window_addrs)
                events = self.cache.flush_runs_async(runs, kind="data")
                self._register_flush_events(inode.ino, events)

    def _forget_in_flight(self, ino: int, event: Event) -> None:
        pending = self._in_flight_data.get(ino)
        if pending and event in pending:
            pending.remove(event)

    def sync_data(self, inode: Inode, start: int = 0, end: Optional[int] = None) -> Generator:
        """VOP_SYNCDATA: flush delayed data in [start, end) as clustered
        transfers, and wait out any overlapping async cluster writes.

        Returns the number of device transactions issued by this call."""
        yield from self._charge(self.costs.ufs_trip)
        if end is None:
            end = inode.size
        addrs = self._file_extent_addrs(inode, start, end)
        runs = self.cache.plan_runs(addrs)
        transactions = len(runs)
        if runs:
            yield from self._charge(self._device_trip_cost() * transactions)
            yield from self.cache.flush_runs(runs, kind="data")
        pending = list(self._in_flight_data.get(inode.ino, ()))
        if pending:
            yield AllOf(self.env, pending)
        return transactions

    def fsync(self, inode: Inode, metadata_only: bool = False) -> Generator:
        """VOP_FSYNC.  With ``metadata_only`` (FWRITE|FWRITE_METADATA in the
        paper), flushes just the indirect and inode blocks.

        Returns the number of device transactions issued."""
        yield from self._charge(self.costs.ufs_trip)
        transactions = 0
        if not metadata_only:
            addrs = self._file_extent_addrs(inode, 0, max(inode.size, 1))
            runs = self.cache.plan_runs(addrs)
            if runs:
                yield from self._charge(self._device_trip_cost() * len(runs))
                yield from self.cache.flush_runs(runs, kind="data")
                transactions += len(runs)
            pending = list(self._in_flight_data.get(inode.ino, ()))
            if pending:
                yield AllOf(self.env, pending)
        if inode.indirect_dirty:
            transactions += yield from self._write_indirect_sync(inode)
        if inode.inode_dirty or inode.only_mtime_dirty:
            transactions += yield from self._write_inode_sync(inode)
        return transactions

    def _write_inode_sync(self, inode: Inode) -> Generator:
        yield from self._charge(self._device_trip_cost())
        snapshot = inode.snapshot()
        version = inode.meta_version
        done = self.storage.submit(
            inode.inode_block_addr, self.block_size, is_write=True, kind="inode"
        )
        ino = inode.ino

        def commit(_event: Event) -> None:
            self.cache.durable.commit_inode(ino, snapshot)

        done.callbacks.append(commit)
        yield done
        if inode.meta_version == version:
            inode.inode_dirty = False
            inode.only_mtime_dirty = False
        return 1

    def _write_indirect_sync(self, inode: Inode) -> Generator:
        if inode.indirect_addr is None:
            return 0
        yield from self._charge(self._device_trip_cost())
        mapping = dict(inode.indirect)
        version = inode.meta_version
        done = self.storage.submit(
            inode.indirect_addr, self.block_size, is_write=True, kind="indirect"
        )
        ino = inode.ino

        def commit(_event: Event) -> None:
            self.cache.durable.commit_indirect(ino, mapping)

        done.callbacks.append(commit)
        yield done
        if inode.meta_version == version:
            inode.indirect_dirty = False
        return 1

    def read(self, inode: Inode, offset: int, nbytes: int) -> Generator:
        """VOP_READ.  Returns bytes (zero-filled over holes, truncated at EOF)."""
        if inode.ftype != FileType.FILE:
            raise FsError("EISDIR", f"read of non-file inode {inode.ino}")
        if offset < 0 or nbytes < 0:
            raise FsError("EINVAL", f"bad read range ({offset}, {nbytes})")
        end = min(offset + nbytes, inode.size)
        if end <= offset:
            yield from self._charge(self.costs.ufs_trip)
            return b""
        yield from self._charge(
            self.costs.ufs_trip + self.costs.copy_per_byte * (end - offset)
        )
        out = bytearray()
        pos = offset
        while pos < end:
            fblock = pos // self.block_size
            within = pos - fblock * self.block_size
            take = min(end - pos, self.block_size - within)
            addr = inode.block_addr(fblock)
            if addr is None:
                out.extend(b"\x00" * take)
            else:
                buffer = self.cache.lookup(addr)
                if buffer is None:
                    yield from self._charge(self._device_trip_cost())
                    yield self.storage.submit(addr, self.block_size, is_write=False, kind="data")
                    if self.storage.latent_overlap(addr, self.block_size):
                        # The medium failed the read: surface EIO, leave a
                        # quarantine record for the scrubber to repair.
                        self.cache.durable.quarantine(addr, "latent")
                        raise FsError("EIO", f"latent sector error at addr={addr}")
                    buffer = self._get_buffer_checked(addr)
                out.extend(buffer.data[within : within + take])
            pos += take
        inode.atime = self.env.now
        return bytes(out)

    # -- namespace -------------------------------------------------------------

    def lookup(self, directory: Inode, name: str) -> Generator:
        """Directory lookup (namei cache: CPU cost only)."""
        if directory.ftype != FileType.DIRECTORY:
            raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        yield from self._charge(self.costs.namei)
        ino = directory.entries.get(name)
        if ino is None:
            raise FsError("ENOENT", name)
        return self.inodes[ino]

    def create(
        self,
        directory: Inode,
        name: str,
        ftype: str = FileType.FILE,
        ino: Optional[int] = None,
    ) -> Generator:
        """Create a file/directory: two synchronous metadata transactions
        (directory data block + new inode block), per FFS semantics.
        ``ino`` pins the inode number (replica backups replaying a
        primary's allocation)."""
        if directory.ftype != FileType.DIRECTORY:
            raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        if name in directory.entries:
            raise FsError("EEXIST", name)
        yield from self._charge(self.costs.ufs_trip + self.costs.namei)
        inode = self._new_inode(ftype, ino=ino)
        directory.entries[name] = inode.ino
        directory.mtime = self.env.now
        self._mark_meta_dirty(directory)
        self._mark_meta_dirty(inode)
        yield from self._write_inode_sync(inode)
        yield from self._write_inode_sync(directory)
        return inode

    def adopt_inode(
        self, directory: Inode, name: str, ino: int, generation: int
    ) -> Generator:
        """Create ``name`` under a *foreign* inode number (live migration).

        Same cost and durability as :meth:`create`, with two differences:
        the inode's generation is pinned (client-held file handles must
        survive the move verbatim), and the allocation counter is left
        untouched — the adopted ino comes from another shard's range, and
        letting ``_new_inode``'s replay bump stand would march this
        shard's future allocations into that foreign range (fleet-wide
        handle collisions, including on a later-promoted backup).
        """
        if directory.ftype != FileType.DIRECTORY:
            raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        if name in directory.entries:
            raise FsError("EEXIST", name)
        if ino in self.inodes:
            raise FsError("EEXIST", f"inode {ino} already exists")
        yield from self._charge(self.costs.ufs_trip + self.costs.namei)
        saved_next = self._next_ino
        inode = self._new_inode(FileType.FILE, ino=ino)
        self._next_ino = saved_next
        inode.generation = generation
        directory.entries[name] = inode.ino
        directory.mtime = self.env.now
        self._mark_meta_dirty(directory)
        self._mark_meta_dirty(inode)
        yield from self._write_inode_sync(inode)
        yield from self._write_inode_sync(directory)
        return inode

    def remove(self, directory: Inode, name: str) -> Generator:
        """Remove a name: frees the file's blocks, bumps its generation so
        outstanding file handles go stale, and syncs the directory."""
        if directory.ftype != FileType.DIRECTORY:
            raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        ino = directory.entries.get(name)
        if ino is None:
            raise FsError("ENOENT", name)
        yield from self._charge(self.costs.ufs_trip + self.costs.namei)
        inode = self.inodes[ino]
        del directory.entries[name]
        directory.mtime = self.env.now
        self._mark_meta_dirty(directory)
        inode.nlink -= 1
        if inode.nlink <= 0:
            for fblock in inode.mapped_blocks():
                addr = inode.block_addr(fblock)
                if addr is not None:
                    self.allocator.free(addr)
            if inode.indirect_addr is not None:
                self.allocator.free(inode.indirect_addr)
            inode.generation += 1
            del self.inodes[ino]
        yield from self._write_inode_sync(directory)

    def readdir(self, directory: Inode) -> Generator:
        if directory.ftype != FileType.DIRECTORY:
            raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        yield from self._charge(self.costs.namei)
        return sorted(directory.entries)

    def symlink(
        self,
        directory: Inode,
        name: str,
        target: str,
        ino: Optional[int] = None,
    ) -> Generator:
        """Create a symbolic link (its target string lives in the inode)."""
        inode = yield from self.create(directory, name, FileType.SYMLINK, ino=ino)
        inode.symlink_target = target
        return inode

    def readlink(self, inode: Inode) -> Generator:
        if inode.ftype != FileType.SYMLINK:
            raise FsError("EINVAL", f"inode {inode.ino} is not a symlink")
        yield from self._charge(self.costs.namei)
        return inode.symlink_target

    def rename(self, src_dir: Inode, src_name: str, dst_dir: Inode, dst_name: str) -> Generator:
        """Atomically move a directory entry (NFSv2 RENAME semantics: an
        existing destination entry is replaced)."""
        for directory in (src_dir, dst_dir):
            if directory.ftype != FileType.DIRECTORY:
                raise FsError("ENOTDIR", f"inode {directory.ino} is not a directory")
        ino = src_dir.entries.get(src_name)
        if ino is None:
            raise FsError("ENOENT", src_name)
        yield from self._charge(self.costs.ufs_trip + 2 * self.costs.namei)
        if dst_name in dst_dir.entries and dst_dir.entries[dst_name] != ino:
            yield from self.remove(dst_dir, dst_name)
        del src_dir.entries[src_name]
        dst_dir.entries[dst_name] = ino
        now = self.env.now
        src_dir.mtime = now
        dst_dir.mtime = now
        self._mark_meta_dirty(src_dir)
        yield from self._write_inode_sync(src_dir)
        if dst_dir is not src_dir:
            self._mark_meta_dirty(dst_dir)
            yield from self._write_inode_sync(dst_dir)

    # -- maintenance -------------------------------------------------------------

    def sync_all(self) -> Generator:
        """Flush everything dirty (the update(8) daemon's job)."""
        runs = self.cache.plan_runs(self.cache.dirty_addrs())
        if runs:
            yield from self._charge(self._device_trip_cost() * len(runs))
            yield from self.cache.flush_runs(runs, kind="data")
        for inode in list(self.inodes.values()):
            if inode.indirect_dirty:
                yield from self._write_indirect_sync(inode)
            if inode.inode_dirty or inode.only_mtime_dirty:
                yield from self._write_inode_sync(inode)

    def reset_volatile(self) -> None:
        """Lose all in-core filesystem state at a simulated crash.

        The buffer cache empties, in-flight flush tracking is dropped, and
        every in-core inode reverts to its last committed snapshot — an
        inode that never reached stable storage keeps its in-core identity
        (so its file handle resolves) but all its dirty flags clear: the
        new incarnation makes no promises the old one didn't keep.
        """
        self.cache.reset_volatile()
        self._in_flight_data.clear()
        durable = self.cache.durable
        for inode in self.inodes.values():
            snapshot = durable.inodes.get(inode.ino)
            if snapshot is not None:
                inode.size = snapshot.size
                inode.mtime = snapshot.mtime
                inode.direct = list(snapshot.direct)
                inode.indirect_addr = snapshot.indirect_addr
            durable_indirect = durable.indirects.get(inode.ino)
            if durable_indirect is not None:
                inode.indirect = dict(durable_indirect)
            elif snapshot is not None and snapshot.indirect_addr is None:
                inode.indirect = {}
            inode.inode_dirty = False
            inode.indirect_dirty = False
            inode.only_mtime_dirty = False

    # -- crash-consistency inspection (used by tests and invariant checks) -------

    def durable_read(self, ino: int, offset: int, nbytes: int) -> Optional[bytes]:
        """What a post-crash recovery would read from [offset, offset+nbytes).

        Returns None if any needed metadata or data has not been committed
        to stable storage; zero-fills holes inside the committed size.
        """
        snapshot = self.cache.durable.inodes.get(ino)
        if snapshot is None:
            return None
        end = offset + nbytes
        if end > snapshot.size:
            return None
        out = bytearray()
        pos = offset
        while pos < end:
            fblock = pos // self.block_size
            within = pos - fblock * self.block_size
            take = min(end - pos, self.block_size - within)
            if fblock < NDIRECT:
                addr = snapshot.direct[fblock]
            else:
                indirect = self.cache.durable.indirects.get(ino)
                if indirect is None:
                    return None
                addr = indirect.get(fblock)
            if addr is None:
                out.extend(b"\x00" * take)
            else:
                block = self.cache.durable.blocks.get(addr)
                if block is None:
                    return None
                out.extend(block[within : within + take])
            pos += take
        return bytes(out)

    def durable_covered(self, ino: int, offset: int, nbytes: int) -> bool:
        """Would :meth:`durable_read` succeed for [offset, offset+nbytes)?

        The reachability half of the crash contract without the byte
        assembly: committed metadata maps the whole range and every mapped
        block is on stable storage.  Flyweight payloads (which carry no
        content promise) are checked with this instead of a byte compare.
        """
        snapshot = self.cache.durable.inodes.get(ino)
        if snapshot is None:
            return False
        end = offset + nbytes
        if end > snapshot.size:
            return False
        durable = self.cache.durable
        first = offset // self.block_size
        last = (end - 1) // self.block_size if end > offset else first - 1
        for fblock in range(first, last + 1):
            if fblock < NDIRECT:
                addr = snapshot.direct[fblock]
            else:
                indirect = durable.indirects.get(ino)
                if indirect is None:
                    return False
                addr = indirect.get(fblock)
            # A hole (addr None) reads back as zeros: still covered.
            if addr is not None and addr not in durable.blocks:
                return False
        return True
