"""fsck: consistency checking of the durable (on-stable-storage) image.

After a crash, a 1994 server ran fsck before re-exporting; the checks here
are the moral equivalent for the simulated filesystem, and double as a
strong test oracle: any write-path bug that commits metadata pointing at
garbage — exactly the class of bug write gathering could introduce if it
reordered a metadata flush ahead of its data — shows up as an error.

Two modes:

* ``strict=True`` (after a clean sync): every committed inode must be fully
  backed — all mapped blocks inside the committed size have durable
  content.
* ``strict=False`` (after a crash): unbacked tails are reported as
  warnings, not errors — a crash may legitimately lose data whose metadata
  was never committed, but must never produce *structural* damage
  (out-of-bounds pointers, doubly-claimed blocks, pointers into the inode
  table area).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fs.inode import NDIRECT
from repro.fs.ufs import Ufs
from repro.integrity.checksum import block_digest

__all__ = ["FsckReport", "fsck"]


@dataclass
class FsckReport:
    """Outcome of a durable-image check."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    files_checked: int = 0
    blocks_referenced: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERRORS"
        return (
            f"fsck: {status}, {self.files_checked} inodes, "
            f"{self.blocks_referenced} blocks, {len(self.warnings)} warnings"
        )


def _inode_table_ranges(ufs: Ufs) -> List[tuple]:
    """Byte ranges of every cylinder group's inode table."""
    ranges = []
    for group in ufs.allocator.groups:
        ranges.append((group.inode_table_start, group.data_start))
    return ranges


def _in_inode_table(addr: int, table_ranges: List[tuple]) -> bool:
    return any(start <= addr < end for start, end in table_ranges)


def fsck(ufs: Ufs, strict: bool = True) -> FsckReport:
    """Check the durable image for structural consistency."""
    report = FsckReport()
    durable = ufs.cache.durable
    block_size = ufs.block_size
    capacity = ufs.allocator.groups[-1].data_end
    table_ranges = _inode_table_ranges(ufs)
    claimed: Dict[int, tuple] = {}

    for ino, snapshot in sorted(durable.inodes.items()):
        report.files_checked += 1
        pointers: List[tuple] = [
            (fblock, addr)
            for fblock, addr in enumerate(snapshot.direct)
            if addr is not None
        ]
        committed_indirect = durable.indirects.get(ino)
        if committed_indirect:
            if snapshot.indirect_addr is None:
                report.errors.append(
                    f"ino {ino}: committed indirect entries but no indirect block address"
                )
            pointers.extend(sorted(committed_indirect.items()))

        for fblock, addr in pointers:
            report.blocks_referenced += 1
            if addr % block_size != 0:
                report.errors.append(
                    f"ino {ino} block {fblock}: unaligned pointer {addr:#x}"
                )
                continue
            if not 0 <= addr < capacity:
                report.errors.append(
                    f"ino {ino} block {fblock}: pointer {addr:#x} out of bounds"
                )
                continue
            if _in_inode_table(addr, table_ranges):
                report.errors.append(
                    f"ino {ino} block {fblock}: pointer {addr:#x} inside an inode table"
                )
                continue
            previous_owner = claimed.get(addr)
            if previous_owner is not None:
                owner_ino, owner_fblock = previous_owner
                report.errors.append(
                    f"block {addr:#x} claimed by both ino {owner_ino} "
                    f"(block {owner_fblock}) and ino {ino} (block {fblock})"
                )
            claimed[addr] = (ino, fblock)
            # Backing check: mapped blocks inside the committed size need
            # durable content.
            if fblock * block_size < snapshot.size and addr not in durable.blocks:
                message = (
                    f"ino {ino} block {fblock}: mapped inside committed size "
                    f"({snapshot.size}) but no durable content at {addr:#x}"
                )
                if strict:
                    report.errors.append(message)
                else:
                    report.warnings.append(message)
                continue
            # Integrity check: content present under a digest must match
            # it.  A quarantined block is already *detected* damage
            # awaiting repair — warn, don't error; a silent mismatch on an
            # unquarantined block is an error in both modes (no crash
            # legitimately mutates committed bytes).
            content = durable.blocks.get(addr)
            digest = durable.checksums.get(addr)
            if content is None or digest is None:
                continue
            if addr in durable.quarantined:
                report.warnings.append(
                    f"ino {ino} block {fblock}: block {addr:#x} quarantined "
                    f"({durable.quarantined[addr]}), awaiting repair"
                )
            elif block_digest(content) != digest:
                report.errors.append(
                    f"ino {ino} block {fblock}: checksum mismatch at {addr:#x} "
                    f"(silent corruption)"
                )

        if snapshot.indirect_addr is not None:
            if snapshot.indirect_addr % block_size != 0 or not (
                0 <= snapshot.indirect_addr < capacity
            ):
                report.errors.append(
                    f"ino {ino}: bad indirect block address {snapshot.indirect_addr:#x}"
                )
        if snapshot.size < 0:
            report.errors.append(f"ino {ino}: negative committed size")
        # A committed size reaching into the indirect range is unreadable
        # after a crash unless the indirect block was also committed.
        if snapshot.size > NDIRECT * block_size and committed_indirect is None:
            message = (
                f"ino {ino}: committed size {snapshot.size} spans the indirect "
                f"range but the indirect block was never committed"
            )
            if strict:
                report.errors.append(message)
            else:
                report.warnings.append(message)
    return report
