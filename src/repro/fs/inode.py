"""Inodes and block maps, BSD-FFS vintage (McKusick et al. [MCKU84]).

An inode holds ``NDIRECT`` direct block pointers plus one single-indirect
block.  This matches the paper's cost analysis: writing block ``i`` of a
growing file dirties the data block, the inode block (size change), and —
once past the direct blocks — the indirect block, i.e. "roughly 3N" disk
operations for an N-block file (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Inode", "FileType", "NDIRECT", "InodeSnapshot"]

#: Direct block pointers per inode (4.3BSD used 12).
NDIRECT = 12


class FileType:
    """Inode type tags."""

    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


@dataclass
class InodeSnapshot:
    """Immutable copy of inode metadata as last committed to stable storage."""

    size: int
    mtime: float
    direct: tuple
    indirect_addr: Optional[int]
    generation: int


@dataclass
class Inode:
    """An in-core inode."""

    ino: int
    ftype: str = FileType.FILE
    size: int = 0
    mtime: float = 0.0
    atime: float = 0.0
    ctime: float = 0.0
    #: Disk block address holding this inode (metadata writes target it).
    inode_block_addr: int = 0
    #: Direct block pointers: file block index -> disk block address.
    direct: List[Optional[int]] = field(default_factory=lambda: [None] * NDIRECT)
    #: Disk address of the single indirect block, if allocated.
    indirect_addr: Optional[int] = None
    #: Indirect entries: file block index (>= NDIRECT) -> disk block address.
    indirect: Dict[int, int] = field(default_factory=dict)
    #: Bumped on delete/recreate so stale file handles are detectable.
    generation: int = 0
    #: Directory entries (name -> ino) when ftype == DIRECTORY.
    entries: Dict[str, int] = field(default_factory=dict)
    #: Link target when ftype == SYMLINK.
    symlink_target: str = ""
    #: Link count; zero means removable.
    nlink: int = 1

    # Dirty state, consulted by fsync:
    inode_dirty: bool = False
    indirect_dirty: bool = False
    #: True when only mtime changed (the reference port's async special case).
    only_mtime_dirty: bool = False
    #: Bumped on every metadata mutation; in-flight flushes only clear dirty
    #: flags if the version is unchanged when they complete.
    meta_version: int = 0

    def block_addr(self, file_block: int) -> Optional[int]:
        """Disk address of file block ``file_block``, or None if a hole."""
        if file_block < 0:
            raise ValueError(f"negative file block index: {file_block}")
        if file_block < NDIRECT:
            return self.direct[file_block]
        return self.indirect.get(file_block)

    def set_block_addr(self, file_block: int, addr: int) -> bool:
        """Install a block pointer.  Returns True if the indirect block was
        touched (and therefore must be flushed before replying)."""
        if file_block < 0:
            raise ValueError(f"negative file block index: {file_block}")
        if file_block < NDIRECT:
            self.direct[file_block] = addr
            return False
        self.indirect[file_block] = addr
        return True

    def mapped_blocks(self) -> List[int]:
        """All file block indices that have a disk address."""
        blocks = [i for i, addr in enumerate(self.direct) if addr is not None]
        blocks.extend(sorted(self.indirect))
        return blocks

    def snapshot(self) -> InodeSnapshot:
        """Copy the metadata that an inode-block write would commit."""
        return InodeSnapshot(
            size=self.size,
            mtime=self.mtime,
            direct=tuple(self.direct),
            indirect_addr=self.indirect_addr,
            generation=self.generation,
        )
