"""Block and inode allocation with FFS-style cylinder-group locality.

The disk's byte space is divided into *cylinder groups*.  Each group holds a
small inode table at its front followed by data blocks.  A file's inode lives
in some group and its data is allocated from the same group (spilling into
following groups when full), so the inode<->data seek distance is tens of
megabytes, not a full stroke — this locality is what the calibrated disk
model expects, and is faithful to [MCKU84].

Sequential allocations within a group return *contiguous* disk addresses,
which is what lets UFS clustering ([MCVO91]) turn eight dirty 8K buffers
into one 64K transfer.
"""

from __future__ import annotations

from typing import List, Set

__all__ = ["Allocator", "CylinderGroup", "NoSpace"]


class NoSpace(Exception):
    """The filesystem is out of blocks (the server returns ENOSPC)."""


class CylinderGroup:
    """One allocation region: an inode table plus a data area."""

    def __init__(self, base: int, size: int, inode_table_blocks: int, block_size: int) -> None:
        self.base = base
        self.size = size
        self.block_size = block_size
        self.inode_table_start = base
        self.inode_table_blocks = inode_table_blocks
        self.data_start = base + inode_table_blocks * block_size
        self.data_end = base + size
        self._next = self.data_start
        self._free: List[int] = []

    def allocate(self) -> int:
        """Allocate one data block; contiguous while the group is fresh."""
        if self._free:
            return self._free.pop()
        if self._next + self.block_size <= self.data_end:
            addr = self._next
            self._next += self.block_size
            return addr
        raise NoSpace(f"cylinder group at {self.base:#x} is full")

    def free(self, addr: int) -> None:
        if not self.data_start <= addr < self.data_end:
            raise ValueError(f"block {addr:#x} not in this group's data area")
        self._free.append(addr)

    def inode_block(self, slot: int) -> int:
        """Disk address of inode-table block ``slot`` within this group."""
        if not 0 <= slot < self.inode_table_blocks:
            raise ValueError(f"inode slot {slot} out of range")
        return self.inode_table_start + slot * self.block_size

    @property
    def has_space(self) -> bool:
        return bool(self._free) or self._next + self.block_size <= self.data_end


class Allocator:
    """Disk-wide allocator over cylinder groups."""

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 8192,
        group_size: int = 32 * 1024 * 1024,
        inode_table_blocks: int = 16,
    ) -> None:
        if capacity_bytes < group_size:
            group_size = capacity_bytes
        if group_size < (inode_table_blocks + 1) * block_size:
            raise ValueError("cylinder group too small for its inode table")
        self.block_size = block_size
        self.groups: List[CylinderGroup] = []
        base = 0
        while base + group_size <= capacity_bytes:
            self.groups.append(CylinderGroup(base, group_size, inode_table_blocks, block_size))
            base += group_size
        if not self.groups:
            raise ValueError("capacity too small for even one cylinder group")
        self._inodes_per_block = 64  # 128-byte on-disk inodes in an 8K block
        self._allocated: Set[int] = set()

    @property
    def total_groups(self) -> int:
        return len(self.groups)

    def group_for_inode(self, ino: int) -> int:
        """Which cylinder group an inode lives in (round-robin by ino)."""
        return ino % len(self.groups)

    def inode_block_addr(self, ino: int) -> int:
        """Disk address of the inode-table block containing inode ``ino``."""
        group = self.groups[self.group_for_inode(ino)]
        slot = (ino // len(self.groups)) % group.inode_table_blocks
        return group.inode_block(slot)

    def allocate_near(self, ino: int) -> int:
        """Allocate a data block, preferring the inode's cylinder group."""
        start = self.group_for_inode(ino)
        for step in range(len(self.groups)):
            group = self.groups[(start + step) % len(self.groups)]
            if group.has_space:
                addr = group.allocate()
                self._allocated.add(addr)
                return addr
        raise NoSpace("filesystem full")

    def free(self, addr: int) -> None:
        """Return a data block to its group's free list."""
        if addr not in self._allocated:
            raise ValueError(f"double free or foreign block: {addr:#x}")
        self._allocated.remove(addr)
        for group in self.groups:
            if group.data_start <= addr < group.data_end:
                group.free(addr)
                return
        raise ValueError(f"block {addr:#x} belongs to no group")

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)
