"""Filesystem substrate: FFS-style UFS with clustering and the paper's VFS hints."""

from repro.fs.allocator import Allocator, CylinderGroup, NoSpace
from repro.fs.buffer_cache import Buffer, BufferCache, DurableImage, FlushRun
from repro.fs.fsck import FsckReport, fsck
from repro.fs.inode import NDIRECT, FileType, Inode, InodeSnapshot
from repro.fs.ufs import ROOT_INO, CostModel, FsError, Ufs, WriteResult
from repro.fs.vfs import (
    FWRITE,
    FWRITE_METADATA,
    IO_DATAONLY,
    IO_DELAYDATA,
    IO_SYNC,
    FileHandle,
    Vnode,
    VnodeTable,
)

__all__ = [
    "Allocator",
    "CylinderGroup",
    "NoSpace",
    "Buffer",
    "BufferCache",
    "DurableImage",
    "FlushRun",
    "fsck",
    "FsckReport",
    "Inode",
    "InodeSnapshot",
    "FileType",
    "NDIRECT",
    "Ufs",
    "FsError",
    "CostModel",
    "WriteResult",
    "ROOT_INO",
    "IO_SYNC",
    "IO_DATAONLY",
    "IO_DELAYDATA",
    "FWRITE",
    "FWRITE_METADATA",
    "Vnode",
    "VnodeTable",
    "FileHandle",
]
