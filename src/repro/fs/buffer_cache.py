"""Buffer cache with delayed writes, clustering, and a durable image.

The cache holds real bytes, because the reproduction checks *content*
invariants, not just timings:

* every buffer is an 8K block's in-core copy;
* delayed (dirty) buffers are what UFS clustering ([MCVO91]) coalesces into
  up-to-64K device transactions;
* the :class:`DurableImage` records what is actually on stable storage —
  a block's bytes enter the image only when the storage device reports the
  corresponding transaction complete, with the bytes snapshotted at submit
  time.  Crash-consistency tests compare NFS replies against this image.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.disk.device import Storage
from repro.fs.inode import InodeSnapshot
from repro.sim import AllOf, Environment, Event

__all__ = ["Buffer", "BufferCache", "DurableImage", "FlushRun"]


class Buffer:
    """One cached disk block."""

    __slots__ = ("addr", "size", "data", "dirty", "version", "last_use", "lite")

    def __init__(self, addr: int, size: int) -> None:
        self.addr = addr
        self.size = size
        self.data = bytearray(size)
        self.dirty = False
        #: Bumped on every modification; flush completions only clean the
        #: buffer if the version is unchanged since the snapshot.
        self.version = 0
        self.last_use = 0.0
        #: True while the buffer has only ever seen flyweight writes (its
        #: content is all zeros): flush snapshots then share one immutable
        #: zero block instead of copying 8K per flush.
        self.lite = True


_ZERO_BLOCKS: Dict[int, bytes] = {}


def _zero_block(size: int) -> bytes:
    block = _ZERO_BLOCKS.get(size)
    if block is None:
        block = _ZERO_BLOCKS[size] = bytes(size)
    return block


class DurableImage:
    """What stable storage currently holds (blocks + committed metadata)."""

    def __init__(self) -> None:
        self.blocks: Dict[int, bytes] = {}
        self.inodes: Dict[int, InodeSnapshot] = {}
        self.indirects: Dict[int, Dict[int, int]] = {}

    def commit_block(self, addr: int, data: bytes) -> None:
        self.blocks[addr] = data

    def commit_inode(self, ino: int, snapshot: InodeSnapshot) -> None:
        self.inodes[ino] = snapshot

    def commit_indirect(self, ino: int, mapping: Dict[int, int]) -> None:
        self.indirects[ino] = dict(mapping)


class FlushRun:
    """A contiguous run of dirty buffers flushed as one device transaction."""

    __slots__ = ("start", "nbytes", "buffers", "snapshots")

    def __init__(self, start: int, buffers: List[Buffer]) -> None:
        self.start = start
        self.buffers = buffers
        self.nbytes = sum(buffer.size for buffer in buffers)
        self.snapshots: List[Tuple[Buffer, bytes, int]] = []

    def snapshot(self) -> None:
        """Capture buffer contents and versions at submit time."""
        self.snapshots = [
            (
                buffer,
                _zero_block(buffer.size) if buffer.lite else bytes(buffer.data),
                buffer.version,
            )
            for buffer in self.buffers
        ]


class BufferCache:
    """Block cache over a :class:`Storage`, with LRU eviction of clean data."""

    def __init__(
        self,
        env: Environment,
        storage: Storage,
        block_size: int = 8192,
        cluster_size: int = 65536,
        capacity_blocks: int = 4096,
    ) -> None:
        if cluster_size % block_size != 0:
            raise ValueError("cluster size must be a multiple of the block size")
        self.env = env
        self.storage = storage
        self.block_size = block_size
        self.cluster_size = cluster_size
        self.capacity_blocks = capacity_blocks
        self._buffers: "OrderedDict[int, Buffer]" = OrderedDict()
        self.durable = DurableImage()
        #: Completion events of async flushes still in flight, keyed by the
        #: run's start address (syncdata waits on overlapping ones).
        self._in_flight: Dict[int, Tuple[Event, int]] = {}

    # -- basic cache operations ---------------------------------------------

    def lookup(self, addr: int) -> Optional[Buffer]:
        """Return the cached buffer for ``addr`` without faulting one in."""
        buffer = self._buffers.get(addr)
        if buffer is not None:
            buffer.last_use = self.env.now
            self._buffers.move_to_end(addr)
        return buffer

    def get(self, addr: int) -> Buffer:
        """Return (creating if needed) the buffer for block ``addr``.

        A newly created buffer is initialized from the durable image if the
        block has ever been written, else zero-filled (a fresh block).
        """
        buffer = self.lookup(addr)
        if buffer is None:
            buffer = Buffer(addr, self.block_size)
            durable = self.durable.blocks.get(addr)
            if durable is not None:
                buffer.data[:] = durable
                buffer.lite = False
            buffer.last_use = self.env.now
            self._buffers[addr] = buffer
            self._evict_if_needed()
        return buffer

    def is_cached(self, addr: int) -> bool:
        return addr in self._buffers

    def mark_dirty(self, buffer: Buffer) -> None:
        buffer.dirty = True
        buffer.version += 1

    def drop_clean(self) -> int:
        """Evict every clean buffer (simulates a cold cache).  Returns count."""
        clean = [addr for addr, buffer in self._buffers.items() if not buffer.dirty]
        for addr in clean:
            del self._buffers[addr]
        return len(clean)

    def _evict_if_needed(self) -> None:
        while len(self._buffers) > self.capacity_blocks:
            victim_addr = None
            for addr, buffer in self._buffers.items():  # LRU order
                if not buffer.dirty:
                    victim_addr = addr
                    break
            if victim_addr is None:
                break  # everything dirty; let the cache balloon rather than lose data
            del self._buffers[victim_addr]

    # -- flush planning and execution ----------------------------------------

    def plan_runs(self, addrs: Iterable[int]) -> List[FlushRun]:
        """Group dirty buffers at ``addrs`` into clustered contiguous runs.

        Runs never exceed ``cluster_size`` bytes; only currently dirty,
        cached buffers participate.
        """
        dirty = sorted(
            addr
            for addr in set(addrs)
            if addr in self._buffers and self._buffers[addr].dirty
        )
        runs: List[FlushRun] = []
        current: List[Buffer] = []
        current_start = 0
        for addr in dirty:
            buffer = self._buffers[addr]
            if (
                current
                and addr == current_start + sum(b.size for b in current)
                and sum(b.size for b in current) + buffer.size <= self.cluster_size
            ):
                current.append(buffer)
            else:
                if current:
                    runs.append(FlushRun(current_start, current))
                current = [buffer]
                current_start = addr
        if current:
            runs.append(FlushRun(current_start, current))
        return runs

    def flush_runs(
        self,
        runs: List[FlushRun],
        kind: str = "data",
        on_commit: Optional[Callable[[FlushRun], None]] = None,
    ):
        """Submit ``runs`` in parallel; generator completes when all stable."""
        events = [self._submit_run(run, kind, on_commit) for run in runs]
        if events:
            yield AllOf(self.env, events)

    def flush_runs_async(
        self,
        runs: List[FlushRun],
        kind: str = "data",
        on_commit: Optional[Callable[[FlushRun], None]] = None,
    ) -> List[Event]:
        """Submit ``runs`` without waiting; returns their completion events."""
        return [self._submit_run(run, kind, on_commit) for run in runs]

    def _submit_run(
        self, run: FlushRun, kind: str, on_commit: Optional[Callable[[FlushRun], None]]
    ) -> Event:
        run.snapshot()
        # The snapshot is what will land on stable storage; the buffer no
        # longer *needs* flushing unless it is modified again (mark_dirty
        # re-dirties it, and the version check below keeps the re-dirty).
        for buffer, _data, _version in run.snapshots:
            buffer.dirty = False
        device_event = self.storage.submit(run.start, run.nbytes, is_write=True, kind=kind)
        done = self.env.event()
        self._in_flight[id(run)] = (done, run.start)

        def complete(_event: Event) -> None:
            for buffer, data, _version in run.snapshots:
                self.durable.commit_block(buffer.addr, data)
            if on_commit is not None:
                on_commit(run)
            # pop, not del: a simulated crash clears the tracking table
            # while device completions are still in flight.
            self._in_flight.pop(id(run), None)
            done.succeed(run)

        device_event.callbacks.append(complete)
        return done

    def reset_volatile(self) -> None:
        """Forget all in-core state at a simulated crash.

        Every buffer (clean or dirty) and the in-flight flush tracking table
        vanish; the durable image survives untouched.  Device completions
        already in flight still fire — ``_submit_run`` pops from the cleared
        table — and still commit their submit-time snapshots, modelling
        transactions the controller had accepted before the host died.
        """
        self._buffers.clear()
        self._in_flight.clear()

    def in_flight_events(self) -> List[Event]:
        """Completion events for all flushes currently in flight."""
        return [event for event, _start in self._in_flight.values()]

    def dirty_addrs(self) -> List[int]:
        return [addr for addr, buffer in self._buffers.items() if buffer.dirty]
