"""Buffer cache with delayed writes, clustering, and a durable image.

The cache holds real bytes, because the reproduction checks *content*
invariants, not just timings:

* every buffer is an 8K block's in-core copy;
* delayed (dirty) buffers are what UFS clustering ([MCVO91]) coalesces into
  up-to-64K device transactions;
* the :class:`DurableImage` records what is actually on stable storage —
  a block's bytes enter the image only when the storage device reports the
  corresponding transaction complete, with the bytes snapshotted at submit
  time.  Crash-consistency tests compare NFS replies against this image.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.disk.device import Storage
from repro.fs.inode import InodeSnapshot
from repro.integrity.checksum import block_digest
from repro.integrity.errors import CorruptBlockError
from repro.sim import AllOf, Environment, Event

__all__ = ["Buffer", "BufferCache", "DurableImage", "FlushRun"]


class Buffer:
    """One cached disk block."""

    __slots__ = ("addr", "size", "data", "dirty", "version", "last_use", "lite")

    def __init__(self, addr: int, size: int) -> None:
        self.addr = addr
        self.size = size
        self.data = bytearray(size)
        self.dirty = False
        #: Bumped on every modification; flush completions only clean the
        #: buffer if the version is unchanged since the snapshot.
        self.version = 0
        self.last_use = 0.0
        #: True while the buffer has only ever seen flyweight writes (its
        #: content is all zeros): flush snapshots then share one immutable
        #: zero block instead of copying 8K per flush.
        self.lite = True


_ZERO_BLOCKS: Dict[int, bytes] = {}
_ZERO_DIGESTS: Dict[int, int] = {}


def _zero_block(size: int) -> bytes:
    block = _ZERO_BLOCKS.get(size)
    if block is None:
        block = _ZERO_BLOCKS[size] = bytes(size)
    return block


def _digest_of(data: bytes) -> int:
    """``block_digest``, with the shared flyweight zero block memoized —
    flyweight flushes commit the same immutable object over and over."""
    if data is _ZERO_BLOCKS.get(len(data)):
        digest = _ZERO_DIGESTS.get(len(data))
        if digest is None:
            digest = _ZERO_DIGESTS[len(data)] = block_digest(data)
        return digest
    return block_digest(data)


class DurableImage:
    """What stable storage currently holds (blocks + committed metadata).

    Every committed block carries a digest (``checksums``), written at
    commit time — the end-to-end integrity anchor.  Media faults mutate
    ``blocks`` *without* touching the digest, which is exactly what makes
    them detectable; ``quarantined`` marks addresses a scrub (or failed
    read) has declared unreadable pending repair.
    """

    def __init__(self) -> None:
        self.blocks: Dict[int, bytes] = {}
        self.inodes: Dict[int, InodeSnapshot] = {}
        self.indirects: Dict[int, Dict[int, int]] = {}
        #: addr -> digest of the bytes that were acked as stable.
        self.checksums: Dict[int, int] = {}
        #: addr -> reason string for blocks surfaced as unreadable.
        self.quarantined: Dict[int, str] = {}

    def commit_block(self, addr: int, data: bytes) -> None:
        self.blocks[addr] = data
        self.checksums[addr] = _digest_of(data)
        self.quarantined.pop(addr, None)

    def commit_block_torn(self, addr: int, intended: bytes, mangled: bytes) -> None:
        """A torn commit: ``mangled`` bytes land under the digest of the
        ``intended`` bytes — the on-medium state after a crash interrupts
        a multi-sector transfer mid-block."""
        self.blocks[addr] = mangled
        self.checksums[addr] = block_digest(intended)
        self.quarantined.pop(addr, None)

    def commit_inode(self, ino: int, snapshot: InodeSnapshot) -> None:
        self.inodes[ino] = snapshot

    def commit_indirect(self, ino: int, mapping: Dict[int, int]) -> None:
        self.indirects[ino] = dict(mapping)

    def verify_block(self, addr: int) -> None:
        """Raise :class:`CorruptBlockError` if ``addr`` cannot be trusted.

        A block with no recorded digest verifies trivially (never
        committed through the checksummed path, e.g. a fresh hole).
        """
        reason = self.quarantined.get(addr)
        if reason is not None:
            raise CorruptBlockError(addr, "quarantined", reason)
        digest = self.checksums.get(addr)
        if digest is None:
            return
        data = self.blocks.get(addr)
        if data is None:
            raise CorruptBlockError(addr, "missing", "digest present, content lost")
        if _digest_of(data) != digest:
            raise CorruptBlockError(addr, "checksum")

    def quarantine(self, addr: int, reason: str) -> None:
        self.quarantined[addr] = reason

    def rot_block(self, addr: int, rng: random.Random) -> bool:
        """Silently flip one seeded bit of a committed block's bytes,
        leaving its digest intact.  Returns False if there is nothing to
        rot at ``addr``."""
        data = self.blocks.get(addr)
        if not data:
            return False
        pos = rng.randrange(len(data))
        flipped = data[pos] ^ (1 << rng.randrange(8))
        self.blocks[addr] = data[:pos] + bytes((flipped,)) + data[pos + 1 :]
        return True

    def lose_block(self, addr: int) -> None:
        """Drop a block's content but keep its digest — a detectable loss
        (verification reports "missing"), unlike silently zeroed bytes."""
        self.blocks.pop(addr, None)

    def lose_range(self, start: int, end: int, block_size: int) -> List[int]:
        """Lose every block overlapping ``[start, end)``; returns the
        afflicted addresses."""
        afflicted = [
            addr for addr in self.blocks if addr < end and start < addr + block_size
        ]
        for addr in afflicted:
            self.blocks.pop(addr)
        return sorted(afflicted)


class FlushRun:
    """A contiguous run of dirty buffers flushed as one device transaction."""

    __slots__ = ("start", "nbytes", "buffers", "snapshots")

    def __init__(self, start: int, buffers: List[Buffer]) -> None:
        self.start = start
        self.buffers = buffers
        self.nbytes = sum(buffer.size for buffer in buffers)
        self.snapshots: List[Tuple[Buffer, bytes, int]] = []

    def snapshot(self) -> None:
        """Capture buffer contents and versions at submit time."""
        self.snapshots = [
            (
                buffer,
                _zero_block(buffer.size) if buffer.lite else bytes(buffer.data),
                buffer.version,
            )
            for buffer in self.buffers
        ]


class BufferCache:
    """Block cache over a :class:`Storage`, with LRU eviction of clean data."""

    def __init__(
        self,
        env: Environment,
        storage: Storage,
        block_size: int = 8192,
        cluster_size: int = 65536,
        capacity_blocks: int = 4096,
    ) -> None:
        if cluster_size % block_size != 0:
            raise ValueError("cluster size must be a multiple of the block size")
        self.env = env
        self.storage = storage
        self.block_size = block_size
        self.cluster_size = cluster_size
        self.capacity_blocks = capacity_blocks
        self._buffers: "OrderedDict[int, Buffer]" = OrderedDict()
        self.durable = DurableImage()
        #: Completion events of async flushes still in flight, keyed by the
        #: run's start address (syncdata waits on overlapping ones).
        self._in_flight: Dict[int, Tuple[Event, int]] = {}
        #: Armed torn-write fault: run id -> pre-drawn tear fraction for
        #: flushes that were in flight when the crash hit (see
        #: arm_torn_write / reset_volatile).
        self._torn_ids: Dict[int, float] = {}
        self._torn_rng: Optional[random.Random] = None

    # -- basic cache operations ---------------------------------------------

    def lookup(self, addr: int) -> Optional[Buffer]:
        """Return the cached buffer for ``addr`` without faulting one in."""
        buffer = self._buffers.get(addr)
        if buffer is not None:
            buffer.last_use = self.env.now
            self._buffers.move_to_end(addr)
        return buffer

    def get(self, addr: int) -> Buffer:
        """Return (creating if needed) the buffer for block ``addr``.

        A newly created buffer is initialized from the durable image if the
        block has ever been written, else zero-filled (a fresh block).
        """
        buffer = self.lookup(addr)
        if buffer is None:
            buffer = Buffer(addr, self.block_size)
            # End-to-end check: never launder corrupt (or lost) durable
            # bytes into the cache (raises CorruptBlockError on mismatch).
            self.durable.verify_block(addr)
            durable = self.durable.blocks.get(addr)
            if durable is not None:
                buffer.data[:] = durable
                buffer.lite = False
            buffer.last_use = self.env.now
            self._buffers[addr] = buffer
            self._evict_if_needed()
        return buffer

    def is_cached(self, addr: int) -> bool:
        return addr in self._buffers

    def mark_dirty(self, buffer: Buffer) -> None:
        buffer.dirty = True
        buffer.version += 1

    def drop_clean(self) -> int:
        """Evict every clean buffer (simulates a cold cache).  Returns count."""
        clean = [addr for addr, buffer in self._buffers.items() if not buffer.dirty]
        for addr in clean:
            del self._buffers[addr]
        return len(clean)

    def _evict_if_needed(self) -> None:
        while len(self._buffers) > self.capacity_blocks:
            victim_addr = None
            for addr, buffer in self._buffers.items():  # LRU order
                if not buffer.dirty:
                    victim_addr = addr
                    break
            if victim_addr is None:
                break  # everything dirty; let the cache balloon rather than lose data
            del self._buffers[victim_addr]

    # -- flush planning and execution ----------------------------------------

    def plan_runs(self, addrs: Iterable[int]) -> List[FlushRun]:
        """Group dirty buffers at ``addrs`` into clustered contiguous runs.

        Runs never exceed ``cluster_size`` bytes; only currently dirty,
        cached buffers participate.
        """
        dirty = sorted(
            addr
            for addr in set(addrs)
            if addr in self._buffers and self._buffers[addr].dirty
        )
        runs: List[FlushRun] = []
        current: List[Buffer] = []
        current_start = 0
        for addr in dirty:
            buffer = self._buffers[addr]
            if (
                current
                and addr == current_start + sum(b.size for b in current)
                and sum(b.size for b in current) + buffer.size <= self.cluster_size
            ):
                current.append(buffer)
            else:
                if current:
                    runs.append(FlushRun(current_start, current))
                current = [buffer]
                current_start = addr
        if current:
            runs.append(FlushRun(current_start, current))
        return runs

    def flush_runs(
        self,
        runs: List[FlushRun],
        kind: str = "data",
        on_commit: Optional[Callable[[FlushRun], None]] = None,
    ):
        """Submit ``runs`` in parallel; generator completes when all stable."""
        events = [self._submit_run(run, kind, on_commit) for run in runs]
        if events:
            yield AllOf(self.env, events)

    def flush_runs_async(
        self,
        runs: List[FlushRun],
        kind: str = "data",
        on_commit: Optional[Callable[[FlushRun], None]] = None,
    ) -> List[Event]:
        """Submit ``runs`` without waiting; returns their completion events."""
        return [self._submit_run(run, kind, on_commit) for run in runs]

    def _submit_run(
        self, run: FlushRun, kind: str, on_commit: Optional[Callable[[FlushRun], None]]
    ) -> Event:
        run.snapshot()
        # The snapshot is what will land on stable storage; the buffer no
        # longer *needs* flushing unless it is modified again (mark_dirty
        # re-dirties it, and the version check below keeps the re-dirty).
        for buffer, _data, _version in run.snapshots:
            buffer.dirty = False
        device_event = self.storage.submit(run.start, run.nbytes, is_write=True, kind=kind)
        done = self.env.event()
        self._in_flight[id(run)] = (done, run.start)

        def complete(_event: Event) -> None:
            torn_at = self._torn_ids.pop(id(run), None)
            if torn_at is not None and len(run.snapshots) > 1:
                self._commit_torn(run, torn_at)
            else:
                for buffer, data, _version in run.snapshots:
                    self.durable.commit_block(buffer.addr, data)
            if on_commit is not None:
                on_commit(run)
            # pop, not del: a simulated crash clears the tracking table
            # while device completions are still in flight.
            self._in_flight.pop(id(run), None)
            done.succeed(run)

        device_event.callbacks.append(complete)
        return done

    def arm_torn_write(self, seed: int = 0) -> None:
        """Arm the next crash to tear flushes that are then in flight: a
        prefix of each multi-block run lands, one block lands mangled
        (under the digest of the intended bytes), the tail never lands.
        Single-block runs stay atomic.  Consumed by one crash."""
        self._torn_rng = random.Random(f"torn-write/{seed}")

    def _commit_torn(self, run: FlushRun, fraction: float) -> None:
        snapshots = run.snapshots
        tear = 1 + int(fraction * (len(snapshots) - 1))
        tear = min(tear, len(snapshots) - 1)
        for index, (buffer, data, _version) in enumerate(snapshots):
            if index < tear:
                self.durable.commit_block(buffer.addr, data)
            elif index == tear:
                mangled = data[:-1] + bytes((data[-1] ^ 0xFF,))
                self.durable.commit_block_torn(buffer.addr, data, mangled)
            # Blocks past the tear never reached the medium.

    def reset_volatile(self) -> None:
        """Forget all in-core state at a simulated crash.

        Every buffer (clean or dirty) and the in-flight flush tracking table
        vanish; the durable image survives untouched.  Device completions
        already in flight still fire — ``_submit_run`` pops from the cleared
        table — and still commit their submit-time snapshots, modelling
        transactions the controller had accepted before the host died.
        With a torn-write fault armed (:meth:`arm_torn_write`), those
        in-flight completions instead land *torn*.
        """
        if self._torn_rng is not None and self._in_flight:
            # Deterministic: draw tear fractions in run-start order (ties
            # keep submission order — dict order is insertion order).
            for run_id, (_done, _start) in sorted(
                self._in_flight.items(), key=lambda item: item[1][1]
            ):
                self._torn_ids[run_id] = self._torn_rng.random()
        self._torn_rng = None
        self._buffers.clear()
        self._in_flight.clear()

    def in_flight_events(self) -> List[Event]:
        """Completion events for all flushes currently in flight."""
        return [event for event, _start in self._in_flight.values()]

    def dirty_addrs(self) -> List[int]:
        return [addr for addr, buffer in self._buffers.items() if buffer.dirty]
