"""repro.lease — server-granted leases with callback invalidation.

The cache-consistency layer (Gray & Cheriton leases, the NQNFS lineage):
the server hands out short-lived read/write leases piggybacked on ordinary
NFS replies, tracks every holder, and — before executing a conflicting
mutation — issues ``CB_RECALL`` callbacks over a dedicated reverse-direction
endpoint so holders flush dirty data and drop cached copies first.  Lease
expiry bounds every recall wait, so a partitioned holder can only stall a
writer for one TTL.

* :mod:`repro.lease.manager` — the server side: grant/recall/grace.
* :mod:`repro.lease.oracle` — the omniscient staleness contract checker.
* :mod:`repro.lease.experiment` — the ``repro cache`` TTL × sharing sweep.

The client side (AttrCache/DirCache/write-back DataCache) lives in
:mod:`repro.nfs.cache`, next to the client it serves.
"""

from repro.lease.manager import LEASE_READ, LEASE_WRITE, Lease, LeaseGrant, LeaseManager
from repro.lease.oracle import StalenessOracle

__all__ = [
    "LEASE_READ",
    "LEASE_WRITE",
    "Lease",
    "LeaseGrant",
    "LeaseManager",
    "StalenessOracle",
]
