"""The staleness oracle: omniscient checking of the lease contract.

The contract (Gray & Cheriton, applied to NFS):

* **No stale hit** — a cache may serve an entry only if no *other* client
  mutated that file handle after the entry was fetched.  The lease
  machinery enforces this with recalls and expiries; the oracle checks
  the outcome directly, from above, with no knowledge of leases at all:
  it cross-references every served hit against a global mutation log.
* **Quiesce before ack** — when a mutation is about to execute (after
  :meth:`~repro.lease.manager.LeaseManager.before` finished quiescing),
  no other client may still hold *dirty* data for the affected handle
  under a lease it believes valid.  A recall that acked before flushing,
  or a quiesce that returned early, shows up here.

The oracle attaches to hooks that exist whether or not it is listening
(``LeaseManager.on_mutate``, ``CacheStack.on_cache_hit``), so enabling it
changes nothing about the run.  It is multi-server aware: attach every
manager in a cluster (primaries and backups) and every client stack; the
mutation log is global because file handles are fleet-unique.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lease.manager import LEASE_WRITE

__all__ = ["StalenessOracle"]


class StalenessOracle:
    """Cross-checks every served cache hit against the global mutation log."""

    def __init__(self, env) -> None:
        self.env = env
        self.violations: List[str] = []
        self.hits_checked = 0
        self.mutations_checked = 0
        #: fhandle -> {mutating client host -> last mutation time}.
        self._mutations: Dict[tuple, Dict[str, float]] = {}
        #: client host -> CacheStack (for the quiesce-before-ack check).
        self._stacks: Dict[str, object] = {}

    # -- wiring -------------------------------------------------------------------

    def attach_client(self, client) -> None:
        """Watch one client's cache stack (``client.cache`` must exist)."""
        stack = client.cache
        if stack is None:
            raise ValueError(f"client {client.rpc.endpoint.host} has no cache stack")
        self._stacks[stack.host] = stack

        def _hook(kind, fhandle, fetched_at, dirty, _host=stack.host):
            self._on_hit(_host, kind, fhandle, fetched_at, dirty)

        stack.on_cache_hit = _hook

    def attach_server(self, server) -> None:
        """Watch one server's lease manager (``server.leases`` must exist)."""
        manager = server.leases
        if manager is None:
            raise ValueError(f"server {server.host} has no lease manager")
        manager.on_mutate = self._on_mutate

    def attach_testbed(self, testbed) -> None:
        """Convenience: watch a single-server testbed's server and clients."""
        self.attach_server(testbed.server)
        for client in testbed.clients:
            self.attach_client(client)

    def attach_cluster(self, cluster) -> None:
        """Convenience: watch every fleet member (primaries *and* backups —
        a promoted backup starts granting) and every client."""
        for group in cluster.groups:
            for member in group.members:
                if member.leases is not None:
                    self.attach_server(member)
        for client in cluster.clients:
            self.attach_client(client)

    # -- the two checks -----------------------------------------------------------

    def _on_mutate(self, fhandle: tuple, client: str) -> None:
        """A quiesced mutation by ``client`` is about to execute."""
        now = self.env.now
        self.mutations_checked += 1
        self._mutations.setdefault(fhandle, {})[client] = now
        for host, stack in self._stacks.items():
            if host == client:
                continue
            if stack.dirty_blocks(fhandle) and stack.lease_valid(
                fhandle, LEASE_WRITE
            ):
                self.violations.append(
                    f"t={now:.6f} unquiesced dirty data: {client} mutates "
                    f"{fhandle} while {host} still holds {stack.dirty_blocks(fhandle)} "
                    "dirty block(s) under a live write lease"
                )

    def _on_hit(
        self, host: str, kind: str, fhandle: tuple, fetched_at: float, dirty: bool
    ) -> None:
        """Cache ``host`` served a ``kind`` hit fetched at ``fetched_at``."""
        if dirty:
            return  # the client's own pending write: never stale to itself
        self.hits_checked += 1
        for mutator, when in self._mutations.get(fhandle, {}).items():
            if mutator != host and when > fetched_at:
                self.violations.append(
                    f"t={self.env.now:.6f} stale {kind} hit: {host} served "
                    f"{fhandle} fetched at t={fetched_at:.6f}, but {mutator} "
                    f"mutated it at t={when:.6f}"
                )

    # -- verdicts -----------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def check(self, label: str = "") -> None:
        """Raise if any violation has been recorded (end-of-run assert)."""
        if self.violations:
            where = f" at {label}" if label else ""
            raise AssertionError(
                f"lease staleness contract violated{where}: "
                f"{self.violations[:3]} ({len(self.violations)} total)"
            )
