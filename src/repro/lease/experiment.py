"""The ``repro cache`` experiment: what lease caching buys, and what it risks.

Three sections, one report:

* **Sweep** — the headline shared-read/private-write workload over a grid
  of lease TTL × sharing ratio, leases on vs off, measuring
  *RPCs per user operation* (the number client caching exists to shrink:
  Gray & Cheriton's consistency argument is only interesting because the
  cache it protects deletes most of the wire traffic).
* **Workloads** — the same before/after on compact profiles of the repo's
  other experiment families: the sequential ``copy``, the SFS ``laddis``
  mix, the sharded ``cluster`` fleet, and a paced ``overload``-style
  write fleet.
* **Chaos** — the staleness contract under adversity, checked by the
  omniscient :class:`~repro.lease.oracle.StalenessOracle`: a server crash
  in the middle of a recall-and-flush, a recall callback severed from its
  holder, and a holder partitioned past its lease TTL.

Everything is seeded; same-seed reruns produce byte-identical JSON (the
report carries no wall-clock-derived field).
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.faults.controller import FaultController
from repro.faults.events import AtTime, FaultPlan, NetworkPartition, ServerCrash
from repro.lease.oracle import StalenessOracle
from repro.net.spec import FDDI
from repro.nfs.client import NfsError
from repro.sim import AllOf
from repro.workload.sequential import patterned_chunk, write_file

__all__ = ["CacheConfig", "CacheReport", "run_cache", "WORKLOADS"]

WORKLOADS = ("copy", "laddis", "cluster", "overload")

CHUNK = 8192


@dataclass
class CacheConfig:
    """One cache sweep: the TTL and sharing axes, the fleet, the probes."""

    #: Lease TTL axis (seconds), swept against the off arm.
    lease_ttls: Sequence[float] = (1.0, 5.0, 30.0)
    #: Fraction of each client's operations aimed at the *shared* read
    #: set (the rest are private write-behind appends).
    sharing_ratios: Sequence[float] = (0.25, 0.5, 0.9)
    clients: int = 4
    ops_per_client: int = 30
    shared_files: int = 4
    #: The cell the acceptance criterion reads.  None = the top of each
    #: axis; explicit values must lie on the axis.
    headline_ttl: Optional[float] = None
    headline_sharing: Optional[float] = None
    #: Required RPCs-per-op reduction (off/on) at the headline cell.
    min_reduction: float = 3.0
    #: Per-op pacing.  Deliberately slow enough that the run outlives the
    #: short end of the TTL axis (30 ops x 50 ms = 1.5 s), so a 1 s lease
    #: actually expires mid-run and the TTL sweep has a shape.
    think_time: float = 0.05
    netspec: object = FDDI
    write_path: str = "standard"
    seed: int = 0
    #: Workload profiles to run before/after (subset of WORKLOADS).
    workloads: Sequence[str] = WORKLOADS
    #: Run the chaos probes (crash mid-recall, lost callback, partition
    #: past TTL) under the staleness oracle.
    chaos: bool = True
    #: TTL for the chaos probes.  Deliberately short: the probes lean on
    #: expiry as the recall fallback, and a promoted/rebooted server's
    #: grace period blocks write-class ops one full TTL.
    chaos_ttl: float = 2.0

    def __post_init__(self) -> None:
        if self.clients < 2:
            raise ValueError(f"sharing needs at least two clients, got {self.clients}")
        if self.ops_per_client < 1:
            raise ValueError("ops_per_client must be >= 1")
        if not self.lease_ttls or any(ttl <= 0 for ttl in self.lease_ttls):
            raise ValueError(f"lease_ttls must be positive, got {self.lease_ttls!r}")
        if any(not 0.0 <= ratio <= 1.0 for ratio in self.sharing_ratios):
            raise ValueError("sharing ratios must be in [0, 1]")
        if self.headline_ttl is None:
            self.headline_ttl = max(self.lease_ttls)
        elif self.headline_ttl not in self.lease_ttls:
            raise ValueError(
                f"headline_ttl {self.headline_ttl} must be one of {self.lease_ttls!r}"
            )
        if self.headline_sharing is None:
            self.headline_sharing = max(self.sharing_ratios)
        elif self.headline_sharing not in self.sharing_ratios:
            raise ValueError(
                f"headline_sharing {self.headline_sharing} must be one of "
                f"{self.sharing_ratios!r}"
            )
        if self.chaos_ttl <= 0:
            raise ValueError(f"chaos_ttl must be positive, got {self.chaos_ttl}")
        unknown = set(self.workloads) - set(WORKLOADS)
        if unknown:
            raise ValueError(f"unknown workloads {sorted(unknown)!r}")

    def testbed_config(self, ttl: Optional[float]) -> TestbedConfig:
        return TestbedConfig(
            netspec=self.netspec,
            write_path=self.write_path,
            seed=self.seed,
            lease_ttl=ttl,
        )


# -- measurement helpers --------------------------------------------------------


def _fleet_rpcs_per_op(clients) -> dict:
    """Aggregate RPCs / user ops over a client fleet (one shared ratio)."""
    rpcs = sum(c.rpcs_per_op.numerator.value for c in clients)
    user_ops = sum(c.rpcs_per_op.denominator.value for c in clients)
    return {
        "rpcs": int(rpcs),
        "user_ops": int(user_ops),
        "rpcs_per_op": round(rpcs / user_ops, 4) if user_ops else 0.0,
    }


def _cache_totals(clients) -> Optional[dict]:
    stacks = [c.cache for c in clients if c.cache is not None]
    if not stacks:
        return None
    return {
        "attr_hits": sum(s.attr_hits.value for s in stacks),
        "dirent_hits": sum(s.dirent_hits.value for s in stacks),
        "negative_hits": sum(s.negative_hits.value for s in stacks),
        "data_hits": sum(s.data_hits.value for s in stacks),
        "deferred_writes": sum(s.deferred_writes.value for s in stacks),
        "flushed_blocks": sum(s.flushed_blocks.value for s in stacks),
        "recalls_served": sum(s.recalls_served.value for s in stacks),
        "reregistrations": sum(s.reregistrations.value for s in stacks),
    }


def _lease_totals(managers) -> Optional[dict]:
    managers = [m for m in managers if m is not None]
    if not managers:
        return None
    return {
        "granted": sum(m.granted.value for m in managers),
        "recalls": sum(m.recalls_sent.value for m in managers),
        "recall_acks": sum(m.recall_acks.value for m in managers),
        "recall_expirations": sum(m.recall_expirations.value for m in managers),
        "grace_delays": sum(m.grace_delays.value for m in managers),
    }


def _arm_record(clients, managers, oracle, errors) -> dict:
    record = _fleet_rpcs_per_op(clients)
    cache = _cache_totals(clients)
    if cache is not None:
        record["cache"] = cache
    leases = _lease_totals(managers)
    if leases is not None:
        record["leases"] = leases
    if oracle is not None:
        record["oracle"] = {
            "hits_checked": oracle.hits_checked,
            "mutations_checked": oracle.mutations_checked,
            "violations": list(oracle.violations),
        }
    record["errors"] = sorted(errors)
    return record


def _reduction(off: dict, on: dict) -> float:
    if not on["rpcs_per_op"]:
        return 0.0
    return round(off["rpcs_per_op"] / on["rpcs_per_op"], 2)


# -- the shared-read / private-write workload -----------------------------------


def _setup_shared(env, client, count: int):
    """Client 0 creates and fills the shared read set; returns the names."""
    names = []
    for index in range(count):
        name = f"shared-{index}"
        open_file = yield from client.create(name)
        yield from client.write_stream(open_file, patterned_chunk(index, CHUNK))
        yield from client.write_stream(open_file, patterned_chunk(index + 1, CHUNK))
        yield from client.close(open_file)
        names.append(name)
    return names


def _shared_worker(env, client, shared, sharing, ops, think, rng, errors):
    """One client: shared open/read/getattr/close or a private append."""
    host = client.rpc.endpoint.host
    try:
        private = yield from client.create(f"priv-{host}")
    except NfsError as exc:
        errors.append(f"{host}: create {exc}")
        return
    block = 0
    for _ in range(ops):
        yield env.timeout(think)
        try:
            if rng.random() < sharing:
                name = shared[rng.randrange(len(shared))]
                open_file = yield from client.open(name)
                yield from client.read(open_file, 0, CHUNK)
                yield from client.getattr(open_file.fhandle)
                yield from client.close(open_file)
            else:
                yield from client.write_stream(private, patterned_chunk(block, CHUNK))
                block += 1
        except NfsError as exc:
            errors.append(f"{host}: {exc}")
    try:
        yield from client.close(private)
    except NfsError as exc:
        errors.append(f"{host}: close {exc}")


def _drive_shared(env, clients, config: CacheConfig, sharing: float, errors, ops=None):
    """Setup then run one worker per client; returns when all finish."""
    setup = env.process(
        _setup_shared(env, clients[0], config.shared_files), name="cache-setup"
    )
    env.run(until=setup)
    shared = setup.value
    workers = [
        env.process(
            _shared_worker(
                env,
                client,
                shared,
                sharing,
                config.ops_per_client if ops is None else ops,
                config.think_time,
                random.Random(config.seed * 7919 + index),
                errors,
            ),
            name=f"cache-worker:{index}",
        )
        for index, client in enumerate(clients)
    ]
    env.run(until=AllOf(env, workers))
    env.run()  # drain destage, recalls, watchdogs


def _run_shared_arm(config: CacheConfig, ttl: Optional[float], sharing: float) -> dict:
    """One (ttl, sharing) cell on a single-server testbed."""
    testbed = Testbed(config.testbed_config(ttl))
    for _ in range(config.clients):
        testbed.add_client()
    oracle = None
    if ttl is not None:
        oracle = StalenessOracle(testbed.env)
        oracle.attach_testbed(testbed)
    errors: List[str] = []
    _drive_shared(testbed.env, testbed.clients, config, sharing, errors)
    managers = [testbed.server.leases]
    record = _arm_record(testbed.clients, managers, oracle, errors)
    record["stable_violations"] = len(testbed.server.stable_violations)
    return record


# -- workload profiles ----------------------------------------------------------


def _profile_copy(config: CacheConfig, ttl: Optional[float]) -> dict:
    """A compact sequential file copy (the paper's §7.1 shape)."""
    testbed = Testbed(config.testbed_config(ttl))
    client = testbed.add_client()
    env = testbed.env
    proc = env.process(
        write_file(env, client, "copyfile", 256 * 1024, think_time=0.0005),
        name="cache-copy",
    )
    env.run(until=proc)
    env.run()
    return _arm_record([client], [testbed.server.leases], None, [])


def _profile_laddis(config: CacheConfig, ttl: Optional[float]) -> dict:
    """A compact SFS mix point (lookup/getattr-heavy, 15% writes)."""
    from repro.nfs.cache import CacheStack
    from repro.workload.laddis import LaddisGenerator

    testbed = Testbed(config.testbed_config(ttl))
    env = testbed.env
    generator = LaddisGenerator(
        env,
        testbed.segment,
        server_host=testbed.server.host,
        clients=2,
        procs_per_client=2,
        file_count=8,
        file_blocks=2,
        seed=config.seed + 12345,
    )
    if ttl is not None:
        # The generator builds bare clients; a leased server requires the
        # recall handler, so give each one the full cache stack.
        for client in generator.clients:
            CacheStack(env, client)
    setup = env.process(generator.setup(), name="cache-laddis-setup")
    env.run(until=setup)
    point = env.process(
        generator.run_point(offered_ops=120.0, duration=1.5, warmup=0.25),
        name="cache-laddis",
    )
    env.run(until=point)
    env.run()
    return _arm_record(generator.clients, [testbed.server.leases], None, [])


def _profile_cluster(config: CacheConfig, ttl: Optional[float]) -> dict:
    """The shared workload against a two-shard fleet."""
    from repro.cluster.fleet import Cluster, ClusterConfig

    cluster = Cluster(
        ClusterConfig(servers=2, seed=config.seed, lease_ttl=ttl)
    )
    for _ in range(max(2, config.clients - 1)):
        cluster.add_client()
    oracle = None
    if ttl is not None:
        oracle = StalenessOracle(cluster.env)
        oracle.attach_cluster(cluster)
    errors: List[str] = []
    _drive_shared(cluster.env, cluster.clients, config, 0.5, errors, ops=20)
    managers = [server.leases for server in cluster.servers]
    record = _arm_record(cluster.clients, managers, oracle, errors)
    record["stable_violations"] = cluster.stable_violations_total()
    return record


def _profile_overload(config: CacheConfig, ttl: Optional[float]) -> dict:
    """A write-heavy paced fleet (the overload experiment's shape, scaled
    down and without the storm: the cache must not distort a hot write
    path even when there is little for it to serve)."""
    testbed = Testbed(config.testbed_config(ttl))
    for _ in range(config.clients):
        testbed.add_client()
    errors: List[str] = []
    saved = config.think_time
    try:
        config.think_time = 0.0005
        _drive_shared(testbed.env, testbed.clients, config, 0.1, errors, ops=20)
    finally:
        config.think_time = saved
    record = _arm_record(testbed.clients, [testbed.server.leases], None, errors)
    record["stable_violations"] = len(testbed.server.stable_violations)
    return record


_PROFILES = {
    "copy": _profile_copy,
    "laddis": _profile_laddis,
    "cluster": _profile_cluster,
    "overload": _profile_overload,
}


# -- chaos probes ---------------------------------------------------------------


def _probe_harness(config: CacheConfig, plan: FaultPlan, script) -> dict:
    """Two clients, the oracle, one fault plan, one scripted scenario.

    ``script(env, clients, errors)`` returns the worker processes."""
    testbed = Testbed(config.testbed_config(config.chaos_ttl))
    testbed.add_client()
    testbed.add_client()
    env = testbed.env
    oracle = StalenessOracle(env)
    oracle.attach_testbed(testbed)
    controller = FaultController(testbed, plan, oracle=oracle).start()
    errors: List[str] = []
    workers = script(env, testbed.clients, errors)
    env.run(until=AllOf(env, workers))
    env.run()
    record = _arm_record(testbed.clients, [testbed.server.leases], oracle, errors)
    record["stable_violations"] = len(testbed.server.stable_violations)
    record["faults"] = [entry["kind"] for entry in controller.log]
    record["clean"] = (
        not oracle.violations
        and not errors
        and not testbed.server.stable_violations
    )
    return record


def _probe_crash_mid_recall(config: CacheConfig) -> dict:
    """Holder sits on a deep dirty set; a conflicting writer triggers the
    recall-and-flush; the server dies in the middle of it.  Grace (one
    TTL) must drain the pre-crash leases before the writer executes."""

    def script(env, clients, errors):
        def holder(client):
            try:
                open_file = yield from client.create("hot")
                for index in range(32):
                    yield from client.write_stream(
                        open_file, patterned_chunk(index, CHUNK)
                    )
                yield env.timeout(2.0)  # hold the dirty set across the crash
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"holder: {exc}")

        def writer(client):
            yield env.timeout(0.2)
            try:
                open_file = yield from client.open("hot")
                yield from client.write_stream(open_file, patterned_chunk(99, CHUNK))
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"writer: {exc}")

        return [
            env.process(holder(clients[0]), name="probe-holder"),
            env.process(writer(clients[1]), name="probe-writer"),
        ]

    plan = FaultPlan(
        name="crash-mid-recall",
        events=(ServerCrash(AtTime(0.21), reboot_delay=0.05),),
    )
    record = _probe_harness(config, plan, script)
    record["name"] = "crash_mid_recall"
    return record


def _probe_lost_callback(config: CacheConfig) -> dict:
    """The callback path (``server.cb``) is partitioned, so the recall can
    never reach its holder: the writer must fall back to lease expiry,
    and the holder's hits must stop at that same instant."""

    def script(env, clients, errors):
        def reader(client):
            try:
                open_file = yield from client.create("hot")
                yield from client.write_stream(open_file, patterned_chunk(0, CHUNK))
                yield from client.close(open_file)
                open_file = yield from client.open("hot")
                deadline = 3.0
                while env.now < deadline:
                    yield from client.read(open_file, 0, CHUNK)
                    yield env.timeout(0.1)
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"reader: {exc}")

        def writer(client):
            yield env.timeout(0.2)
            try:
                open_file = yield from client.open("hot")
                yield from client.write_stream(open_file, patterned_chunk(7, CHUNK))
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"writer: {exc}")

        return [
            env.process(reader(clients[0]), name="probe-reader"),
            env.process(writer(clients[1]), name="probe-writer"),
        ]

    plan = FaultPlan(
        name="lost-callback",
        events=(
            NetworkPartition(AtTime(0.1), hosts=("server.cb",), duration=2.5),
        ),
    )
    record = _probe_harness(config, plan, script)
    record["name"] = "lost_callback"
    return record


def _probe_partition_expiry(config: CacheConfig) -> dict:
    """The holder itself is partitioned past its TTL with dirty data in
    hand.  The writer proceeds at expiry; the healed holder's late flush
    is last-writer-wins (legal) — what would be illegal, and what the
    oracle watches for, is the holder serving its stale cache after the
    writer's mutation."""

    def script(env, clients, errors):
        def holder(client):
            try:
                open_file = yield from client.create("hot")
                for index in range(4):
                    yield from client.write_stream(
                        open_file, patterned_chunk(index, CHUNK)
                    )
                yield env.timeout(3.5)  # partitioned well past the TTL
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"holder: {exc}")

        def writer(client):
            yield env.timeout(0.2)
            try:
                open_file = yield from client.open("hot")
                yield from client.write_stream(open_file, patterned_chunk(42, CHUNK))
                yield from client.close(open_file)
            except NfsError as exc:
                errors.append(f"writer: {exc}")

        return [
            env.process(holder(clients[0]), name="probe-holder"),
            env.process(writer(clients[1]), name="probe-writer"),
        ]

    plan = FaultPlan(
        name="partition-expiry",
        events=(
            NetworkPartition(AtTime(0.1), hosts=("client-0",), duration=3.0),
        ),
    )
    record = _probe_harness(config, plan, script)
    record["name"] = "partition_expiry"
    return record


_PROBES = (_probe_crash_mid_recall, _probe_lost_callback, _probe_partition_expiry)


# -- the report -----------------------------------------------------------------


@dataclass
class CacheReport:
    """Aggregated sweep outcome, canonically serializable."""

    config: CacheConfig
    baselines: Dict[float, dict] = field(default_factory=dict)
    grid: List[dict] = field(default_factory=list)
    workloads: List[dict] = field(default_factory=list)
    probes: List[dict] = field(default_factory=list)

    @property
    def headline(self) -> Optional[dict]:
        for cell in self.grid:
            if (
                cell["ttl"] == self.config.headline_ttl
                and cell["sharing"] == self.config.headline_sharing
            ):
                return cell
        return None

    @property
    def meets_target(self) -> bool:
        cell = self.headline
        return cell is not None and cell["reduction"] >= self.config.min_reduction

    @property
    def violations(self) -> List[str]:
        out: List[str] = []

        def _scan(prefix: str, record: dict) -> None:
            oracle = record.get("oracle")
            if oracle:
                out.extend(f"{prefix}: {v}" for v in oracle["violations"])
            out.extend(f"{prefix}: {e}" for e in record.get("errors", ()))
            if record.get("stable_violations"):
                out.append(
                    f"{prefix}: {record['stable_violations']} "
                    "stable-before-reply violations"
                )

        for sharing, record in sorted(self.baselines.items()):
            _scan(f"baseline/sharing={sharing}", record)
        for cell in self.grid:
            _scan(f"ttl={cell['ttl']}/sharing={cell['sharing']}", cell["on"])
        for arm in self.workloads:
            _scan(f"{arm['name']}/off", arm["off"])
            _scan(f"{arm['name']}/on", arm["on"])
        for probe in self.probes:
            _scan(f"chaos/{probe['name']}", probe)
        return out

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        config = self.config
        return {
            "seed": config.seed,
            "clients": config.clients,
            "ops_per_client": config.ops_per_client,
            "lease_ttls": [round(t, 9) for t in config.lease_ttls],
            "sharing_ratios": [round(s, 9) for s in config.sharing_ratios],
            "baselines": {
                str(sharing): record
                for sharing, record in sorted(self.baselines.items())
            },
            "grid": self.grid,
            "headline": {
                "ttl": config.headline_ttl,
                "sharing": config.headline_sharing,
                "min_reduction": config.min_reduction,
                "reduction": (
                    self.headline["reduction"] if self.headline is not None else 0.0
                ),
                "meets_target": self.meets_target,
            },
            "workloads": self.workloads,
            "chaos": self.probes,
            "clean": self.clean,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _run_cache(config: Optional[CacheConfig] = None, progress=None) -> CacheReport:
    """Run the whole sweep; ``progress`` (if given) is called with a line
    of text after every completed section."""
    config = config or CacheConfig()
    report = CacheReport(config=config)
    for sharing in config.sharing_ratios:
        report.baselines[sharing] = _run_shared_arm(config, None, sharing)
    for ttl in config.lease_ttls:
        for sharing in config.sharing_ratios:
            on = _run_shared_arm(config, ttl, sharing)
            off = report.baselines[sharing]
            cell = {
                "ttl": ttl,
                "sharing": sharing,
                "off_rpcs_per_op": off["rpcs_per_op"],
                "on": on,
                "reduction": _reduction(off, on),
            }
            report.grid.append(cell)
            if progress is not None:
                progress(
                    f"ttl={ttl:g}s sharing={sharing:g}: rpc/op "
                    f"{off['rpcs_per_op']} -> {on['rpcs_per_op']} "
                    f"(x{cell['reduction']:g})"
                )
    for name in config.workloads:
        profile = _PROFILES[name]
        off = profile(config, None)
        on = profile(config, config.headline_ttl)
        arm = {"name": name, "off": off, "on": on, "reduction": _reduction(off, on)}
        report.workloads.append(arm)
        if progress is not None:
            progress(
                f"workload {name}: rpc/op {off['rpcs_per_op']} -> "
                f"{on['rpcs_per_op']} (x{arm['reduction']:g})"
            )
    if config.chaos:
        for probe in _PROBES:
            record = probe(config)
            report.probes.append(record)
            if progress is not None:
                status = "clean" if record["clean"] else "VIOLATED"
                progress(f"chaos {record['name']}: {status}")
    return report


def run_cache(config: Optional[CacheConfig] = None, progress=None) -> CacheReport:
    """Deprecated entry point; use :func:`repro.experiments.run` with
    ``ExperimentSpec(kind="cache", config=CacheConfig(...))``."""
    warnings.warn(
        "run_cache() is deprecated; use repro.experiments.run("
        "ExperimentSpec(kind='cache', config=CacheConfig(...)))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_cache(config, progress=progress)
