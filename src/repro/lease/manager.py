"""Server-side lease table: grant, recall, expire, grace.

One :class:`LeaseManager` per server.  Grants are computed after an action
completes and ride back piggybacked on the :class:`~repro.rpc.messages.RpcReply`
(``reply.lease``); conflicts are quiesced *before* a mutating action runs
(:meth:`LeaseManager.before`), by recalling every conflicting holder over a
dedicated callback endpoint (``{host}.cb`` — the server's main inbox is a
single-consumer socket buffer, so callback replies need their own).

Two invariants the staleness oracle checks:

* a mutation executes only after every conflicting lease is acked away or
  expired — so no holder can keep serving data the mutation invalidates;
* the recall wait is bounded by the lease TTL, so a partitioned holder
  stalls a writer for at most one TTL (the Gray & Cheriton argument).

The table is volatile: a crash empties it and opens a one-TTL *grace
period* during which mutations wait, so pre-crash leases (which the new
incarnation no longer remembers) drain by expiry before anything can
conflict with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.nfs.protocol import (
    PROC_CB_RECALL,
    PROC_CREATE,
    PROC_GETATTR,
    PROC_LOOKUP,
    PROC_READ,
    PROC_READDIR,
    PROC_READLINK,
    PROC_REMOVE,
    PROC_RENAME,
    PROC_SETATTR,
    PROC_SYMLINK,
    PROC_WRITE,
    RecallArgs,
)
from repro.obs import registry_for
from repro.rpc.client import RpcClient, RpcTimeoutError, RpcTimeoutPolicy
from repro.rpc.messages import CLASS_LIGHT, RPC_HEADER_BYTES
from repro.sim import Environment, Event

__all__ = ["LEASE_READ", "LEASE_WRITE", "Lease", "LeaseGrant", "LeaseManager"]

LEASE_READ = "read"
LEASE_WRITE = "write"

#: Retry budget for one recall callback; expiry bounds the *wait* either
#: way, this merely stops the background sender from retrying forever.
RECALL_MAX_ATTEMPTS = 8


@dataclass(frozen=True)
class LeaseGrant:
    """What the client receives: one lease on one file handle."""

    fhandle: tuple
    mode: str
    #: Absolute simulation time the lease dies.  The simulated cluster
    #: shares one clock, so client and server agree on it exactly.
    expires_at: float


class Lease:
    """Server-side record of one holder's lease."""

    __slots__ = ("mode", "expires_at")

    def __init__(self, mode: str, expires_at: float) -> None:
        self.mode = mode
        self.expires_at = expires_at


class LeaseManager:
    """Grants, tracks, recalls, and expires leases for one server."""

    def __init__(
        self,
        env: Environment,
        segment,
        host: str,
        ttl: float,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.env = env
        self.host = host
        self.ttl = ttl
        #: Callback transport: its own endpoint (socket buffers are
        #: single-consumer; sharing the server inbox would steal request
        #: datagrams) named after the replica-host convention.
        self.cb_endpoint = segment.attach(f"{host}.cb")
        self.cb = RpcClient(
            env,
            self.cb_endpoint,
            server=host,
            policy=RpcTimeoutPolicy(max_attempts=RECALL_MAX_ATTEMPTS),
        )
        #: fhandle -> {client host -> Lease}.
        self._holders: Dict[tuple, Dict[str, Lease]] = {}
        #: In-flight recalls, (fhandle, holder) -> ack Event, so concurrent
        #: mutators share one callback instead of raising a CB storm.
        self._recalls: Dict[Tuple[tuple, str], Event] = {}
        #: End of the post-crash grace period (mutations wait until then).
        self.grace_until = 0.0
        #: Staleness-oracle hook: called as ``(fhandle, client)`` right
        #: before a quiesced mutation executes.
        self.on_mutate = None
        metrics = registry_for(env)
        prefix = f"leases.{host}"
        self.granted = metrics.counter(f"{prefix}.granted")
        self.recalls_sent = metrics.counter(f"{prefix}.recalls")
        self.recall_acks = metrics.counter(f"{prefix}.recall_acks")
        self.recall_expirations = metrics.counter(f"{prefix}.recall_expirations")
        self.grace_delays = metrics.counter(f"{prefix}.grace_delays")

    # -- queries -----------------------------------------------------------------

    def holds(self, fhandle: tuple, client: str) -> bool:
        """Does ``client`` hold an unexpired lease on ``fhandle``?"""
        lease = self._holders.get(fhandle, {}).get(client)
        return lease is not None and lease.expires_at > self.env.now

    def holder_count(self, fhandle: tuple) -> int:
        now = self.env.now
        return sum(
            1
            for lease in self._holders.get(fhandle, {}).values()
            if lease.expires_at > now
        )

    # -- granting ----------------------------------------------------------------

    def _grant(self, fhandle: tuple, mode: str, client: str) -> LeaseGrant:
        holders = self._holders.setdefault(fhandle, {})
        existing = holders.get(client)
        if existing is not None and existing.mode == LEASE_WRITE:
            mode = LEASE_WRITE  # a refresh never silently downgrades
        expires_at = self.env.now + self.ttl
        holders[client] = Lease(mode, expires_at)
        self.granted.add(1)
        return LeaseGrant(fhandle, mode, expires_at)

    def grants_for(self, proc: str, args, result, client: str) -> Optional[tuple]:
        """The grant tuple to piggyback on a successful ``proc`` reply.

        Read leases on lookup (directory *and* file — the dir lease covers
        the client's positive and negative dirent cache), getattr, read,
        readdir, and readlink; a write lease on create (the creator may
        write back lazily until someone else opens the file).
        """
        if proc == PROC_LOOKUP:
            fhandle, _fattr = result
            return (
                self._grant(args.dir_fhandle, LEASE_READ, client),
                self._grant(fhandle, LEASE_READ, client),
            )
        if proc in (PROC_GETATTR, PROC_READDIR, PROC_READLINK):
            return (self._grant(args, LEASE_READ, client),)
        if proc == PROC_READ:
            return (self._grant(args.fhandle, LEASE_READ, client),)
        if proc == PROC_CREATE:
            fhandle, _fattr = result
            return (self._grant(fhandle, LEASE_WRITE, client),)
        return None

    def grants_for_negative_lookup(self, args, client: str) -> tuple:
        """An ENOENT lookup still grants the dir lease, so the client may
        cache the *negative* entry until a create invalidates it."""
        return (self._grant(args.dir_fhandle, LEASE_READ, client),)

    def renew(self, args, client: str) -> Generator:
        """LEASE_RENEW action: re-grant whatever is conflict-free.

        Used to refresh a lease about to expire and — after a shard
        promotion — to re-register leases with the new primary, whose
        table is empty.  Conflicted wants are silently dropped from the
        grant list; the client revalidates those the slow way.
        """
        grants = []
        now = self.env.now
        for fhandle, mode in args.wants:
            holders = self._holders.get(fhandle, {})
            conflict = False
            for holder, lease in holders.items():
                if holder == client or lease.expires_at <= now:
                    continue
                if mode == LEASE_WRITE or lease.mode == LEASE_WRITE:
                    conflict = True
                    break
            if not conflict:
                grants.append(self._grant(fhandle, mode, client))
        return tuple(grants), RPC_HEADER_BYTES
        yield  # pragma: no cover - generator form for action-routine parity

    # -- conflict quiescing -------------------------------------------------------

    #: proc -> (keys-extractor, required mode).  Mutations need exclusive
    #: access (recall every other holder); reads only conflict with another
    #: client's *write* lease (its cache may hold dirty data newer than us).
    def _affected(self, proc: str, args):
        if proc == PROC_WRITE:
            return (args.fhandle,), LEASE_WRITE
        if proc == PROC_SETATTR:
            return (args.fhandle,), LEASE_WRITE
        if proc in (PROC_CREATE, PROC_REMOVE, PROC_SYMLINK):
            return (args.dir_fhandle,), LEASE_WRITE
        if proc == PROC_RENAME:
            return (args.src_dir_fhandle, args.dst_dir_fhandle), LEASE_WRITE
        if proc == PROC_GETATTR or proc == PROC_READDIR:
            return (args,), LEASE_READ
        if proc == PROC_READ:
            return (args.fhandle,), LEASE_READ
        if proc == PROC_LOOKUP:
            return (args.dir_fhandle,), LEASE_READ
        return None

    def before(self, proc: str, args, client: str) -> Generator:
        """Quiesce conflicting leases before ``proc`` executes.

        Generator; returns without yielding when there is nothing to do
        (the common case), so enabling leases adds no simulated latency to
        an uncontended operation.
        """
        affected = self._affected(proc, args)
        if affected is None:
            return
        keys, mode = affected
        if mode == LEASE_WRITE and self.env.now < self.grace_until:
            # Post-crash grace: pre-crash leases the new incarnation no
            # longer remembers must drain by expiry before any mutation.
            self.grace_delays.add(1)
            yield self.env.timeout(self.grace_until - self.env.now)
        for key in keys:
            yield from self._quiesce(key, mode, client)
        if mode == LEASE_WRITE and self.on_mutate is not None:
            for key in keys:
                self.on_mutate(key, client)

    def _quiesce(self, key: tuple, mode: str, requester: str) -> Generator:
        holders = self._holders.get(key)
        if not holders:
            return
        now = self.env.now
        targets = []
        for holder, lease in list(holders.items()):
            if lease.expires_at <= now:
                del holders[holder]
                continue
            if holder == requester:
                continue  # own lease never conflicts (flush-during-recall)
            if mode == LEASE_READ and lease.mode == LEASE_READ:
                continue
            targets.append((holder, lease))
        # Start every recall first (they progress in parallel), then wait
        # each out; every wait is bounded by that lease's expiry.
        started = [
            (holder, lease, self._start_recall(key, holder)) for holder, lease in targets
        ]
        for holder, lease, ack in started:
            yield from self._await_quiesced(key, holder, lease, ack)

    def _start_recall(self, key: tuple, holder: str) -> Event:
        ack = self._recalls.get((key, holder))
        if ack is None:
            ack = Event(self.env)
            self._recalls[(key, holder)] = ack
            self.env.process(
                self._drive_recall(key, holder, ack), name=f"recall@{self.host}"
            )
        return ack

    def _drive_recall(self, key: tuple, holder: str, ack: Event):
        self.recalls_sent.add(1)
        try:
            yield from self.cb.call(
                PROC_CB_RECALL,
                RecallArgs(key),
                size=RPC_HEADER_BYTES,
                weight=CLASS_LIGHT,
                server=holder,
            )
        except RpcTimeoutError:
            # Lost callback (partition, crash-dead client): the waiter has
            # long since fallen back to lease expiry.
            return
        finally:
            self._recalls.pop((key, holder), None)
        self.recall_acks.add(1)
        if not ack.triggered:
            ack.succeed()

    def _await_quiesced(self, key: tuple, holder: str, lease: Lease, ack: Event):
        """Wait for the recall ack or the lease's expiry, whichever first."""
        if not ack.triggered:
            remaining = lease.expires_at - self.env.now
            if remaining > 0:
                wait = Event(self.env)

                def _first(_event: Event, w: Event = wait) -> None:
                    if not w.triggered:
                        w.succeed()

                self.env.timeout(remaining).callbacks.append(_first)
                ack.callbacks.append(_first)
                yield wait
            if not ack.triggered:
                self.recall_expirations.add(1)
        holders = self._holders.get(key)
        if holders is not None:
            holders.pop(holder, None)

    # -- crash -------------------------------------------------------------------

    def reset_volatile(self) -> None:
        """Crash semantics: the table is RAM; grace covers its ghosts."""
        self._holders.clear()
        self._recalls.clear()
        self.grace_until = self.env.now + self.ttl
        self.cb_endpoint.inbox.reset_volatile()
