"""Storage devices: the abstract interface and the single-spindle device.

Every durable medium in the reproduction (plain disk, stripe set, NVRAM
front-end) implements :class:`Storage`: ``submit()`` returns an event that
fires when the request's bytes are *stable* on that medium.  The filesystem
and the NFS write paths only ever talk to a :class:`Storage`, which is what
lets the Presto duality of §6.3 slot in transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.disk.model import DiskModel, DiskSpec
from repro.disk.stats import IoStats
from repro.obs import PHASE_DISK_IO, collector_for
from repro.sim import Environment, Event

__all__ = ["IoRequest", "Storage", "DiskDevice", "SCHEDULER_FIFO", "SCHEDULER_ELEVATOR"]


@dataclass
class IoRequest:
    """One I/O transaction submitted to a storage device."""

    offset: int
    nbytes: int
    is_write: bool = True
    #: What the bytes are, for accounting: "data", "inode", "indirect",
    #: "presto-flush", ...
    kind: str = "data"
    #: Completion event, filled in by the device.
    done: Optional[Event] = field(default=None, repr=False)
    #: Simulation time the request entered the device queue.
    queued_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"IoRequest length must be positive, got {self.nbytes}")
        if self.offset < 0:
            raise ValueError(f"IoRequest offset must be >= 0, got {self.offset}")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class Storage:
    """Abstract stable-storage device."""

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self.stats = IoStats(env, name)

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        """Queue a transaction; the returned event fires when it is stable."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        """Number of requests queued but not yet completed."""
        raise NotImplementedError

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- media-fault hooks (default: perfect media) ---------------------
    # Latent sector errors are a *registry*, not per-request state: the
    # device keeps serving timings as usual, and the filesystem asks
    # ``latent_overlap`` on its read paths to learn the medium failed.
    # Composite devices (stripe sets, NVRAM front-ends) forward these
    # down the chain.

    def inject_latent(self, offset: int, nbytes: int) -> None:
        """Mark ``[offset, offset+nbytes)`` unreadable.  Default: no-op."""

    def heal_latent(self, offset: int, nbytes: int) -> None:
        """Clear latent errors overlapping the range.  Default: no-op."""

    def latent_overlap(self, offset: int, nbytes: int) -> bool:
        """True if a read of the range would hit a latent sector error."""
        return False


SCHEDULER_FIFO = "fifo"
SCHEDULER_ELEVATOR = "elevator"


class DiskDevice(Storage):
    """A single spindle served one request at a time by a :class:`DiskModel`.

    Two queueing disciplines:

    * ``fifo`` (default, and what the paper's drivers did) — requests are
      served in arrival order;
    * ``elevator`` — C-SCAN by byte offset, an extension ablation: with a
      deep queue of seeking requests it trades fairness for fewer seeks,
      attacking the same cost write gathering attacks at a higher layer.
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        name: str = "",
        scheduler: str = SCHEDULER_FIFO,
    ) -> None:
        if scheduler not in (SCHEDULER_FIFO, SCHEDULER_ELEVATOR):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        super().__init__(env, name or spec.name)
        self.obs = collector_for(env)
        self.spec = spec
        self.scheduler = scheduler
        self.model = DiskModel(spec)
        # Service-time degradation is a *base* factor times a stack of
        # revocable fault tokens, so two overlapping faults compose
        # multiplicatively and each revert restores exactly the state the
        # other fault expects (see push_slowdown/pop_slowdown).
        self._base_slowdown = 1.0
        self._slowdown_tokens: Dict[int, float] = {}
        self._next_token = 0
        self._effective_slowdown = 1.0
        #: Latent sector errors: ``(start, end) -> injected_at`` ranges a
        #: read would fail on.  Empty on healthy media.
        self._latent: Dict[Tuple[int, int], float] = {}
        self._pending: list = []
        self._signal = env.event()
        self._in_flight = 0
        env.process(self._serve(), name=f"disk:{self.name}")

    @property
    def slowdown(self) -> float:
        """Effective service-time multiplier.  1.0 = healthy."""
        return self._effective_slowdown

    def _recompute_slowdown(self) -> None:
        effective = self._base_slowdown
        for factor in self._slowdown_tokens.values():
            effective *= factor
        self._effective_slowdown = effective

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the spindle: multiply service times by
        ``factor``.  Requests already being served are unaffected.

        This sets the *base* factor; fault windows stacked with
        :meth:`push_slowdown` multiply on top of it."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self._base_slowdown = factor
        self._recompute_slowdown()

    def push_slowdown(self, factor: float) -> int:
        """Stack a revocable degradation on the spindle; returns a token
        for :meth:`pop_slowdown`.  Overlapping faults compose as a product
        and revert in any order without clobbering each other."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        token = self._next_token
        self._next_token += 1
        self._slowdown_tokens[token] = factor
        self._recompute_slowdown()
        return token

    def pop_slowdown(self, token: int) -> None:
        """Revert one :meth:`push_slowdown`; unknown tokens are no-ops
        (the fault may have been cleared wholesale)."""
        if self._slowdown_tokens.pop(token, None) is not None:
            self._recompute_slowdown()

    # -- latent sector errors -------------------------------------------

    def inject_latent(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError(f"latent range must be positive, got {nbytes}")
        self._latent[(offset, offset + nbytes)] = self.env.now

    def heal_latent(self, offset: int, nbytes: int) -> None:
        end = offset + nbytes
        for span in [s for s in self._latent if s[0] < end and offset < s[1]]:
            del self._latent[span]

    def latent_overlap(self, offset: int, nbytes: int) -> bool:
        if not self._latent:
            return False
        end = offset + nbytes
        return any(start < end and offset < stop for start, stop in self._latent)

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        request = IoRequest(offset=offset, nbytes=nbytes, is_write=is_write, kind=kind)
        request.done = self.env.event()
        request.queued_at = self.env.now
        self._in_flight += 1
        self._pending.append(request)
        if not self._signal.triggered:
            self._signal.succeed()
        return request.done

    def queue_depth(self) -> int:
        return self._in_flight

    def _pick(self) -> IoRequest:
        if self.scheduler == SCHEDULER_FIFO or len(self._pending) == 1:
            return self._pending.pop(0)
        head = self.model._head or 0
        ahead = [r for r in self._pending if r.offset >= head]
        candidates = ahead or self._pending  # C-SCAN: sweep up, then wrap
        choice = min(candidates, key=lambda r: r.offset)
        self._pending.remove(choice)
        return choice

    def _serve(self):
        while True:
            if not self._pending:
                self._signal = self.env.event()
                yield self._signal
                continue
            request = self._pick()
            service_started = self.env.now
            self.stats.busy.begin()
            yield self.env.timeout(
                self.model.service_time(request.offset, request.nbytes) * self.slowdown
            )
            self.stats.busy.end()
            self.stats.record(request.nbytes, request.is_write, request.kind)
            if request.is_write and self._latent:
                # Writing over a latent sector relocates/refreshes it.
                self.heal_latent(request.offset, request.nbytes)
            self._in_flight -= 1
            if self.obs.enabled:
                self.obs.emit(
                    PHASE_DISK_IO,
                    self.name,
                    service_started,
                    self.env.now,
                    kind=request.kind,
                    bytes=request.nbytes,
                    is_write=request.is_write,
                    queued_at=request.queued_at,
                )
            request.done.succeed(request)
