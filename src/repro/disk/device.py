"""Storage devices: the abstract interface and the single-spindle device.

Every durable medium in the reproduction (plain disk, stripe set, NVRAM
front-end) implements :class:`Storage`: ``submit()`` returns an event that
fires when the request's bytes are *stable* on that medium.  The filesystem
and the NFS write paths only ever talk to a :class:`Storage`, which is what
lets the Presto duality of §6.3 slot in transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.disk.model import DiskModel, DiskSpec
from repro.disk.stats import IoStats
from repro.obs import PHASE_DISK_IO, collector_for
from repro.sim import Environment, Event

__all__ = ["IoRequest", "Storage", "DiskDevice", "SCHEDULER_FIFO", "SCHEDULER_ELEVATOR"]


@dataclass
class IoRequest:
    """One I/O transaction submitted to a storage device."""

    offset: int
    nbytes: int
    is_write: bool = True
    #: What the bytes are, for accounting: "data", "inode", "indirect",
    #: "presto-flush", ...
    kind: str = "data"
    #: Completion event, filled in by the device.
    done: Optional[Event] = field(default=None, repr=False)
    #: Simulation time the request entered the device queue.
    queued_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"IoRequest length must be positive, got {self.nbytes}")
        if self.offset < 0:
            raise ValueError(f"IoRequest offset must be >= 0, got {self.offset}")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class Storage:
    """Abstract stable-storage device."""

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self.stats = IoStats(env, name)

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        """Queue a transaction; the returned event fires when it is stable."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        """Number of requests queued but not yet completed."""
        raise NotImplementedError

    def reset_stats(self) -> None:
        self.stats.reset()


SCHEDULER_FIFO = "fifo"
SCHEDULER_ELEVATOR = "elevator"


class DiskDevice(Storage):
    """A single spindle served one request at a time by a :class:`DiskModel`.

    Two queueing disciplines:

    * ``fifo`` (default, and what the paper's drivers did) — requests are
      served in arrival order;
    * ``elevator`` — C-SCAN by byte offset, an extension ablation: with a
      deep queue of seeking requests it trades fairness for fewer seeks,
      attacking the same cost write gathering attacks at a higher layer.
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        name: str = "",
        scheduler: str = SCHEDULER_FIFO,
    ) -> None:
        if scheduler not in (SCHEDULER_FIFO, SCHEDULER_ELEVATOR):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        super().__init__(env, name or spec.name)
        self.obs = collector_for(env)
        self.spec = spec
        self.scheduler = scheduler
        self.model = DiskModel(spec)
        #: Service-time multiplier (fault injection: a degraded spindle
        #: retrying sectors).  1.0 = healthy.
        self.slowdown = 1.0
        self._pending: list = []
        self._signal = env.event()
        self._in_flight = 0
        env.process(self._serve(), name=f"disk:{self.name}")

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the spindle: multiply service times by
        ``factor``.  Requests already being served are unaffected."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self.slowdown = factor

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        request = IoRequest(offset=offset, nbytes=nbytes, is_write=is_write, kind=kind)
        request.done = self.env.event()
        request.queued_at = self.env.now
        self._in_flight += 1
        self._pending.append(request)
        if not self._signal.triggered:
            self._signal.succeed()
        return request.done

    def queue_depth(self) -> int:
        return self._in_flight

    def _pick(self) -> IoRequest:
        if self.scheduler == SCHEDULER_FIFO or len(self._pending) == 1:
            return self._pending.pop(0)
        head = self.model._head or 0
        ahead = [r for r in self._pending if r.offset >= head]
        candidates = ahead or self._pending  # C-SCAN: sweep up, then wrap
        choice = min(candidates, key=lambda r: r.offset)
        self._pending.remove(choice)
        return choice

    def _serve(self):
        while True:
            if not self._pending:
                self._signal = self.env.event()
                yield self._signal
                continue
            request = self._pick()
            service_started = self.env.now
            self.stats.busy.begin()
            yield self.env.timeout(
                self.model.service_time(request.offset, request.nbytes) * self.slowdown
            )
            self.stats.busy.end()
            self.stats.record(request.nbytes, request.is_write, request.kind)
            self._in_flight -= 1
            if self.obs.enabled:
                self.obs.emit(
                    PHASE_DISK_IO,
                    self.name,
                    service_started,
                    self.env.now,
                    kind=request.kind,
                    bytes=request.nbytes,
                    is_write=request.is_write,
                    queued_at=request.queued_at,
                )
            request.done.succeed(request)
