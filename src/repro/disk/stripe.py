"""RAID-0 style striping driver (the "disk striping driver" of the paper).

Tables 5 and 6 use "a stripe set of three RZ26 disks".  The driver here maps
the logical byte space round-robin across member disks in fixed-size stripe
units, coalesces the chunks of one logical request that land on the same
member into a single contiguous member transaction (consecutive units on a
member are adjacent in member LBA space), issues the member transactions in
parallel, and completes when all members have committed.

This is why striping pays off so much more *with* gathering: a gathered 64K
cluster becomes one ~21K contiguous write per member running on three
spindles at once, while ungathered 8K writes serialize on whichever member
holds the inode block.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.disk.device import Storage
from repro.disk.stats import IoStats
from repro.sim import AllOf, Environment, Event

__all__ = ["StripeSet"]


class StripeSet(Storage):
    """Stripes a logical byte space over member :class:`Storage` devices."""

    def __init__(
        self,
        env: Environment,
        members: Sequence[Storage],
        stripe_unit: int = 8192,
        name: str = "stripe",
    ) -> None:
        if not members:
            raise ValueError("StripeSet requires at least one member disk")
        if stripe_unit <= 0:
            raise ValueError(f"stripe unit must be positive, got {stripe_unit}")
        super().__init__(env, name)
        self.members = list(members)
        self.stripe_unit = stripe_unit

    def map_extent(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Map a logical extent to ``(member_index, member_offset, length)``.

        Chunks landing on the same member are coalesced into one contiguous
        member extent per logical request.
        """
        ndisks = len(self.members)
        unit = self.stripe_unit
        per_member: Dict[int, List[Tuple[int, int]]] = {}
        cursor = offset
        remaining = nbytes
        while remaining > 0:
            unit_index = cursor // unit
            within = cursor - unit_index * unit
            take = min(remaining, unit - within)
            member = unit_index % ndisks
            member_offset = (unit_index // ndisks) * unit + within
            per_member.setdefault(member, []).append((member_offset, take))
            cursor += take
            remaining -= take
        extents: List[Tuple[int, int, int]] = []
        for member, pieces in sorted(per_member.items()):
            start = min(piece_offset for piece_offset, _length in pieces)
            end = max(piece_offset + length for piece_offset, length in pieces)
            extents.append((member, start, end - start))
        return extents

    def submit(self, offset: int, nbytes: int, is_write: bool = True, kind: str = "data") -> Event:
        parts = [
            self.members[member].submit(member_offset, length, is_write, kind)
            for member, member_offset, length in self.map_extent(offset, nbytes)
        ]
        if len(parts) == 1:
            return parts[0]
        return AllOf(self.env, parts)

    def queue_depth(self) -> int:
        return sum(member.queue_depth() for member in self.members)

    # Media faults map through the same extent geometry as the data.

    def inject_latent(self, offset: int, nbytes: int) -> None:
        for member, member_offset, length in self.map_extent(offset, nbytes):
            self.members[member].inject_latent(member_offset, length)

    def heal_latent(self, offset: int, nbytes: int) -> None:
        for member, member_offset, length in self.map_extent(offset, nbytes):
            self.members[member].heal_latent(member_offset, length)

    def latent_overlap(self, offset: int, nbytes: int) -> bool:
        return any(
            self.members[member].latent_overlap(member_offset, length)
            for member, member_offset, length in self.map_extent(offset, nbytes)
        )

    @property
    def aggregate_stats(self) -> IoStats:
        """Fresh aggregate of all member counters (rates use member windows)."""
        total = IoStats(self.env, f"{self.name}.aggregate")
        for member in self.members:
            total.merge_from(member.stats)
        # Rate windows: reuse the earliest member start so kb/tps are correct.
        total.transactions._start = min(m.stats.transactions._start for m in self.members)
        total.bytes._start = min(m.stats.bytes._start for m in self.members)
        return total

    def reset_stats(self) -> None:
        super().reset_stats()
        for member in self.members:
            member.reset_stats()
