"""Per-device and aggregate I/O statistics.

These counters produce exactly the "server disk (KB/sec)" and "server disk
(trans/sec)" rows of the paper's tables.
"""

from __future__ import annotations

from repro.sim import Counter, Environment, UtilizationMeter

__all__ = ["IoStats"]


class IoStats:
    """Counts transactions and bytes moved by a storage device."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self.transactions = Counter(env, f"{name}.transactions")
        self.bytes = Counter(env, f"{name}.bytes")
        self.reads = Counter(env, f"{name}.reads")
        self.writes = Counter(env, f"{name}.writes")
        self.busy = UtilizationMeter(env, f"{name}.busy")
        self.by_kind: dict[str, float] = {}

    def record(self, nbytes: float, is_write: bool, kind: str) -> None:
        """Account one completed transaction."""
        self.transactions.add(1)
        self.bytes.add(nbytes)
        if is_write:
            self.writes.add(1)
        else:
            self.reads.add(1)
        self.by_kind[kind] = self.by_kind.get(kind, 0.0) + 1.0

    def reset(self) -> None:
        """Zero all counters; used between experiment warmup and measurement."""
        self.transactions.reset()
        self.bytes.reset()
        self.reads.reset()
        self.writes.reset()
        self.busy.reset()
        self.by_kind.clear()

    # -- paper-table quantities -------------------------------------------

    def kb_per_second(self) -> float:
        """Device throughput in KB/s over the measurement window."""
        return self.bytes.rate() / 1024.0

    def transactions_per_second(self) -> float:
        """Device transaction rate over the measurement window."""
        return self.transactions.rate()

    def merge_from(self, other: "IoStats") -> None:
        """Fold another device's counters into this aggregate view."""
        self.transactions.add(other.transactions.value)
        self.bytes.add(other.bytes.value)
        self.reads.add(other.reads.value)
        self.writes.add(other.writes.value)
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0.0) + count
