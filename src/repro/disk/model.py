"""Disk service-time model calibrated against the paper's RZ26 numbers.

The paper's evaluation hinges on two disk facts:

* small synchronous writes are dominated by positioning: an 8K write costs a
  seek plus half a rotation, yielding roughly 60-75 transactions/s and
  ~500-600 KB/s on the RZ26 (Table 1, "Without Write Gathering");
* large clustered writes approach the raw device bandwidth: 64K transfers
  peg the RZ26 at about 1.9 MB/s (Table 4 commentary: "the RZ26 disk being
  driven at the raw device write bandwidth limit for 64K transfers").

The model captures both with a classic seek curve plus rotational terms:

``service = overhead + positioning + nbytes / media_rate``

where positioning is

* a full missed revolution for a request contiguous with the previous one
  (there is no write-back controller cache — "dangerous mode" is exactly
  what the paper's servers do not use — so by the time the next contiguous
  request is issued the target sector has just passed under the head), or
* ``seek(distance) + half a revolution`` otherwise, with
  ``seek(d) = seek_min + (seek_max - seek_min) * sqrt(d / full_stroke)``.

Calibration check (RZ26 defaults): 64K contiguous = 0.7 + 11.1 + 24.6 ms
= 36.4 ms -> 1.80 MB/s; 8K with a short seek = 0.7 + 4-8 + 5.6 + 3.1 ms
= 13-17 ms -> 58-75 ops/s.  Both match the paper's measured columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DiskSpec", "DiskModel", "RZ26"]


@dataclass(frozen=True)
class DiskSpec:
    """Static parameters of a disk drive."""

    name: str
    #: Usable capacity in bytes (sets the full seek stroke).
    capacity_bytes: int
    #: Spindle speed in revolutions per minute.
    rpm: float
    #: Sustained media transfer rate in bytes/second.
    media_rate: float
    #: Track-to-track (minimum) seek in seconds.
    seek_min: float
    #: Full-stroke (maximum) seek in seconds.
    seek_max: float
    #: Fixed per-request controller/command overhead in seconds.
    overhead: float

    @property
    def revolution_time(self) -> float:
        """Seconds per platter revolution."""
        return 60.0 / self.rpm

    @property
    def rotational_latency(self) -> float:
        """Expected rotational delay after a seek: half a revolution."""
        return self.revolution_time / 2.0


#: The 1 GB SCSI drive used throughout the paper's evaluation.
RZ26 = DiskSpec(
    name="RZ26",
    capacity_bytes=1_050_000_000,
    rpm=5400,
    media_rate=2_600_000.0,
    seek_min=0.002,
    seek_max=0.019,
    overhead=0.0007,
)


class DiskModel:
    """Computes per-request service times, tracking head position.

    One instance per spindle; :meth:`service_time` is called by the device's
    serving loop with the byte offset and length of each request, in the
    order the head will see them.
    """

    def __init__(self, spec: DiskSpec) -> None:
        if spec.capacity_bytes <= 0 or spec.media_rate <= 0 or spec.rpm <= 0:
            raise ValueError(f"invalid disk spec: {spec!r}")
        self.spec = spec
        #: Byte offset just past the end of the last completed request; None
        #: until the first request (treated as a positioned-elsewhere head).
        self._head: float | None = None

    def seek_time(self, distance_bytes: float) -> float:
        """Seek duration for a head movement of ``distance_bytes``."""
        if distance_bytes <= 0:
            return 0.0
        fraction = min(1.0, distance_bytes / self.spec.capacity_bytes)
        return self.spec.seek_min + (self.spec.seek_max - self.spec.seek_min) * math.sqrt(
            fraction
        )

    def positioning_time(self, offset: float) -> float:
        """Seek + rotation cost to reach ``offset`` from the current head."""
        if self._head is not None and offset == self._head:
            # Contiguous with the previous request: the sector just slipped
            # past; wait one full revolution.  This is the "missed rotation"
            # the paper says gathering avoids.
            return self.spec.revolution_time
        distance = abs(offset - self._head) if self._head is not None else (
            self.spec.capacity_bytes / 3.0
        )
        return self.seek_time(distance) + self.spec.rotational_latency

    def service_time(self, offset: float, nbytes: float) -> float:
        """Full service time for a request, advancing the head state."""
        if nbytes <= 0:
            raise ValueError(f"request length must be positive, got {nbytes}")
        if offset < 0:
            raise ValueError(f"request offset must be >= 0, got {offset}")
        total = (
            self.spec.overhead
            + self.positioning_time(offset)
            + nbytes / self.spec.media_rate
        )
        self._head = offset + nbytes
        return total

    def reset(self) -> None:
        """Forget head position (e.g. after a simulated power cycle)."""
        self._head = None
