"""Disk substrate: calibrated spindle model, devices, and striping driver."""

from repro.disk.device import (
    SCHEDULER_ELEVATOR,
    SCHEDULER_FIFO,
    DiskDevice,
    IoRequest,
    Storage,
)
from repro.disk.model import RZ26, DiskModel, DiskSpec
from repro.disk.stats import IoStats
from repro.disk.stripe import StripeSet

__all__ = [
    "DiskSpec",
    "DiskModel",
    "RZ26",
    "DiskDevice",
    "IoRequest",
    "Storage",
    "SCHEDULER_FIFO",
    "SCHEDULER_ELEVATOR",
    "IoStats",
    "StripeSet",
]
