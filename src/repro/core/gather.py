"""The write gathering engine (§6, the paper's contribution).

The algorithm, from §6.8, as one nfsd ``D`` handed a write request runs it::

    Hand off data to UFS via VOP_WRITE (Presto: IO_SYNC|IO_DATAONLY;
                                        plain disk: IO_DELAYDATA).
    Do
        Look for another nfsd blocked on the same vnode.
        If one is,   park the reply on the active write queue,
                     return reply-pending.
        Else search the socket buffer for another write to the same file.
        If there is, park the reply, return reply-pending.
        Sleep (procrastinate) for a transport dependent interval.
    While not procrastinating more than once.
    Become the metadata writer and assume responsibility for this file:
        Flush this and other data for active writes via VOP_SYNCDATA.
        Flush the metadata via VOP_FSYNC.
        Send all pending replies for the file to the client (FIFO).
        Return reply-done.

No reply leaves the server before the shared metadata update is stable, so
the NFS crash-recovery contract holds.  §6.9's hazard — duplicates or stale
handles that looked like "another write in the socket buffer" but never
execute, orphaning parked replies — is covered by a per-file watchdog that
sweeps any queue left without a responsible nfsd.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.learned import LearnedClientDb
from repro.core.mbuf_hunter import hunt
from repro.core.policy import REPLY_LIFO, GatherPolicy
from repro.core.state_table import (
    STAGE_FLUSHING,
    STAGE_GATHER_WAIT,
    STAGE_WRITING,
    NfsdStateTable,
)
from repro.core.write_queue import ActiveWriteQueue, WriteDescriptor, WriteQueueRegistry
from repro.fs.ufs import FsError
from repro.fs.vfs import (
    FWRITE,
    FWRITE_METADATA,
    IO_DATAONLY,
    IO_DELAYDATA,
    IO_SYNC,
    Vnode,
)
from repro.nfs.protocol import Fattr
from repro.obs import (
    PHASE_COMMIT,
    PHASE_PARKED,
    PHASE_PROCRASTINATE,
    PHASE_REPLICATE,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
    registry_for,
)
from repro.rpc.server import REPLY_DONE, REPLY_PENDING, TransportHandle

__all__ = ["GatheringWritePath", "GatherStats"]


class GatherStats:
    """Observability for gathering success rates (§6.6 monitoring).

    Instruments live in the environment's central
    :class:`~repro.obs.registry.MetricsRegistry` under ``prefix``.
    """

    def __init__(self, env, prefix: str = "gather") -> None:
        metrics = registry_for(env)
        self.writes = metrics.counter(f"{prefix}.writes")
        self.batches = metrics.counter(f"{prefix}.batches")
        self.batch_size = metrics.tally(f"{prefix}.batch_size", keep_samples=True)
        self.procrastinations = metrics.counter(f"{prefix}.procrastinations")
        self.handoffs_nfsd = metrics.counter(f"{prefix}.handoffs.nfsd")
        self.handoffs_mbuf = metrics.counter(f"{prefix}.handoffs.mbuf")
        self.watchdog_sweeps = metrics.counter(f"{prefix}.watchdog_sweeps")
        self.skipped_procrastinations = metrics.counter(f"{prefix}.learned_skips")
        self.forced_flushes = metrics.counter(f"{prefix}.forced_flushes")

    def gather_success_rate(self) -> float:
        """Fraction of writes that shared their metadata update.

        Each singleton batch is one write that gathered nothing; every
        other write amortized its metadata update with at least one peer.
        """
        if self.writes.value == 0:
            return 0.0
        singles = sum(1 for s in (self.batch_size._samples or []) if s <= 1)
        return 1.0 - singles / self.writes.value

    def mean_batch_size(self) -> float:
        return self.batch_size.mean


class GatheringWritePath:
    """The gathering rfs_write implementation.

    ``server`` provides the shared context: ``env``, ``svc``, ``vnodes``,
    ``cpu``, ``endpoint``, ``spec`` (NetSpec), ``config`` (reply CPU cost),
    and optionally ``check_stable(vnode, descriptor)``.
    """

    def __init__(self, server, policy: Optional[GatherPolicy] = None) -> None:
        self.server = server
        self.env = server.env
        self.policy = policy or GatherPolicy()
        self.state_table = NfsdStateTable(server.config.nfsds)
        self.queues = WriteQueueRegistry()
        self.stats = GatherStats(server.env, prefix=f"{server.host}.gather")
        self.learned = (
            LearnedClientDb(threshold=self.policy.learned_threshold)
            if self.policy.learned_clients
            else None
        )
        #: early_wakeup: per-file events triggered when a new write for
        #: that file enters the write path.
        self._arrival_events: dict = {}

    # -- configuration ---------------------------------------------------------

    @property
    def interval(self) -> float:
        """Procrastination interval: policy override or transport default."""
        if self.policy.interval is not None:
            return self.policy.interval
        return self.server.spec.gather_interval

    # -- the algorithm -----------------------------------------------------------

    def handle(self, nfsd_id: int, handle: TransportHandle) -> Generator:
        """Process one WRITE; returns REPLY_DONE or REPLY_PENDING."""
        call = handle.call
        args = call.args
        try:
            vnode = self.server.vnodes.by_fhandle(args.fhandle)
        except FsError as exc:
            yield from self.server.reply(handle, exc.code, None)
            return REPLY_DONE
        self.stats.writes.add(1)
        trace = self.server.trace_of(handle)
        self.state_table.set(nfsd_id, STAGE_WRITING, vnode.ino, args.offset, len(args.data))
        if self.policy.early_wakeup:
            self._signal_arrival(vnode.ino)

        # Hand off data to UFS via VOP_WRITE, per the §6.3 duality.  The
        # vnode sleep lock (§6.2) is held from here through the gathering
        # decision: a follower nfsd handling a write to the same file blocks
        # on this lock, where the procrastinator can *see* it and leave the
        # metadata update to it.
        ioflags = (
            IO_SYNC | IO_DATAONLY if self.server.ufs.is_accelerated else IO_DELAYDATA
        )
        lock_requested = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            self.server.emit_span(trace, PHASE_VNODE_WAIT, lock_requested, ino=vnode.ino)
            try:
                yield from vnode.vop_write(args.offset, args.data, ioflags)
            except FsError as exc:
                self.state_table.clear(nfsd_id)
                yield from self.server.reply(handle, exc.code, None)
                return REPLY_DONE

            queue = self.queues.for_vnode(vnode)
            queue.append(
                WriteDescriptor(
                    handle=handle,
                    offset=args.offset,
                    length=len(args.data),
                    client=call.client,
                    enqueued_at=self.env.now,
                    data=args.data,
                    trace=trace,
                )
            )

            procrastinations = 0
            while True:
                self.state_table.set(nfsd_id, STAGE_GATHER_WAIT, vnode.ino)
                # Backpressure: at the parked-descriptor cap, stop looking
                # for followers and flush right now — under a retransmit
                # storm the "evidence of more writes coming" never dries
                # up, and every parked reply pins a handle and its data.
                if (
                    self.policy.max_parked is not None
                    and len(queue) >= self.policy.max_parked
                ):
                    self.stats.forced_flushes.add(1)
                    break
                # Look for another nfsd blocked on the same vnode (or about
                # to be: decoding a write for this file).
                if vnode.waiters() > 0 or self.state_table.another_write_incoming(
                    vnode.ino, exclude=nfsd_id
                ):
                    self.stats.handoffs_nfsd.add(1)
                    self._arm_watchdog(queue)
                    self.state_table.clear(nfsd_id)
                    return REPLY_PENDING
                # Search the socket buffer for another write to this file.
                if self.policy.use_mbuf_hunter and hunt(
                    self.server.endpoint.inbox, args.fhandle
                ):
                    self.stats.handoffs_mbuf.add(1)
                    self._arm_watchdog(queue)
                    self.state_table.clear(nfsd_id)
                    return REPLY_PENDING
                if procrastinations >= self._allowed_procrastinations(call.client):
                    break
                procrastinations += 1
                self.stats.procrastinations.add(1)
                nap_started = self.env.now
                if self.policy.early_wakeup:
                    # Sleep, but let the arrival of another write for this
                    # file cut the nap short.
                    arrival = self._arrival_event(vnode.ino)
                    yield self.env.any_of([self.env.timeout(self.interval), arrival])
                else:
                    yield self.env.timeout(self.interval)
                self.server.emit_span(
                    trace, PHASE_PROCRASTINATE, nap_started, nap=procrastinations
                )

            # Become the metadata writer and assume responsibility for this
            # file.  The lock stays held: writes arriving during the flush
            # queue behind it and seed the next gathering round.
            self.state_table.set(nfsd_id, STAGE_FLUSHING, vnode.ino)
            yield from self._flush_and_reply(vnode, queue)
            self.state_table.clear(nfsd_id)
            return REPLY_DONE

    def _arrival_event(self, ino: int):
        event = self._arrival_events.get(ino)
        if event is None or event.triggered:
            event = self.env.event()
            self._arrival_events[ino] = event
        return event

    def _signal_arrival(self, ino: int) -> None:
        event = self._arrival_events.get(ino)
        if event is not None and not event.triggered:
            event.succeed()

    def _allowed_procrastinations(self, client: str) -> int:
        if self.learned is not None and not self.learned.should_procrastinate(client):
            self.stats.skipped_procrastinations.add(1)
            return 0
        return self.policy.max_procrastinations

    # -- metadata writer -----------------------------------------------------------

    def _flush_and_reply(self, vnode: Vnode, queue: ActiveWriteQueue) -> Generator:
        descriptors = queue.take_all()
        if not descriptors:
            # A racing flusher (or the watchdog) already owned this batch —
            # including our own descriptor, whose reply it sent.
            return
        flush_started = self.env.now
        extent = (
            min(d.offset for d in descriptors),
            max(d.end for d in descriptors),
        )
        if not self.server.ufs.is_accelerated:
            yield from vnode.vop_syncdata(extent[0], extent[1])
        # Data (NVRAM or disk) is now stable.  Flush metadata — unless the
        # batch only moved the modify time (rewrites of allocated blocks):
        # the reference port updates a mtime-only inode asynchronously, the
        # one promise the server may not keep (§4.4), and the same
        # exemption applies to the gathered metadata update.
        inode = vnode.inode
        if inode.inode_dirty or inode.indirect_dirty:
            yield from vnode.vop_fsync(FWRITE | FWRITE_METADATA)

        # All replies in the batch carry the same file modify time.
        fattr = Fattr.from_inode(vnode.inode)
        ordered = descriptors
        if self.policy.reply_order == REPLY_LIFO:
            ordered = list(reversed(descriptors))
        crash_time = getattr(self.server, "last_crash_time", -1.0)
        for position, descriptor in enumerate(descriptors):
            if descriptor.handle.acquired_at <= crash_time:
                continue  # request died with a previous server incarnation
            superseded = any(
                later.offset < descriptor.end and descriptor.offset < later.end
                for later in descriptors[position + 1 :]
            )
            self.server.check_stable(
                vnode,
                descriptor.offset,
                descriptor.data,
                require_content=not superseded,
            )
        stable_at = self.env.now
        batch = len(descriptors)
        # Replica groups: one gathered flush ⇒ one replication message.
        # Local data+metadata are stable; the parked replies additionally
        # wait for a quorum of backups to ack stable storage (still under
        # the vnode lock, so batch sequence follows same-file commit order).
        replicator = getattr(self.server, "replicator", None)
        if replicator is not None and replicator.active:
            yield from replicator.commit_wait(
                [
                    replicator.write_op(
                        vnode, d.offset, d.data, d.handle.call, fattr
                    )
                    for d in descriptors
                ]
            )
            for descriptor in descriptors:
                self.server.emit_span(
                    descriptor.trace,
                    PHASE_REPLICATE,
                    stable_at,
                    ino=vnode.ino,
                    batch=batch,
                )
        release_at = self.env.now
        for descriptor in ordered:
            yield from self.server.reply(descriptor.handle, "ok", fattr)
            self.server.emit_span(
                descriptor.trace,
                PHASE_COMMIT,
                flush_started,
                end=stable_at,
                ino=vnode.ino,
                bytes=descriptor.length,
                batch=batch,
            )
            self.server.emit_span(
                descriptor.trace, PHASE_PARKED, descriptor.enqueued_at, end=stable_at
            )
            self.server.emit_span(descriptor.trace, PHASE_REPLY, release_at)
        self.stats.batches.add(1)
        self.stats.batch_size.observe(len(descriptors))
        if self.learned is not None:
            for descriptor in descriptors:
                self.learned.observe_batch(descriptor.client, len(descriptors))

    # -- §6.9 safety net ---------------------------------------------------------

    def _arm_watchdog(self, queue: ActiveWriteQueue) -> None:
        """Ensure parked replies can never be orphaned.

        An nfsd only parks a reply when it sees evidence of a follower; if
        the follower turns out to be a duplicate or stale request that the
        dup cache discards, nobody would flush.  The watchdog wakes after a
        few procrastination intervals and sweeps any queue that has parked
        descriptors but no responsible nfsd.
        """
        if queue.watchdog_armed:
            return
        queue.watchdog_armed = True
        self.env.process(self._watchdog(queue), name=f"gather-watchdog:{queue.vnode.ino}")

    def _watchdog(self, queue: ActiveWriteQueue):
        # Floor the period so a zero procrastination interval (an ablation
        # configuration) cannot degenerate into a zero-delay spin.
        period = max(self.interval * self.policy.watchdog_factor, 0.002)
        try:
            while len(queue) > 0:
                yield self.env.timeout(period)
                if len(queue) == 0:
                    break
                if not self.state_table.any_responsible(queue.vnode.ino):
                    self.stats.watchdog_sweeps.add(1)
                    with queue.vnode.lock.request() as grant:
                        yield grant
                        yield from self._flush_and_reply(queue.vnode, queue)
        finally:
            queue.watchdog_armed = False
