"""Write descriptors and the active write queue (§6.2).

"data structures that package up active write requests for handoff and a
queue of these active requests."  A descriptor parks a request's transport
handle (and byte range) until some nfsd — the metadata writer — commits the
shared metadata update and sends all pending replies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.rpc.server import TransportHandle

__all__ = ["WriteDescriptor", "ActiveWriteQueue", "WriteQueueRegistry"]


@dataclass
class WriteDescriptor:
    """One parked write awaiting its (shared) metadata commit."""

    handle: TransportHandle
    offset: int
    length: int
    client: str
    enqueued_at: float
    #: Bytes as received; kept so the stable-storage invariant can be
    #: checked against the durable image at reply time.
    data: Optional[bytes] = field(default=None, repr=False)
    #: Observability trace of the parked request; the metadata writer
    #: (possibly a different nfsd, after the handle is released) emits the
    #: commit/parked/reply spans from it.
    trace: Any = field(default=None, repr=False)

    @property
    def end(self) -> int:
        return self.offset + self.length


class ActiveWriteQueue:
    """FIFO of parked writes for one file."""

    def __init__(self, vnode) -> None:
        self.vnode = vnode
        self._descriptors: List[WriteDescriptor] = []
        #: True while an orphan watchdog process is armed for this queue.
        self.watchdog_armed = False

    def __len__(self) -> int:
        return len(self._descriptors)

    def append(self, descriptor: WriteDescriptor) -> None:
        self._descriptors.append(descriptor)

    def take_all(self) -> List[WriteDescriptor]:
        """Atomically claim every parked descriptor (FIFO order).

        Exclusive ownership is what guarantees exactly one reply per
        request even if two nfsds race to become the metadata writer.
        """
        taken, self._descriptors = self._descriptors, []
        return taken

    def extent(self) -> Optional[tuple]:
        """(min offset, max end) of parked writes, or None when empty."""
        if not self._descriptors:
            return None
        lo = min(d.offset for d in self._descriptors)
        hi = max(d.end for d in self._descriptors)
        return (lo, hi)


class WriteQueueRegistry:
    """All per-file active write queues, keyed by inode number."""

    def __init__(self) -> None:
        self._queues: Dict[int, ActiveWriteQueue] = {}

    def for_vnode(self, vnode) -> ActiveWriteQueue:
        queue = self._queues.get(vnode.ino)
        if queue is None or queue.vnode is not vnode:
            queue = ActiveWriteQueue(vnode)
            self._queues[vnode.ino] = queue
        return queue

    def get(self, ino: int) -> Optional[ActiveWriteQueue]:
        return self._queues.get(ino)

    def pending_total(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def __iter__(self):
        return iter(self._queues.values())
