"""The paper's contribution: NFS write gathering."""

from repro.core.gather import GatheringWritePath, GatherStats
from repro.core.learned import LearnedClientDb
from repro.core.mbuf_hunter import hunt
from repro.core.policy import REPLY_FIFO, REPLY_LIFO, GatherPolicy
from repro.core.siva import SivaWritePath
from repro.core.state_table import (
    STAGE_DECODE,
    STAGE_FLUSHING,
    STAGE_GATHER_WAIT,
    STAGE_IDLE,
    STAGE_WRITING,
    NfsdState,
    NfsdStateTable,
)
from repro.core.write_queue import ActiveWriteQueue, WriteDescriptor, WriteQueueRegistry

__all__ = [
    "GatheringWritePath",
    "GatherStats",
    "GatherPolicy",
    "REPLY_FIFO",
    "REPLY_LIFO",
    "LearnedClientDb",
    "hunt",
    "SivaWritePath",
    "NfsdStateTable",
    "NfsdState",
    "STAGE_IDLE",
    "STAGE_DECODE",
    "STAGE_WRITING",
    "STAGE_GATHER_WAIT",
    "STAGE_FLUSHING",
    "ActiveWriteQueue",
    "WriteDescriptor",
    "WriteQueueRegistry",
]
