"""The [SIVA93] clustering variant, for comparison (§6.6 discussion).

Sivaprakasam's SunOS implementation "takes the first write encountered and
sends it to disk, using this operation as 'the latency device' which gives
more write requests time to arrive at the server".  Juszczak rejected this
because (a) running spindles on a stream of 8K requests is sub-optimal in
drive throughput and CPU, and (b) it cannot work under NVRAM acceleration,
where the first write completes before any follower can arrive.

Implemented here as an alternative write path so the ablation benchmark can
measure exactly those two claims against the procrastinating gatherer.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.core.write_queue import WriteDescriptor, WriteQueueRegistry
from repro.fs.ufs import FsError
from repro.fs.vfs import FWRITE, FWRITE_METADATA, IO_DELAYDATA
from repro.nfs.protocol import Fattr
from repro.obs import (
    PHASE_COMMIT,
    PHASE_PARKED,
    PHASE_REPLY,
    PHASE_VNODE_WAIT,
    registry_for,
)
from repro.rpc.server import REPLY_DONE, REPLY_PENDING, TransportHandle

__all__ = ["SivaWritePath"]


class SivaWritePath:
    """First-write-as-latency-device gathering."""

    def __init__(self, server) -> None:
        self.server = server
        self.env = server.env
        self.queues = WriteQueueRegistry()
        self._leader_active: Dict[int, bool] = {}
        metrics = registry_for(server.env)
        self.writes = metrics.counter(f"{server.host}.siva.writes")
        self.batch_size = metrics.tally(f"{server.host}.siva.batch_size", keep_samples=True)

    def handle(self, nfsd_id: int, handle: TransportHandle) -> Generator:
        args = handle.call.args
        try:
            vnode = self.server.vnodes.by_fhandle(args.fhandle)
        except FsError as exc:
            yield from self.server.reply(handle, exc.code, None)
            return REPLY_DONE
        self.writes.add(1)
        trace = self.server.trace_of(handle)
        queue = self.queues.for_vnode(vnode)
        descriptor = WriteDescriptor(
            handle=handle,
            offset=args.offset,
            length=len(args.data),
            client=handle.call.client,
            enqueued_at=self.env.now,
            data=args.data,
            trace=trace,
        )
        lock_requested = self.env.now
        with vnode.lock.request() as grant:
            yield grant
            self.server.emit_span(trace, PHASE_VNODE_WAIT, lock_requested, ino=vnode.ino)
            try:
                yield from vnode.vop_write(args.offset, args.data, IO_DELAYDATA)
            except FsError as exc:
                yield from self.server.reply(handle, exc.code, None)
                return REPLY_DONE
        queue.append(descriptor)

        if self._leader_active.get(vnode.ino):
            # A leader's first-write is on its way to the disk; it will
            # flush our data and send our reply.
            return REPLY_PENDING

        # We are the leader: our own data write *is* the latency device.
        self._leader_active[vnode.ino] = True
        flush_started = self.env.now
        try:
            yield from vnode.vop_syncdata(args.offset, args.offset + len(args.data))
        finally:
            self._leader_active[vnode.ino] = False
        descriptors = queue.take_all()
        if not descriptors:
            return REPLY_DONE  # raced; someone else replied for us
        lo = min(d.offset for d in descriptors)
        hi = max(d.end for d in descriptors)
        yield from vnode.vop_syncdata(lo, hi)
        # Same mtime-only asynchronous-update exemption as the reference
        # port and the gathering path (§4.4).
        if vnode.inode.inode_dirty or vnode.inode.indirect_dirty:
            yield from vnode.vop_fsync(FWRITE | FWRITE_METADATA)
        fattr = Fattr.from_inode(vnode.inode)
        stable_at = self.env.now
        batch = len(descriptors)
        crash_time = getattr(self.server, "last_crash_time", -1.0)
        for position, parked in enumerate(descriptors):
            if parked.handle.acquired_at > crash_time:
                superseded = any(
                    later.offset < parked.end and parked.offset < later.end
                    for later in descriptors[position + 1 :]
                )
                self.server.check_stable(
                    vnode, parked.offset, parked.data, require_content=not superseded
                )
            yield from self.server.reply(parked.handle, "ok", fattr)
            self.server.emit_span(
                parked.trace,
                PHASE_COMMIT,
                flush_started,
                end=stable_at,
                ino=vnode.ino,
                bytes=parked.length,
                batch=batch,
            )
            self.server.emit_span(
                parked.trace, PHASE_PARKED, parked.enqueued_at, end=stable_at
            )
            self.server.emit_span(parked.trace, PHASE_REPLY, stable_at)
        self.batch_size.observe(len(descriptors))
        return REPLY_DONE
