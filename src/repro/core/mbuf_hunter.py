"""The mbuf hunter (§6.5).

"A routine (the mbuf hunter) was written (hacked) to scan the socket buffer
searching for NFS writes for a given file and returning true/false.  The
mbuf hunter is a gross violation of kernel layering, but with a fast server
this technique is often a win (and thus the hack has redeeming virtue)."

It exists because under Prestoserve there is often no I/O event in
VOP_WRITE, so the nfsd never blocks and queued follow-on writes would go
unnoticed without peeking below the RPC layer.
"""

from __future__ import annotations

from repro.net.udp import SocketBuffer
from repro.nfs.protocol import PROC_WRITE
from repro.rpc.messages import RpcCall

__all__ = ["hunt"]


def hunt(socket_buffer: SocketBuffer, fhandle) -> bool:
    """True if the socket buffer holds a WRITE for ``fhandle``."""

    def is_matching_write(datagram) -> bool:
        call = datagram.payload
        return (
            isinstance(call, RpcCall)
            and call.proc == PROC_WRITE
            and call.args.fhandle == fhandle
        )

    return bool(socket_buffer.scan(is_matching_write))
