"""The global array of nfsd state (§6.2).

"A global array of nfsd state was created so that one nfsd can ascertain
the state of others.  Most notably, whether another nfsd is processing a
write, and to which file, and to which offset and length, and at what stage
the nfsd is in the processing of a write."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "NfsdStateTable",
    "NfsdState",
    "STAGE_IDLE",
    "STAGE_DECODE",
    "STAGE_WRITING",
    "STAGE_GATHER_WAIT",
    "STAGE_FLUSHING",
]

STAGE_IDLE = "idle"
STAGE_DECODE = "decode"
STAGE_WRITING = "writing"
STAGE_GATHER_WAIT = "gather-wait"
STAGE_FLUSHING = "flushing"

#: Stages that mean "this nfsd will enqueue a descriptor and take part in
#: (or take over) gathering for its file".
_ACTIVE_WRITE_STAGES = frozenset({STAGE_DECODE, STAGE_WRITING})


@dataclass
class NfsdState:
    """One nfsd's publicly visible state."""

    nfsd_id: int
    stage: str = STAGE_IDLE
    ino: Optional[int] = None
    offset: int = 0
    length: int = 0

    def clear(self) -> None:
        self.stage = STAGE_IDLE
        self.ino = None
        self.offset = 0
        self.length = 0


class NfsdStateTable:
    """Fixed array of per-nfsd state slots."""

    def __init__(self, nfsds: int) -> None:
        if nfsds < 1:
            raise ValueError(f"need at least one nfsd, got {nfsds}")
        self._slots: List[NfsdState] = [NfsdState(i) for i in range(nfsds)]

    def __len__(self) -> int:
        return len(self._slots)

    def slot(self, nfsd_id: int) -> NfsdState:
        return self._slots[nfsd_id]

    def set(
        self,
        nfsd_id: int,
        stage: str,
        ino: Optional[int] = None,
        offset: int = 0,
        length: int = 0,
    ) -> None:
        slot = self._slots[nfsd_id]
        slot.stage = stage
        slot.ino = ino
        slot.offset = offset
        slot.length = length

    def clear(self, nfsd_id: int) -> None:
        self._slots[nfsd_id].clear()

    def another_write_incoming(self, ino: int, exclude: int) -> bool:
        """Is some *other* nfsd early in processing a write for ``ino``?

        Such an nfsd will enqueue its own descriptor and run the gathering
        decision itself, so the asking nfsd may safely leave the metadata
        update to it.
        """
        return any(
            slot.ino == ino
            and slot.nfsd_id != exclude
            and slot.stage in _ACTIVE_WRITE_STAGES
            for slot in self._slots
        )

    def any_responsible(self, ino: int) -> bool:
        """Is any nfsd at any active stage (incl. waiting/flushing) for ``ino``?

        Used by the orphan watchdog: if descriptors are queued and this is
        False, nobody is going to send their replies.
        """
        return any(
            slot.ino == ino and slot.stage != STAGE_IDLE for slot in self._slots
        )

    def snapshot(self) -> List[NfsdState]:
        return [NfsdState(s.nfsd_id, s.stage, s.ino, s.offset, s.length) for s in self._slots]
