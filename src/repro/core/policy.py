"""Write gathering policy knobs (§6.6–§6.8, plus §8 future work).

All of the paper's tunables — and the variants it discusses and rejects —
are explicit policy here so the benchmarks can ablate them:

* ``interval`` — the procrastination latency.  None means "use the
  transport's empirically derived value" (8 ms Ethernet, 5 ms FDDI).
* ``max_procrastinations`` — the paper procrastinates at most once.
* ``reply_order`` — FIFO (chosen) or LIFO (tried and abandoned, §6.7).
* ``use_mbuf_hunter`` — scan the socket buffer for follow-on writes
  (essential under Prestoserve, §6.5).
* ``learned_clients`` — Jeff Mogul's suggested per-client database (§8):
  stop procrastinating for clients that never gather.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["GatherPolicy", "REPLY_FIFO", "REPLY_LIFO"]

REPLY_FIFO = "fifo"
REPLY_LIFO = "lifo"


@dataclass
class GatherPolicy:
    """Tunable behaviour of the gathering write path."""

    #: Procrastination interval in seconds; None = transport default.
    interval: Optional[float] = None
    #: How many times one nfsd may procrastinate before becoming the
    #: metadata writer (the paper: once).
    max_procrastinations: int = 1
    #: Reply ordering for a gathered batch.
    reply_order: str = REPLY_FIFO
    #: Whether to scan the socket buffer for follow-on writes.
    use_mbuf_hunter: bool = True
    #: Orphan-sweep delay, as a multiple of the procrastination interval
    #: (§6.9 safety net: duplicates/stale handles must never leave writes
    #: on the active queue with no metadata writer to send replies).
    watchdog_factor: float = 4.0
    #: Enable the §8 "learned clients" database.
    learned_clients: bool = False
    #: Extension: wake a procrastinating nfsd the moment another write for
    #: its file reaches the server, instead of sleeping the full interval.
    #: Cuts the injected latency without shrinking batches; not in the
    #: paper (its sleeps were plain kernel timeouts), benchmarked as an
    #: ablation.
    early_wakeup: bool = False
    #: A client is deemed non-gathering once this many of its recent writes
    #: produced singleton batches (learned_clients mode).
    learned_threshold: int = 8
    #: Backpressure (repro.overload): cap on parked write descriptors per
    #: active write queue.  At the cap the nfsd stops parking/handing off
    #: and flushes immediately, so a retransmit storm cannot amass
    #: unbounded parked replies (each pins a transport handle and its
    #: data).  None = unbounded, the paper's behaviour.
    max_parked: Optional[int] = 64

    def __post_init__(self) -> None:
        if self.max_procrastinations < 0:
            raise ValueError("max_procrastinations must be >= 0")
        if self.max_parked is not None and self.max_parked < 1:
            raise ValueError("max_parked must be >= 1 (or None for unbounded)")
        if self.reply_order not in (REPLY_FIFO, REPLY_LIFO):
            raise ValueError(f"unknown reply order {self.reply_order!r}")
        if self.watchdog_factor <= 0:
            raise ValueError("watchdog_factor must be positive")
        if self.interval is not None and self.interval < 0:
            raise ValueError("interval must be >= 0")
