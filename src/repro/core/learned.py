"""Per-client learned gathering behaviour (§8 future work).

"Jeff Mogul has suggested a scheme where the server builds a small database
of 'learned' information about individual clients, and uses this to direct
gathering behavior."

The worst case for write gathering is the single-threaded (dumb PC) client:
added latency for no gain (§6.10).  This database watches, per client, how
often that client's writes end up in multi-write batches; a client whose
recent writes consistently gather alone stops earning procrastination, so
the 15% single-threaded penalty disappears after a short learning period.
The knowledge ages so a client that starts running biods is re-learned.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

__all__ = ["LearnedClientDb"]


class LearnedClientDb:
    """Tracks recent gather-batch sizes per client."""

    def __init__(self, window: int = 16, threshold: int = 8) -> None:
        if window < 1 or threshold < 1:
            raise ValueError("window and threshold must be >= 1")
        self.window = window
        self.threshold = threshold
        self._history: Dict[str, Deque[int]] = {}

    def observe_batch(self, client: str, batch_size: int) -> None:
        """Record that one of ``client``'s writes completed in a batch of
        ``batch_size`` gathered writes."""
        history = self._history.setdefault(client, deque(maxlen=self.window))
        history.append(batch_size)

    def should_procrastinate(self, client: str) -> bool:
        """False once the client's recent writes overwhelmingly gather alone."""
        history = self._history.get(client)
        if history is None or len(history) < self.threshold:
            return True  # not enough evidence; give gathering a chance
        singletons = sum(1 for size in history if size <= 1)
        return singletons < self.threshold

    def singleton_rate(self, client: str) -> float:
        history = self._history.get(client)
        if not history:
            return 0.0
        return sum(1 for size in history if size <= 1) / len(history)
